"""AReST: Advanced Revelation of Segment Routing Tunnels.

The paper's core contribution: post-processing of TNT-augmented
traceroute paths plus vendor fingerprints into flagged SR-MPLS segments.

- :mod:`repro.core.flags` -- the five detection flags and their signal
  strengths (Sec. 4).
- :mod:`repro.core.vendor_ranges` -- Table 1 as AReST consumes it.
- :mod:`repro.core.labels` -- label sequence / suffix matching.
- :mod:`repro.core.segments` -- detected-segment records.
- :mod:`repro.core.detector` -- the flag-raising engine (object path).
- :mod:`repro.core.columnar` -- columnar batch representation and the
  vectorized batch detector (byte-identical output, campaign-scale
  throughput).
- :mod:`repro.core.classification` -- per-hop SR / MPLS / IP areas.
- :mod:`repro.core.interworking` -- full-SR vs. SR-LDP interworking
  tunnels, modes, and cloud sizes (Sec. 7.2).
- :mod:`repro.core.pipeline` -- per-AS end-to-end analysis.
"""

from repro.core.flags import Flag, SIGNAL_STRENGTH, cvr_false_positive_probability
from repro.core.detector import ArestDetector
from repro.core.columnar import ColumnarDetector, TraceBatch
from repro.core.segments import DetectedSegment
from repro.core.classification import HopArea, classify_hops
from repro.core.interworking import (
    InterworkingMode,
    TunnelComposition,
    analyze_tunnel_composition,
)
from repro.core.pipeline import ArestPipeline, AsAnalysis

__all__ = [
    "Flag",
    "SIGNAL_STRENGTH",
    "cvr_false_positive_probability",
    "ArestDetector",
    "ColumnarDetector",
    "TraceBatch",
    "DetectedSegment",
    "HopArea",
    "classify_hops",
    "InterworkingMode",
    "TunnelComposition",
    "analyze_tunnel_composition",
    "ArestPipeline",
    "AsAnalysis",
]
