#!/usr/bin/env python3
"""Offline post-processing: run AReST over a published trace dataset.

AReST is "a TNT post-processing tool" -- this example shows exactly
that workflow, decoupled from any live probing: generate (or receive) a
JSONL trace dataset, reload it, and run detection + area classification
on the stored traces alone.

Run:  python examples/offline_detection.py [dataset.jsonl]
"""

import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro.campaign import CampaignRunner, TraceDataset
from repro.core.classification import HopArea, classify_hops
from repro.core.detector import ArestDetector


def obtain_dataset(argv: list[str]) -> Path:
    if len(argv) > 1:
        return Path(argv[1])
    # No dataset supplied: produce one the way the paper's authors did,
    # then pretend we downloaded it.
    print("no dataset given -- collecting one against AS#28 first ...")
    result = CampaignRunner(seed=1).run_as(28)
    path = Path(tempfile.gettempdir()) / "arest_as28.jsonl"
    result.dataset.dump_jsonl(path)
    print(f"dataset written to {path}\n")
    return path


def main() -> None:
    path = obtain_dataset(sys.argv)
    dataset = TraceDataset.load_jsonl(path)
    print(
        f"loaded {len(dataset)} traces toward AS{dataset.target_asn} "
        f"({len(dataset.distinct_addresses())} distinct addresses, "
        f"VPs: {', '.join(dataset.vantage_points())})"
    )

    detector = ArestDetector()
    flag_counts: Counter = Counter()
    area_counts: Counter = Counter()
    distinct = set()
    for trace in dataset:
        segments = detector.detect(trace, {})  # no fingerprints: offline
        for segment in segments:
            if segment.key() not in distinct:
                distinct.add(segment.key())
                flag_counts[segment.flag] += 1
        for area in classify_hops(trace, segments):
            area_counts[area] += 1

    print("\ndistinct segments per flag (fingerprint-free run):")
    for flag, count in flag_counts.most_common():
        print(f"  {flag.name:<4} {count}")
    total_hops = sum(area_counts.values())
    print("\nhop areas:")
    for area in HopArea:
        share = area_counts.get(area, 0) / total_hops
        print(f"  {area.value:<8} {area_counts.get(area, 0):>5} "
              f"({share:.1%})")
    print(
        "\nwithout fingerprints only CO and LSO can fire -- rerun the "
        "campaign with SNMPv3 coverage to see CVR/LSVR/LVR appear."
    )


if __name__ == "__main__":
    main()
