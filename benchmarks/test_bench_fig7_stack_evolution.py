"""Fig. 7 -- MPLS stack-size evolution, Dec 2015 to Mar 2025.

Regenerates the two panels (CAIDA Ark, RIPE Atlas): per-quarter shares
of traces whose LSE stacks reach size >= 2.
"""

from repro.analysis.stack_archive import (
    generate_archive,
    series_ge_depth,
)
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig7_stack_evolution(benchmark):
    archive = benchmark.pedantic(
        lambda: generate_archive(traces_per_sample=2_000, seed=1),
        rounds=1,
        iterations=1,
    )
    rows = []
    caida = dict(series_ge_depth(archive, "caida", 2))
    atlas = dict(series_ge_depth(archive, "atlas", 2))
    for date in sorted(caida):
        year = int(date)
        month = round((date - year) * 12) + 1
        rows.append(
            (
                f"{year}-{month:02d}",
                f"{caida[date]:.3f}",
                f"{atlas.get(date, 0.0):.3f}",
            )
        )
    emit(
        format_table(
            ["Sample", "CAIDA >=2", "Atlas >=2"],
            rows[::4],  # one row per year for readability
            title="Fig. 7 -- share of MPLS traces with stack size >= 2",
        )
    )

    caida_series = series_ge_depth(archive, "caida", 2)
    atlas_series = series_ge_depth(archive, "atlas", 2)
    # Shape: both grow; 2025 end-points near 20% (CAIDA) and 10% (Atlas);
    # CAIDA consistently above Atlas at the end of the window.
    assert caida_series[-1][1] > caida_series[0][1]
    assert atlas_series[-1][1] > atlas_series[0][1]
    assert 0.15 <= caida_series[-1][1] <= 0.25
    assert 0.05 <= atlas_series[-1][1] <= 0.15
    assert caida_series[-1][1] > atlas_series[-1][1]
