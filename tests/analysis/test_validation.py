"""Tests for ground-truth validation and headline metrics."""

import pytest

from repro.analysis.validation import (
    headline_detection,
    segment_truth,
    validate_against_truth,
)
from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.netsim.addressing import IPv4Address

from tests.conftest import make_hop, make_trace


def co_segment(indices, addresses, labels):
    return DetectedSegment(
        flag=Flag.CO,
        hop_indices=tuple(indices),
        addresses=tuple(IPv4Address.from_string(a) for a in addresses),
        top_labels=tuple(labels),
        stack_depths=tuple([1] * len(indices)),
    )


class TestSegmentTruth:
    def test_all_sr_is_tp(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,), truth_planes=("sr",)),
                make_hop(2, "10.0.0.2", labels=(16_005,), truth_planes=("sr",)),
            ]
        )
        segment = co_segment([0, 1], ["10.0.0.1", "10.0.0.2"], [16_005] * 2)
        assert segment_truth(trace, segment)

    def test_mixed_is_fp(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,), truth_planes=("sr",)),
                make_hop(2, "10.0.0.2", labels=(16_005,), truth_planes=("ldp",)),
            ]
        )
        segment = co_segment([0, 1], ["10.0.0.1", "10.0.0.2"], [16_005] * 2)
        assert not segment_truth(trace, segment)


class TestEsnetValidation:
    """Table 3: perfect precision on the ground-truth AS."""

    def test_zero_false_positives(self, esnet_result):
        report = validate_against_truth(esnet_result)
        for flag, validation in report.per_flag.items():
            assert validation.false_positives == 0, flag

    def test_co_share_dominates(self, esnet_result):
        report = validate_against_truth(esnet_result)
        assert report.flag_share(Flag.CO) >= 0.8

    def test_interface_precision_perfect(self, esnet_result):
        report = validate_against_truth(esnet_result)
        assert report.interface_precision == 1.0
        assert report.interface_fp == 0

    def test_tp_rates(self, esnet_result):
        report = validate_against_truth(esnet_result)
        co = report.per_flag[Flag.CO]
        assert co.distinct_segments > 0
        assert co.tp_rate == 1.0

    def test_counts_are_distinct_segments(self, esnet_result):
        report = validate_against_truth(esnet_result)
        assert report.total_segments() == (
            esnet_result.analysis.total_distinct_segments()
        )


class TestHeadline:
    def test_portfolio_slice(self, small_portfolio_results):
        headline = headline_detection(small_portfolio_results)
        confirmed = [
            r
            for r in small_portfolio_results.values()
            if r.spec.confirmation.confirmed
        ]
        assert headline.confirmed_total == len(confirmed)
        assert 0.0 <= headline.confirmed_rate <= 1.0
        assert headline.unconfirmed_total == len(
            small_portfolio_results
        ) - len(confirmed)

    def test_accepts_iterables(self, small_portfolio_results):
        a = headline_detection(small_portfolio_results)
        b = headline_detection(list(small_portfolio_results.values()))
        assert a.confirmed_detected == b.confirmed_detected

    def test_empty(self):
        headline = headline_detection({})
        assert headline.confirmed_rate == 0.0
        assert headline.unconfirmed_rate == 0.0
        assert headline.strong_share_of_detected == 0.0
