"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.netsim.addressing import IPv4Address
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, Router, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.records import QuotedLse, Trace, TraceHop

TARGET_ASN = 65_001
VP_ASN = 64_900


def scaled_examples(default: int) -> int:
    """Hypothesis example budget for ``@settings(max_examples=...)``.

    Local runs keep the fast default; CI's dedicated property-test job
    multiplies every budget via ``AREST_HYPOTHESIS_SCALE``.
    """
    return default * max(1, int(os.environ.get("AREST_HYPOTHESIS_SCALE", "1")))


class ChainNetwork:
    """A VP -> [AS chain of N routers] -> announced /24 testbed.

    The canonical single-path topology most unit tests use: every knob
    (SR vs LDP, propagate, RFC 4950, PHP, vendors) is explicit.
    """

    def __init__(
        self,
        length: int = 5,
        sr: bool = True,
        ldp: bool = False,
        propagate: bool = True,
        rfc4950: bool = True,
        php: bool = True,
        vendor: Vendor = Vendor.CISCO,
        seed: int = 1,
        policy: TunnelPolicy | None = None,
    ) -> None:
        self.network = Network()
        self.vp = self.network.add_router(
            "vp", VP_ASN, role=RouterRole.VANTAGE
        )
        self.routers: list[Router] = []
        prev: Router = self.vp
        for i in range(length):
            role = (
                RouterRole.BORDER
                if i == 0
                else RouterRole.EDGE
                if i == length - 1
                else RouterRole.CORE
            )
            router = self.network.add_router(
                f"r{i}",
                TARGET_ASN,
                vendor=vendor,
                role=role,
                ttl_propagate=propagate,
                rfc4950=rfc4950,
            )
            self.network.add_link(prev, router)
            self.routers.append(router)
            prev = router
        self.egress = self.routers[-1]
        self.prefix = self.network.announce_prefix(self.egress, 24)
        self.target = self.prefix.address_at(10)

        self.igp = ShortestPaths(self.network)
        self.ldp = LdpState(self.network, seed=seed)
        self.domains: dict[int, SegmentRoutingDomain] = {}
        if sr:
            domain = SegmentRoutingDomain(
                self.network, asn=TARGET_ASN, seed=seed, php=php
            )
            for router in self.routers:
                domain.enroll(router)
            self.domains[TARGET_ASN] = domain
        if ldp:
            for router in self.routers:
                router.ldp_enabled = True
        self.controller = TunnelController(
            self.network, self.igp, self.ldp, self.domains
        )
        self.controller.set_policy(
            policy if policy is not None else TunnelPolicy(asn=TARGET_ASN)
        )
        self.engine = ForwardingEngine(
            self.network, self.igp, self.controller
        )

    @property
    def sr_domain(self) -> SegmentRoutingDomain:
        return self.domains[TARGET_ASN]


@pytest.fixture
def sr_chain() -> ChainNetwork:
    """Five-router full-SR chain, explicit tunnels."""
    return ChainNetwork()


@pytest.fixture
def ldp_chain() -> ChainNetwork:
    """Five-router LDP chain, explicit tunnels."""
    return ChainNetwork(sr=False, ldp=True)


def make_hop(
    ttl: int,
    address: str | None,
    labels: tuple[int, ...] = (),
    lse_ttl: int = 1,
    tnt_revealed: bool = False,
    reply_ip_ttl: int | None = 250,
    truth_planes: tuple[str, ...] = (),
    destination_reply: bool = False,
) -> TraceHop:
    """Build a synthetic trace hop for detector tests."""
    lses = None
    if labels:
        lses = tuple(
            QuotedLse(
                label=label,
                tc=0,
                bottom_of_stack=(i == len(labels) - 1),
                ttl=lse_ttl,
            )
            for i, label in enumerate(labels)
        )
    return TraceHop(
        probe_ttl=ttl,
        address=IPv4Address.from_string(address) if address else None,
        rtt_ms=1.0 if address else None,
        reply_ip_ttl=reply_ip_ttl if address else None,
        lses=lses,
        tnt_revealed=tnt_revealed,
        destination_reply=destination_reply,
        truth_planes=truth_planes,
    )


def make_trace(
    hops: list[TraceHop],
    reached: bool = True,
    epoch_span: tuple[int, int] | None = None,
) -> Trace:
    """Wrap synthetic hops into a trace."""
    return Trace(
        vp="test-vp",
        vp_router_id=0,
        destination=IPv4Address.from_string("203.0.113.1"),
        flow_id=42,
        hops=tuple(hops),
        reached=reached,
        epoch_span=epoch_span,
    )


# Campaign results are expensive enough to share; session-scoped caches.
@pytest.fixture(scope="session")
def esnet_result():
    """The ground-truth AS (#46, ESnet-like) campaign result."""
    from repro.campaign import CampaignRunner

    return CampaignRunner(seed=1).run_as(46)


@pytest.fixture(scope="session")
def small_portfolio_results():
    """A representative slice of the portfolio (one AS per flavour)."""
    from repro.campaign import CampaignRunner

    runner = CampaignRunner(seed=1)
    return runner.run_portfolio(as_ids=[7, 15, 27, 31, 46, 59])
