"""Generative properties over hybrid (SR + LDP island) chains.

Random split points, visibility knobs and seeds; the invariants cover
the interworking forwarding path end to end: delivery, plane ordering,
mapping-server stitching, and detection confined to real SR hops.
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import scaled_examples

from repro.core.detector import ArestDetector
from repro.core.flags import SEQUENCE_FLAGS
from repro.netsim.forwarding import ForwardingEngine, ReplyKind
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.records import truth_transport_is_sr
from repro.probing.tnt import TntProber

ASN = 65_050


def build_hybrid(
    length: int,
    split: int,
    sr_first: bool,
    propagate: bool,
    seed: int,
):
    """A chain whose first ``split`` routers run one protocol and the
    rest the other; the boundary router is dual-stack."""
    net = Network()
    vp = net.add_router("vp", asn=64_900, role=RouterRole.VANTAGE)
    routers, prev = [], vp
    for i in range(length):
        r = net.add_router(
            f"h{i}", asn=ASN, vendor=Vendor.CISCO, ttl_propagate=propagate
        )
        net.add_link(prev, r)
        routers.append(r)
        prev = r
    prefix = net.announce_prefix(routers[-1], 24)
    igp = ShortestPaths(net)
    ldp = LdpState(net, seed=seed)
    domain = SegmentRoutingDomain(net, asn=ASN, seed=seed)
    first, second = routers[:split], routers[split:]
    sr_side, ldp_side = (first, second) if sr_first else (second, first)
    for r in sr_side:
        domain.enroll(r)
    for r in ldp_side:
        r.ldp_enabled = True
        domain.add_mapping_server_entry(r)
    # dual-stack at the boundary
    boundary_sr = sr_side[-1] if sr_first else sr_side[0]
    boundary_sr.ldp_enabled = True
    controller = TunnelController(net, igp, ldp, {ASN: domain})
    controller.set_policy(TunnelPolicy(asn=ASN))
    engine = ForwardingEngine(net, igp, controller)
    return net, vp, prefix.address_at(4), engine


hybrid_cases = st.tuples(
    st.integers(min_value=4, max_value=9),  # length
    st.floats(min_value=0.25, max_value=0.75),  # split fraction
    st.booleans(),  # sr_first
    st.booleans(),  # propagate
    st.integers(min_value=0, max_value=30),  # seed
)


@settings(max_examples=scaled_examples(50), deadline=None)
@given(hybrid_cases)
def test_hybrid_always_delivers(case):
    length, frac, sr_first, propagate, seed = case
    split = max(1, min(length - 1, round(length * frac)))
    net, vp, target, engine = build_hybrid(
        length, split, sr_first, propagate, seed
    )
    reply = engine.forward_probe(vp.router_id, target, 64)
    assert reply is not None
    assert reply.kind is ReplyKind.DEST_UNREACHABLE


@settings(max_examples=scaled_examples(50), deadline=None)
@given(hybrid_cases)
def test_hybrid_planes_never_interleave(case):
    """Once the transport switched protocols it never switches back on
    a two-region chain."""
    length, frac, sr_first, propagate, seed = case
    split = max(1, min(length - 1, round(length * frac)))
    net, vp, target, engine = build_hybrid(
        length, split, sr_first, propagate, seed
    )
    truth = engine.truth_walk(vp.router_id, target)
    transports = [
        t.received_planes[0]
        for t in truth
        if t.received_planes and t.received_planes[0] in ("sr", "ldp")
    ]
    switches = sum(
        1 for a, b in zip(transports, transports[1:]) if a != b
    )
    assert switches <= 1


@settings(max_examples=scaled_examples(50), deadline=None)
@given(hybrid_cases)
def test_hybrid_consecutive_flags_only_on_sr(case):
    length, frac, sr_first, propagate, seed = case
    split = max(1, min(length - 1, round(length * frac)))
    net, vp, target, engine = build_hybrid(
        length, split, sr_first, propagate, seed
    )
    trace = TntProber(engine, seed=seed).trace(vp.router_id, target)
    for segment in ArestDetector().detect(trace, {}):
        if segment.flag in SEQUENCE_FLAGS:
            for index in segment.hop_indices:
                assert truth_transport_is_sr(trace, index)
