"""The shard-scoped checkpoint (format v4): banking, salvage, canon."""

import json

import pytest

from repro.campaign.checkpoint import CheckpointMismatchError, ShardCheckpoint
from repro.campaign.shards import ShardProbeRecord, VpProbe
from repro.netsim.faults import FaultCounters
from repro.util.retry import RetryAccounting

_CONFIG = {"seed": 1, "vps_per_as": 2}


def _vp(i: int, traces: int = 4) -> VpProbe:
    return VpProbe(
        vp_index=i,
        vp_id=f"vp{i:03d}",
        traces=traces,
        sha256=f"digest-{i}",
        retry_accounting=RetryAccounting(),
        fault_counters=FaultCounters(),
    )


def _probe_record(as_id: int, bucket: int, vp_indices) -> ShardProbeRecord:
    return ShardProbeRecord(
        as_id=as_id,
        bucket=bucket,
        spill=f"as{as_id:06d}-b{bucket:03d}.jsonl",
        vps=[_vp(i) for i in vp_indices],
    )


class TestBankingAndResume:
    def test_roundtrip_of_every_record_kind(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        store = ShardCheckpoint(path, _CONFIG, vps_per_shard=1)
        store.record_probe(_probe_record(1, 0, [0]))
        store.record_analysis(1, {"traces_total": 4})
        store.record_failure(2, {"stage": "analysis", "error": "boom"})
        store.record_quarantine((3, 0), {"reason": "crash", "attempts": 2})

        resumed = ShardCheckpoint(path, _CONFIG)
        resumed.load()
        assert set(resumed.probed) == {(1, 0)}
        assert resumed.probed[(1, 0)].spill == "as000001-b000.jsonl"
        assert resumed.analyses == {1: {"traces_total": 4}}
        assert resumed.failures == {
            2: {"stage": "analysis", "error": "boom"}
        }
        assert resumed.quarantines == {
            (3, 0): {"reason": "crash", "attempts": 2}
        }
        # resume adopts the banked shard layout
        assert resumed.vps_per_shard == 1
        assert not resumed.complete

    def test_missing_file_is_a_fresh_start(self, tmp_path):
        store = ShardCheckpoint(tmp_path / "nope.jsonl", _CONFIG)
        store.load()
        assert store.probed == {} and store.analyses == {}

    def test_config_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        ShardCheckpoint(path, _CONFIG).record_analysis(1, {})
        other = ShardCheckpoint(path, {"seed": 99})
        with pytest.raises(CheckpointMismatchError):
            other.load()

    def test_relayout_on_resume_is_legal(self, tmp_path):
        """--shards may change mid-campaign; the banked layout wins."""
        path = tmp_path / "checkpoint.jsonl"
        ShardCheckpoint(path, _CONFIG, vps_per_shard=2).record_analysis(
            1, {}
        )
        resumed = ShardCheckpoint(path, _CONFIG, vps_per_shard=7)
        resumed.load()
        assert resumed.vps_per_shard == 2

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError, match="not an AReST"):
            ShardCheckpoint(path, _CONFIG).load()


class TestSalvage:
    def test_torn_tail_salvaged_and_compacted(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        store = ShardCheckpoint(path, _CONFIG)
        store.record_probe(_probe_record(1, 0, [0]))
        store.record_analysis(1, {"traces_total": 4})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"as_id": 2, "analysis": {"tr')  # crash mid-append

        resumed = ShardCheckpoint(path, _CONFIG)
        resumed.load()
        assert set(resumed.probed) == {(1, 0)}
        assert set(resumed.analyses) == {1}
        # the file was compacted: a second load sees no damage
        again = ShardCheckpoint(path, _CONFIG)
        again.load()
        assert set(again.analyses) == {1}
        assert all(
            json.loads(line) for line in path.read_text().splitlines()
        )


class TestCanonicalForm:
    def _completed_store(self, path, layout: int) -> ShardCheckpoint:
        """Bank the same campaign under a given shard layout."""
        store = ShardCheckpoint(path, _CONFIG, vps_per_shard=layout)
        if layout == 2:
            store.record_probe(_probe_record(1, 0, [0, 1]))
            store.record_probe(_probe_record(2, 0, [0, 1]))
        else:
            # different banking order on purpose: completion order is
            # execution-dependent and must not leak into the bytes
            store.record_probe(_probe_record(2, 1, [1]))
            store.record_probe(_probe_record(1, 0, [0]))
            store.record_probe(_probe_record(2, 0, [0]))
            store.record_probe(_probe_record(1, 1, [1]))
        store.record_analysis(2, {"traces_total": 8})
        store.record_analysis(1, {"traces_total": 8})
        return store

    def test_canonical_bytes_are_partition_independent(self, tmp_path):
        coarse = tmp_path / "coarse.jsonl"
        fine = tmp_path / "fine.jsonl"
        self._completed_store(coarse, layout=2).compact_canonical([1, 2])
        self._completed_store(fine, layout=1).compact_canonical([1, 2])
        assert coarse.read_bytes() == fine.read_bytes()

    def test_canonical_form_drops_partition_details(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        self._completed_store(path, layout=1).compact_canonical([1, 2])
        text = path.read_text()
        header = json.loads(text.splitlines()[0])
        assert header["complete"] is True
        assert "layout" not in header
        assert "spill" not in text  # spill names are partition detail
        assert '"shard"' not in text  # bucket numbers likewise

    def test_complete_checkpoint_reloads_as_complete(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        self._completed_store(path, layout=2).compact_canonical([1, 2])
        resumed = ShardCheckpoint(path, _CONFIG)
        resumed.load()
        assert resumed.complete
        assert set(resumed.analyses) == {1, 2}
        assert set(resumed.vp_probes) == {
            (1, 0), (1, 1), (2, 0), (2, 1)
        }
