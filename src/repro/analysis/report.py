"""Plain-text report rendering for campaign results.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them consistently.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.deployment import deployment_rows
from repro.analysis.validation import ValidationReport
from repro.campaign.runner import AsCampaignResult
from repro.core.flags import Flag
from repro.util.tables import format_table


def render_flag_proportions(
    results: Mapping[int, AsCampaignResult]
) -> str:
    """Fig. 8 as a table: per-AS flag shares."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        proportions = result.analysis.flag_proportions()
        rows.append(
            [
                result.spec.label,
                result.spec.name,
                str(result.spec.confirmation),
                *(f"{proportions.get(f, 0.0):.2f}" for f in Flag),
            ]
        )
    return format_table(
        ["AS", "Name", "Confirmed", *(f.name for f in Flag)],
        rows,
        title="Fig. 8 -- proportion of SR segments per AReST flag",
    )


def render_validation(report: ValidationReport) -> str:
    """Table 3-style rendering for one AS."""
    rows = []
    total = report.total_segments()
    for flag in Flag:
        v = report.per_flag[flag]
        share = v.distinct_segments / total if total else 0.0
        rows.append(
            [
                flag.name,
                v.distinct_segments,
                f"{share:.1%}",
                f"{v.tp_rate:.0%}" if v.distinct_segments else "-",
                f"{v.fp_rate:.0%}" if v.distinct_segments else "-",
            ]
        )
    return format_table(
        ["Flag", "Raw", "%", "TP", "FP"],
        rows,
        title=(
            f"Table 3 -- AReST validation on AS#{report.as_id} "
            f"({total} distinct segments)"
        ),
    )


def render_deployment(results: Mapping[int, AsCampaignResult]) -> str:
    """Fig. 10 as a table."""
    rows = []
    for row in deployment_rows(results):
        rows.append(
            [
                f"AS#{row.as_id}",
                row.name,
                row.traces_in_as,
                f"{row.share_hitting_sr:.2f}",
                f"{row.share_hitting_mpls:.2f}",
                f"{row.share_hitting_ip:.2f}",
                row.sr_interfaces,
                row.mpls_interfaces,
                row.ip_interfaces,
            ]
        )
    return format_table(
        [
            "AS",
            "Name",
            "Traces",
            "hit-SR",
            "hit-MPLS",
            "hit-IP",
            "SR-ifaces",
            "MPLS-ifaces",
            "IP-ifaces",
        ],
        rows,
        title="Fig. 10 -- SR / MPLS / IP areas per AS",
    )
