"""Vantage-point contribution analysis (Fig. 17, Appendix C).

Cumulative count of unique responding addresses as VPs are added, in a
fixed order.  The paper observes slow growth with no extreme skew: each
extra VP contributes some new hops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.dataset import TraceDataset
from repro.netsim.addressing import IPv4Address


@dataclass(frozen=True, slots=True)
class CoveragePoint:
    """Cumulative discovery after including one more VP."""

    vp: str
    new_addresses: int
    cumulative_addresses: int


def vp_discovery_curve(
    dataset: TraceDataset, vp_order: list[str] | None = None
) -> list[CoveragePoint]:
    """The Fig. 17 CDF: unique addresses discovered as VPs are added."""
    if vp_order is None:
        vp_order = dataset.vantage_points()
    seen: set[IPv4Address] = set()
    curve = []
    for vp in vp_order:
        before = len(seen)
        for trace in dataset.traces_from_vp(vp):
            seen.update(trace.addresses())
        curve.append(
            CoveragePoint(
                vp=vp,
                new_addresses=len(seen) - before,
                cumulative_addresses=len(seen),
            )
        )
    return curve


def normalized_curve(curve: list[CoveragePoint]) -> list[float]:
    """Cumulative share of the final discovery total, per VP added."""
    if not curve:
        return []
    total = curve[-1].cumulative_addresses
    if total == 0:
        return [0.0] * len(curve)
    return [p.cumulative_addresses / total for p in curve]


def discovery_skew(curve: list[CoveragePoint]) -> float:
    """Share of all discovery owed to the single best VP -- the paper
    reports no extreme skew ("no VP found the majority of hops")."""
    if not curve:
        return 0.0
    total = curve[-1].cumulative_addresses
    if total == 0:
        return 0.0
    return max(p.new_addresses for p in curve) / total
