"""End-to-end per-AS AReST analysis.

Ties together detection (Sec. 4), area classification (Sec. 7.1),
tunnel taxonomy (Appendix C) and interworking analysis (Sec. 7.2) over
a batch of traces, restricted -- like the paper does with bdrmapIT -- to
the hops owned by the AS of interest.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.classification import HopArea, classify_hops
from repro.core.columnar import ColumnarDetector
from repro.core.detector import ArestDetector, FingerprintLookup
from repro.core.flags import Flag, STRONG_FLAGS
from repro.core.interworking import (
    InterworkingMode,
    analyze_tunnel_composition,
    refine_areas_for_interworking,
)
from repro.core.segments import DetectedSegment
from repro.fingerprint.records import Fingerprint
from repro.netsim.addressing import IPv4Address
from repro.probing.records import Trace, TraceHop
from repro.probing.sanitize import TraceAnomaly, TraceSanitizer
from repro.probing.tunnels import TunnelType, classify_tunnels

AsnLookup = Callable[[TraceHop], int | None]


@dataclass(slots=True)
class AsAnalysis:
    """Aggregated AReST results for one autonomous system."""

    asn: int
    traces_total: int = 0
    traces_in_as: int = 0
    #: traces the sanitizer withheld from analysis (never silently dropped)
    traces_quarantined: int = 0
    #: every structural anomaly the sanitizer found (repaired or not)
    anomalies: list[TraceAnomaly] = field(default_factory=list)
    #: every detected segment occurrence (trace-level)
    segments: list[DetectedSegment] = field(default_factory=list)
    #: distinct segments per flag (Table 3 counts distinct segments)
    distinct_segments: dict[Flag, set] = field(default_factory=dict)
    #: distinct interface addresses per area
    sr_addresses: set[IPv4Address] = field(default_factory=set)
    mpls_addresses: set[IPv4Address] = field(default_factory=set)
    ip_addresses: set[IPv4Address] = field(default_factory=set)
    #: traces traversing at least one hop of each area
    traces_hitting_sr: int = 0
    traces_hitting_mpls: int = 0
    traces_hitting_ip: int = 0
    tunnel_types: Counter = field(default_factory=Counter)
    traces_with_explicit: int = 0
    interworking_modes: Counter = field(default_factory=Counter)
    sr_cloud_sizes: list[int] = field(default_factory=list)
    ldp_cloud_sizes: list[int] = field(default_factory=list)
    #: stack-depth distribution inside strong-flag segments (Fig. 9a)
    stack_depths_strong: Counter = field(default_factory=Counter)
    #: stack-depth distribution on LSO / classic-MPLS hops (Fig. 9b)
    stack_depths_other: Counter = field(default_factory=Counter)
    suffix_matched_runs: int = 0
    consecutive_runs: int = 0

    # -- derived metrics -----------------------------------------------------

    @property
    def traces_analyzed(self) -> int:
        """Traces that actually reached detection.

        The reconciliation invariant: ``traces_analyzed +
        traces_quarantined == traces_total`` (the collected count).
        """
        return self.traces_total - self.traces_quarantined

    def anomaly_counts(self) -> dict[str, int]:
        """Anomaly tallies by kind (data-quality reporting)."""
        counts = Counter(a.kind.value for a in self.anomalies)
        return dict(counts)

    def flag_counts(self) -> dict[Flag, int]:
        """Distinct segments per flag."""
        return {
            flag: len(keys) for flag, keys in self.distinct_segments.items()
        }

    def total_distinct_segments(self) -> int:
        """Distinct segments across all flags."""
        return sum(len(keys) for keys in self.distinct_segments.values())

    def flag_proportions(self) -> dict[Flag, float]:
        """Share of distinct segments per flag (the Fig. 8 series)."""
        total = self.total_distinct_segments()
        if total == 0:
            return {}
        return {
            flag: len(keys) / total
            for flag, keys in self.distinct_segments.items()
            if keys
        }

    def has_sr_evidence(self, strong_only: bool = True) -> bool:
        """Did any (strong, by default) flag fire in this AS?"""
        flags = STRONG_FLAGS if strong_only else set(Flag)
        return any(
            self.distinct_segments.get(flag) for flag in flags
        )

    def strong_share(self) -> float:
        """Share of distinct segments carried by strong flags."""
        total = self.total_distinct_segments()
        if total == 0:
            return 0.0
        strong = sum(
            len(keys)
            for flag, keys in self.distinct_segments.items()
            if flag in STRONG_FLAGS
        )
        return strong / total

    def explicit_tunnel_share(self) -> float:
        """Explicit tunnels over all tunnel observations."""
        total = sum(self.tunnel_types.values())
        if total == 0:
            return 0.0
        return self.tunnel_types.get(TunnelType.EXPLICIT, 0) / total

    def interworking_share(self) -> float:
        """Share of MPLS tunnels that mix SR and LDP clouds (Sec. 7.2)."""
        relevant = [
            mode
            for mode in self.interworking_modes
            if mode is not InterworkingMode.FULL_LDP
        ]
        total = sum(self.interworking_modes[m] for m in relevant)
        if total == 0:
            return 0.0
        inter = sum(
            self.interworking_modes[m]
            for m in relevant
            if m is not InterworkingMode.FULL_SR
        )
        return inter / total


def _timed(fn, clock, bin_sample):
    """Wrap ``fn`` so every call's wall seconds land in ``bin_sample``.

    Closure cells (not attribute lookups) carry the clock and the
    sample sink, so the per-call cost is two clock reads and one
    append on top of ``fn`` itself.
    """

    def timed(*args, **kwargs):
        tick = clock()
        out = fn(*args, **kwargs)
        bin_sample(clock() - tick)
        return out

    return timed


class AsAccumulator:
    """Incremental AReST analysis of one AS, one trace at a time.

    The batch entry point (:meth:`ArestPipeline.analyze_as`) is a thin
    loop over this class; long-lived consumers -- the streaming
    detection service in :mod:`repro.service` -- construct one via
    :meth:`ArestPipeline.accumulator` and :meth:`feed` traces as they
    arrive, reading :attr:`analysis` at any point mid-stream.

    Feeding order never changes the aggregate facts (counters, distinct
    segment sets): each trace's contribution depends only on the trace
    itself, so any permutation of the same trace set accumulates to the
    same totals (the service's streaming ≡ batch contract builds on
    this).  Only the observational *lists* (``anomalies``,
    ``segments``) record arrival order.

    ``asn=None`` widens the analysis to every hop of every trace (no
    ownership restriction), which is how the service analyzes datasets
    that were already scoped at collection time.
    """

    def __init__(
        self,
        detector: ArestDetector | ColumnarDetector,
        asn: int | None,
        fingerprints: Mapping[IPv4Address, Fingerprint] | FingerprintLookup,
        asn_of: AsnLookup | None = None,
        segment_sink: list[tuple[Trace, list[DetectedSegment]]] | None = None,
        sanitizer: TraceSanitizer | None = None,
        telemetry=None,
    ) -> None:
        self._detector = detector
        self._asn = asn
        self._fingerprints = fingerprints
        self._asn_of = asn_of if asn_of is not None else _truth_asn
        self._segment_sink = segment_sink
        self._sanitizer = sanitizer if sanitizer is not None else TraceSanitizer()
        self._track = telemetry is not None and telemetry.enabled
        self._telemetry = telemetry
        # The hot loop calls these two pre-bound callables with no
        # telemetry branch of its own: untracked they ARE the sanitizer
        # and detector, tracked each is wrapped in a closure that
        # drops the call's wall seconds into a plain list (summed and
        # binned once, in :meth:`finish`).  Branch-free dispatch plus
        # batched binning is what holds the <2% instrumentation
        # budget.
        self._sanitize = self._sanitizer.sanitize
        self._detect = self._detector.detect
        self._sanitize_samples: list[float] = []
        self._detect_samples: list[float] = []
        if self._track:
            clock = telemetry.clock
            self._sanitize = _timed(
                self._sanitize, clock, self._sanitize_samples.append
            )
            self._detect = _timed(
                self._detect, clock, self._detect_samples.append
            )
        self.analysis = AsAnalysis(asn=asn if asn is not None else 0)
        for flag in Flag:
            self.analysis.distinct_segments[flag] = set()

    def _in_as(self, hop: TraceHop) -> bool:
        """Predicate: does this hop belong to the AS of interest?"""
        return self._asn is None or self._asn_of(hop) == self._asn

    def feed(self, trace: Trace) -> list[DetectedSegment] | None:
        """Sanitize and analyze one trace; returns its segments.

        Returns ``None`` when the trace was quarantined or touched no
        in-AS hop; either way every counter (including the
        ``traces_analyzed + traces_quarantined == traces_total``
        reconciliation invariant) is already up to date when this
        returns, so the analysis is continuously consistent mid-stream.
        """
        analysis = self.analysis
        analysis.traces_total += 1
        sanitized = self._sanitize(trace)
        analysis.anomalies.extend(sanitized.anomalies)
        if sanitized.trace is None:
            analysis.traces_quarantined += 1
            return None
        trace = sanitized.trace
        # AS membership is resolved once per hop; the resulting index
        # set feeds the detector mask and both accumulators.
        in_as_set = {
            i for i, hop in enumerate(trace.hops) if self._in_as(hop)
        }
        if not in_as_set:
            return None
        analysis.traces_in_as += 1
        segments = self._detect(
            trace, self._fingerprints, hop_mask=in_as_set
        )
        if self._segment_sink is not None:
            self._segment_sink.append((trace, segments))
        _accumulate_segments(analysis, trace, segments)
        _accumulate_areas(analysis, trace, segments, in_as_set)
        _accumulate_tunnels(analysis, trace, in_as_set)
        return segments

    def finish(self) -> AsAnalysis:
        """Flush accumulated telemetry and return the analysis.

        Idempotent with respect to the analysis object; only here do
        the per-trace samples turn into stage seconds (``sum`` over
        insertion order is bit-identical to a running ``+=``) and
        latency-histogram buckets, keeping that work out of the hot
        loop entirely.
        """
        if self._track:
            tel = self._telemetry
            tel.add_seconds("sanitize", sum(self._sanitize_samples))
            tel.add_seconds("detect", sum(self._detect_samples))
            tel.histogram("sanitize").observe_many(self._sanitize_samples)
            tel.histogram("detect").observe_many(self._detect_samples)
            self._track = False
        return self.analysis


class ArestPipeline:
    """Runs AReST over trace batches, one AS of interest at a time.

    Detection defaults to the columnar core
    (:class:`~repro.core.columnar.ColumnarDetector`): each trace is a
    one-row column batch, so the pipeline's object API -- and every
    caller built on it, including the streaming service -- rides the
    same array passes the whole-campaign batch path uses.  Pass
    ``columnar=False`` (or an explicit :class:`ArestDetector`) for the
    object-path reference; the two are byte-identical by the
    differential contract, so the switch only moves the cost model.
    """

    def __init__(
        self,
        detector: ArestDetector | ColumnarDetector | None = None,
        *,
        columnar: bool = True,
    ) -> None:
        if detector is None:
            detector = ColumnarDetector() if columnar else ArestDetector()
        self._detector = detector

    def accumulator(
        self,
        asn: int | None,
        fingerprints: Mapping[IPv4Address, Fingerprint] | FingerprintLookup,
        asn_of: AsnLookup | None = None,
        segment_sink: list[tuple[Trace, list[DetectedSegment]]] | None = None,
        sanitizer: TraceSanitizer | None = None,
        telemetry=None,
    ) -> AsAccumulator:
        """An incremental accumulator for streaming consumers."""
        return AsAccumulator(
            self._detector,
            asn,
            fingerprints,
            asn_of=asn_of,
            segment_sink=segment_sink,
            sanitizer=sanitizer,
            telemetry=telemetry,
        )

    def analyze_as(
        self,
        asn: int,
        traces: Iterable[Trace],
        fingerprints: Mapping[IPv4Address, Fingerprint] | FingerprintLookup,
        asn_of: AsnLookup | None = None,
        segment_sink: list[tuple[Trace, list[DetectedSegment]]] | None = None,
        sanitizer: TraceSanitizer | None = None,
        telemetry=None,
    ) -> AsAnalysis:
        """Analyze every trace, keeping only hops inside ``asn``.

        ``asn_of`` maps a hop to its owner AS (bdrmapIT-style annotation);
        by default the hop's ``truth_asn`` is used, which corresponds to a
        perfect annotator.  ``segment_sink``, when given, receives every
        (trace, segments) pair for downstream validation.

        Every trace is sanitized before detection (lenient policy by
        default; pass a configured :class:`TraceSanitizer` to change
        it): repairable structural defects are fixed and recorded,
        unresolvable ones quarantine the trace -- counted, never
        silently dropped.  Well-formed traces pass through unchanged.

        ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`, duck
        typed to avoid the dependency) receives ``sanitize`` and
        ``detect`` stage durations.
        """
        accumulator = self.accumulator(
            asn,
            fingerprints,
            asn_of=asn_of,
            segment_sink=segment_sink,
            sanitizer=sanitizer,
            telemetry=telemetry,
        )
        for trace in traces:
            accumulator.feed(trace)
        return accumulator.finish()

# -- accumulation ----------------------------------------------------------


def _accumulate_segments(
    analysis: AsAnalysis,
    trace: Trace,
    segments: list[DetectedSegment],
) -> None:
    for segment in segments:
        analysis.segments.append(segment)
        analysis.distinct_segments[segment.flag].add(segment.key())
        if segment.flag in (Flag.CVR, Flag.CO):
            analysis.consecutive_runs += 1
            if segment.suffix_based:
                analysis.suffix_matched_runs += 1
        depth_counter = (
            analysis.stack_depths_strong
            if segment.flag in STRONG_FLAGS
            else analysis.stack_depths_other
        )
        for depth in segment.stack_depths:
            depth_counter[depth] += 1

def _accumulate_areas(
    analysis: AsAnalysis,
    trace: Trace,
    segments: list[DetectedSegment],
    indices_in_as: set[int],
    ) -> None:
    areas = classify_hops(trace, segments, strong_only=True)
    flagged = {
        i for segment in segments for i in segment.hop_indices
    }
    hit_sr = hit_mpls = hit_ip = False
    for i in indices_in_as:
        hop = trace.hops[i]
        area = areas[i]
        if hop.address is not None:
            if area is HopArea.SR:
                analysis.sr_addresses.add(hop.address)
            elif area is HopArea.MPLS:
                analysis.mpls_addresses.add(hop.address)
                # flagged (LSO) hops were already counted by the
                # segment accumulator; count only unflagged classic
                # MPLS hops here (Fig. 9b's other half)
                if (
                    hop.has_lses
                    and not hop.tnt_revealed
                    and i not in flagged
                ):
                    analysis.stack_depths_other[hop.stack_depth] += 1
            else:
                analysis.ip_addresses.add(hop.address)
        hit_sr = hit_sr or area is HopArea.SR
        hit_mpls = hit_mpls or area is HopArea.MPLS
        hit_ip = hit_ip or area is HopArea.IP
    analysis.traces_hitting_sr += int(hit_sr)
    analysis.traces_hitting_mpls += int(hit_mpls)
    analysis.traces_hitting_ip += int(hit_ip)
    # Interworking: decompose the in-AS area sequence into tunnels,
    # after the Sec. 6.3 refinements (LSO-with-strong-evidence and
    # TE-stack smoothing).
    refined = refine_areas_for_interworking(trace, segments, areas)
    in_as_areas = [
        refined[i]
        if i in indices_in_as and not trace.hops[i].tnt_revealed
        else HopArea.IP
        for i in range(len(trace.hops))
    ]
    compositions = analyze_tunnel_composition(in_as_areas)
    for composition in compositions:
        analysis.interworking_modes[composition.mode] += 1
        analysis.sr_cloud_sizes.extend(composition.sr_cloud_sizes())
        analysis.ldp_cloud_sizes.extend(composition.ldp_cloud_sizes())

def _accumulate_tunnels(
    analysis: AsAnalysis,
    trace: Trace,
    indices_in_as: set[int],
    ) -> None:
    saw_explicit = False
    for tunnel in classify_tunnels(trace):
        if not any(i in indices_in_as for i in tunnel.hop_indices):
            continue
        analysis.tunnel_types[tunnel.tunnel_type] += 1
        saw_explicit = saw_explicit or (
            tunnel.tunnel_type is TunnelType.EXPLICIT
        )
    analysis.traces_with_explicit += int(saw_explicit)


def _truth_asn(hop: TraceHop) -> int | None:
    return hop.truth_asn
