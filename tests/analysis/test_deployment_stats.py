"""Tests for the Fig. 10 deployment aggregation."""

import pytest

from repro.analysis.deployment import (
    deployment_rows,
    share_of_ases_with_low_sr_interfaces,
)


class TestDeploymentRows:
    def test_rows_ordered_by_as_id(self, small_portfolio_results):
        rows = deployment_rows(small_portfolio_results)
        assert [r.as_id for r in rows] == sorted(
            small_portfolio_results
        )

    def test_shares_within_unit_interval(self, small_portfolio_results):
        for row in deployment_rows(small_portfolio_results):
            for share in (
                row.share_hitting_sr,
                row.share_hitting_mpls,
                row.share_hitting_ip,
            ):
                assert 0.0 <= share <= 1.0

    def test_esnet_majority_sr_traces(self, small_portfolio_results):
        # Sec. 7.1: ESnet among the ASes where > 50% of traces hit SR.
        row = next(
            r
            for r in deployment_rows(small_portfolio_results)
            if r.as_id == 46
        )
        assert row.share_hitting_sr > 0.5

    def test_proximus_no_sr(self, small_portfolio_results):
        row = next(
            r
            for r in deployment_rows(small_portfolio_results)
            if r.as_id == 7
        )
        assert row.share_hitting_sr == 0.0
        assert row.sr_interfaces == 0
        assert row.share_hitting_mpls > 0.0

    def test_interface_counts_consistent(self, small_portfolio_results):
        for as_id, result in small_portfolio_results.items():
            row = next(
                r
                for r in deployment_rows(small_portfolio_results)
                if r.as_id == as_id
            )
            assert row.sr_interfaces == len(result.analysis.sr_addresses)
            assert row.total_interfaces > 0

    def test_low_sr_share_metric(self, small_portfolio_results):
        rows = deployment_rows(small_portfolio_results)
        share = share_of_ases_with_low_sr_interfaces(rows, threshold=1.0)
        assert share == 1.0  # everything is <= 100%
        assert share_of_ases_with_low_sr_interfaces([], 0.1) == 0.0
