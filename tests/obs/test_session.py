"""The campaign-scoped session and its rendered surfaces."""

import json

from repro.obs.prometheus import render_prometheus
from repro.obs.session import (
    PORTFOLIO_SCOPE,
    PROMETHEUS_FILENAME,
    TelemetrySession,
)
from repro.obs.sink import EVENTS_FILENAME
from repro.obs.summary import (
    performance_section,
    render_telemetry_report,
    summarize_telemetry,
)


def _session(tmp_path, **kwargs) -> TelemetrySession:
    defaults = dict(config={"seed": 1}, seed=1, jobs=2, as_ids=[27, 46])
    defaults.update(kwargs)
    return TelemetrySession(tmp_path / "tel", **defaults)


def _export(scope_seconds: float = 1.5) -> dict:
    return {
        "spans": [
            {"stage": "as", "path": "as", "seconds": scope_seconds},
            {"stage": "probe", "path": "as/probe", "seconds": 1.0},
        ],
        "counters": {"traces_collected": 4, "flags_total": 2},
        "gauges": {},
    }


class TestSessionLifecycle:
    def test_construction_writes_running_manifest(self, tmp_path):
        session = _session(tmp_path)
        manifest = json.loads(
            (session.directory / "manifest.json").read_text()
        )
        assert manifest["exit_status"] == "running"
        assert manifest["as_ids"] == [27, 46]

    def test_record_export_accumulates_totals(self, tmp_path):
        session = _session(tmp_path)
        session.record_export(27, _export())
        session.record_export(46, _export())
        assert session.totals == {"traces_collected": 8, "flags_total": 4}

    def test_finalize_settles_manifest_and_renders_prometheus(
        self, tmp_path
    ):
        session = _session(tmp_path)
        session.record_export(27, _export())
        session.count("worker_redispatches", 1)
        session.finalize("ok")
        manifest = json.loads(
            (session.directory / "manifest.json").read_text()
        )
        assert manifest["exit_status"] == "ok"
        assert manifest["duration_seconds"] is not None
        prom = (session.directory / PROMETHEUS_FILENAME).read_text()
        assert 'exit_status="ok"' in prom
        assert (
            'arest_events_total{scope="27",name="traces_collected"} 4'
            in prom
        )
        assert (
            'arest_events_total{scope="portfolio",'
            'name="worker_redispatches"} 1' in prom
        )

    def test_finalize_is_idempotent(self, tmp_path):
        session = _session(tmp_path)
        session.finalize("error")
        session.finalize("ok")  # defensive double call must not clobber
        summary = summarize_telemetry(session.directory)
        assert summary.manifest["exit_status"] == "error"
        portfolio_spans = [
            stage
            for scope, stages in summary.stage_seconds.items()
            if scope == PORTFOLIO_SCOPE
            for stage in stages
        ]
        assert portfolio_spans == ["portfolio"]


class TestSummaryAndRenderers:
    def test_summary_aggregates_scopes_and_stages(self, tmp_path):
        session = _session(tmp_path)
        session.record_export(46, _export())
        session.record_export(27, _export())
        session.finalize("ok")
        summary = summarize_telemetry(session.directory)
        assert summary.as_scopes() == [27, 46]
        assert summary.stages()[0] == "as"  # canonical order
        assert summary.stages()[-1] == "portfolio"
        assert summary.stage_seconds[27]["probe"] == 1.0
        assert summary.flushed_scopes >= {27, 46, PORTFOLIO_SCOPE}
        assert summary.dropped_lines == 0
        assert summary.totals["traces_collected"] == 8

    def test_summary_tolerates_torn_stream(self, tmp_path):
        session = _session(tmp_path)
        session.record_export(27, _export())
        stream = session.directory / EVENTS_FILENAME
        with stream.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "scope": 46, "seco')
        summary = summarize_telemetry(session.directory)
        assert summary.dropped_lines == 1
        assert summary.as_scopes() == [27]

    def test_text_report_contains_tables(self, tmp_path):
        session = _session(tmp_path)
        session.record_export(27, _export())
        session.finalize("ok")
        text = render_telemetry_report(
            summarize_telemetry(session.directory)
        )
        assert "Per-stage wall-clock seconds" in text
        assert "Per-AS counters" in text
        assert "Counter totals" in text
        assert "AS#27" in text

    def test_performance_section_is_markdown(self, tmp_path):
        session = _session(tmp_path)
        session.record_export(27, _export())
        session.finalize("ok")
        lines = performance_section(summarize_telemetry(session.directory))
        assert lines[0] == "## Performance"
        assert any(line.startswith("| AS ") for line in lines)
        assert any("traces_collected=4" in line for line in lines)

    def test_prometheus_escapes_label_values(self, tmp_path):
        session = _session(tmp_path)
        session.record_export('evil"scope\n', _export())
        session.finalize("ok")
        prom = render_prometheus(summarize_telemetry(session.directory))
        assert '\\"' in prom and "\\n" in prom
        assert "\n\n" not in prom.strip()
