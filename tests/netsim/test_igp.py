"""Tests for the link-state IGP, with networkx as the SPF oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.igp import NoRouteError, ShortestPaths
from repro.netsim.topology import Network
from repro.util.determinism import DeterministicRng


def build_ring(n: int = 6, chord: bool = True):
    net = Network()
    routers = [net.add_router(f"r{i}", asn=1) for i in range(n)]
    for i in range(n):
        net.add_link(routers[i], routers[(i + 1) % n], cost=10)
    if chord:
        net.add_link(routers[0], routers[n // 2], cost=15)
    return net, routers


class TestShortestPaths:
    def test_distance_matches_networkx(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        g = net.to_graph()
        for src in routers:
            for dst in routers:
                if src is dst:
                    continue
                expected = nx.shortest_path_length(
                    g, src.router_id, dst.router_id, weight="weight"
                )
                assert igp.distance(src.router_id, dst.router_id) == expected

    def test_path_endpoints(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        path = igp.path(routers[0].router_id, routers[3].router_id)
        assert path[0] == routers[0].router_id
        assert path[-1] == routers[3].router_id

    def test_path_is_connected_and_optimal(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        path = igp.path(routers[1].router_id, routers[4].router_id)
        cost = 0
        for a, b in zip(path, path[1:]):
            link = net.link_between(a, b)
            assert link is not None
            cost += link.cost
        assert cost == igp.distance(routers[1].router_id, routers[4].router_id)

    def test_next_hop_deterministic_ecmp(self):
        # Square: two equal-cost paths 0->1->2 and 0->3->2; the tie must
        # break to the lower router id consistently.
        net = Network()
        r = [net.add_router(f"r{i}", asn=1) for i in range(4)]
        net.add_link(r[0], r[1], cost=10)
        net.add_link(r[1], r[2], cost=10)
        net.add_link(r[0], r[3], cost=10)
        net.add_link(r[3], r[2], cost=10)
        igp = ShortestPaths(net)
        hops = igp.ecmp_next_hops(r[0].router_id, r[2].router_id)
        assert hops == sorted(hops)
        assert igp.next_hop(r[0].router_id, r[2].router_id) == hops[0]

    def test_no_route(self):
        net = Network()
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)  # disconnected
        igp = ShortestPaths(net)
        assert not igp.reachable(a.router_id, b.router_id)
        with pytest.raises(NoRouteError):
            igp.distance(a.router_id, b.router_id)
        with pytest.raises(NoRouteError):
            igp.next_hop(a.router_id, b.router_id)

    def test_next_hop_self_rejected(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        with pytest.raises(ValueError):
            igp.next_hop(routers[0].router_id, routers[0].router_id)

    def test_distance_zero_to_self(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        assert igp.distance(routers[0].router_id, routers[0].router_id) == 0

    def test_distances_from_symmetric(self):
        net, routers = build_ring()
        igp = ShortestPaths(net)
        d = igp.distances_from(routers[2].router_id)
        for dst, distance in d.items():
            assert igp.distance(dst, routers[2].router_id) == distance

    def test_invalidate_clears_cache(self):
        net, routers = build_ring(chord=False)
        igp = ShortestPaths(net)
        before = igp.distance(routers[0].router_id, routers[3].router_id)
        net.add_link(routers[0], routers[3], cost=1)
        igp.invalidate()
        after = igp.distance(routers[0].router_id, routers[3].router_id)
        assert after < before


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=12),
    extra=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_spf_matches_networkx_on_random_graphs(n, extra, seed):
    """Property: our Dijkstra equals networkx on random connected graphs."""
    rng = DeterministicRng("igp-prop", seed)
    net = Network()
    routers = [net.add_router(f"r{i}", asn=1) for i in range(n)]
    for i in range(1, n):  # random spanning tree keeps it connected
        parent = rng.randrange(i)
        net.add_link(routers[i], routers[parent], cost=rng.choice([1, 5, 10]))
    for _ in range(extra):
        a, b = rng.sample(range(n), 2)
        if net.link_between(routers[a].router_id, routers[b].router_id) is None:
            net.add_link(routers[a], routers[b], cost=rng.choice([1, 5, 10]))
    igp = ShortestPaths(net)
    g = net.to_graph()
    src = routers[rng.randrange(n)].router_id
    lengths = nx.single_source_dijkstra_path_length(g, src, weight="weight")
    for dst, expected in lengths.items():
        assert igp.distance(src, dst) == expected
