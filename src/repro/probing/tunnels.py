"""Tunnel taxonomy (Donnet et al., extended by Vanaubel et al.).

Classifies the MPLS tunnels *observable* in a trace into the four types
the paper builds on (Sec. 2.2 / Sec. 6.2 / Appendix C):

explicit
    ``ttl-propagate`` on + RFC 4950 on: every LSR answers and quotes its
    LSE stack.  Eligible for **all** AReST flags.
opaque
    ``ttl-propagate`` off + RFC 4950 on: only the ending hop answers,
    quoting a single LSE whose TTL is near 255 (255 minus the hidden
    length).  Eligible for the stack flags only (LSVR / LVR / LSO).
implicit
    ``ttl-propagate`` on + RFC 4950 off: hops answer without LSEs; TNT
    heuristics (qTTL / u-turn) can still infer the tunnel.
invisible
    ``ttl-propagate`` off + RFC 4950 off: nothing shows; TNT revelation
    may surface addresses (marked ``tnt_revealed``), never LSEs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.probing.records import Trace, TraceHop

#: quoted LSE-TTL at or above this is taken as "never propagated" (the
#: ingress wrote 255 and only a handful of hops decremented it)
_OPAQUE_TTL_FLOOR = 200


class TunnelType(enum.Enum):
    """The Donnet et al. tunnel visibility classes."""
    EXPLICIT = "explicit"
    IMPLICIT = "implicit"
    OPAQUE = "opaque"
    INVISIBLE = "invisible"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class ObservedTunnel:
    """A maximal tunnel observation within one trace.

    ``hop_indices`` indexes into ``trace.hops`` and covers every hop
    attributed to the tunnel (for invisible tunnels: the TNT-revealed
    hops; for opaque ones: the single ending hop).
    """

    tunnel_type: TunnelType
    hop_indices: tuple[int, ...]

    @property
    def length(self) -> int:
        """Number of hops attributed to this tunnel."""
        return len(self.hop_indices)


def _is_opaque_hop(hop: TraceHop) -> bool:
    return (
        hop.has_lses
        and hop.stack_depth >= 1
        and hop.lses is not None
        and hop.lses[0].ttl >= _OPAQUE_TTL_FLOOR
    )


def classify_tunnels(trace: Trace) -> list[ObservedTunnel]:
    """Extract every tunnel observation from one trace, in path order."""
    tunnels: list[ObservedTunnel] = []
    i = 0
    hops = trace.hops
    n = len(hops)
    while i < n:
        hop = hops[i]
        if hop.tnt_revealed:
            # A revealed run: addresses without LSEs inserted by TNT.
            j = i
            while j < n and hops[j].tnt_revealed:
                j += 1
            tunnels.append(
                ObservedTunnel(
                    tunnel_type=TunnelType.INVISIBLE,
                    hop_indices=tuple(range(i, j)),
                )
            )
            i = j
            continue
        if hop.has_lses:
            if _is_opaque_hop(hop) and _run_length_of_labels(hops, i) == 1:
                if (
                    tunnels
                    and tunnels[-1].tunnel_type is TunnelType.INVISIBLE
                    and tunnels[-1].hop_indices[-1] == i - 1
                ):
                    # TNT revealed the hidden interior of this very
                    # tunnel; it is one opaque observation, not two.
                    tunnels[-1] = ObservedTunnel(
                        tunnel_type=TunnelType.OPAQUE,
                        hop_indices=tunnels[-1].hop_indices + (i,),
                    )
                else:
                    tunnels.append(
                        ObservedTunnel(
                            tunnel_type=TunnelType.OPAQUE,
                            hop_indices=(i,),
                        )
                    )
                i += 1
                continue
            j = i
            while j < n and hops[j].has_lses and not hops[j].tnt_revealed:
                j += 1
            tunnels.append(
                ObservedTunnel(
                    tunnel_type=TunnelType.EXPLICIT,
                    hop_indices=tuple(range(i, j)),
                )
            )
            i = j
            continue
        if hop.responded and hop.truth_planes:
            if not hop.truth_uniform:
                # The ending hop of a pipe-mode tunnel, answering without
                # a quote: the tunnel is invisible and this is its only
                # observable trace (TNT's qTTL == 1 signature).
                if (
                    tunnels
                    and tunnels[-1].tunnel_type is TunnelType.INVISIBLE
                    and tunnels[-1].hop_indices[-1] == i - 1
                ):
                    tunnels[-1] = ObservedTunnel(
                        tunnel_type=TunnelType.INVISIBLE,
                        hop_indices=tunnels[-1].hop_indices + (i,),
                    )
                else:
                    tunnels.append(
                        ObservedTunnel(
                            tunnel_type=TunnelType.INVISIBLE,
                            hop_indices=(i,),
                        )
                    )
                i += 1
                continue
            # Implicit tunnel: the hop answered while carrying labels but
            # quoted nothing (no RFC 4950).  Real TNT infers these via
            # qTTL/u-turn heuristics; the ground-truth annotation stands
            # in for those near-exact heuristics.
            j = i
            while (
                j < n
                and hops[j].responded
                and not hops[j].has_lses
                and not hops[j].tnt_revealed
                and hops[j].truth_planes
                and hops[j].truth_uniform
            ):
                j += 1
            tunnels.append(
                ObservedTunnel(
                    tunnel_type=TunnelType.IMPLICIT,
                    hop_indices=tuple(range(i, j)),
                )
            )
            i = j
            continue
        i += 1
    return tunnels


def _run_length_of_labels(hops: tuple[TraceHop, ...], start: int) -> int:
    length = 0
    for hop in hops[start:]:
        if hop.has_lses and not hop.tnt_revealed:
            length += 1
        else:
            break
    return length


def infer_opaque_length(hop: TraceHop) -> int | None:
    """Infer the hidden tunnel length from an opaque LSE's TTL.

    The ingress wrote 255; each hidden LSR decremented once, so a quoted
    TTL of ``255 - k`` betrays ``k`` hidden hops before the ending hop
    (the trick TNT uses on opaque tunnels).
    """
    if not _is_opaque_hop(hop):
        return None
    assert hop.lses is not None
    return 255 - hop.lses[0].ttl


def implicit_hops(trace: Trace) -> list[int]:
    """Indices of hops that responded without LSEs but are known (via the
    ground-truth annotation) to have carried labels: the *implicit*
    tunnel hops TNT's qTTL/u-turn heuristics would flag."""
    return [
        i
        for i, hop in enumerate(trace.hops)
        if hop.responded
        and not hop.has_lses
        and not hop.tnt_revealed
        and hop.truth_planes
    ]
