"""Tests for flag definitions and the CVR false-positive model."""

import pytest

from repro.core.flags import (
    CISCO_DYNAMIC_POOL_SIZE,
    Flag,
    SEQUENCE_FLAGS,
    SIGNAL_STRENGTH,
    STRONG_FLAGS,
    cvr_false_positive_probability,
    strongest,
)


class TestSignalStrengths:
    def test_paper_star_ratings(self):
        assert SIGNAL_STRENGTH[Flag.CVR] == 5
        assert SIGNAL_STRENGTH[Flag.CO] == 4
        assert SIGNAL_STRENGTH[Flag.LSVR] == 4
        assert SIGNAL_STRENGTH[Flag.LVR] == 3
        assert SIGNAL_STRENGTH[Flag.LSO] == 1

    def test_strong_flags_exclude_lso(self):
        assert Flag.LSO not in STRONG_FLAGS
        assert STRONG_FLAGS == {Flag.CVR, Flag.CO, Flag.LSVR, Flag.LVR}

    def test_sequence_flags(self):
        assert SEQUENCE_FLAGS == {Flag.CVR, Flag.CO}

    def test_every_flag_rated(self):
        assert set(SIGNAL_STRENGTH) == set(Flag)


class TestCvrFalsePositiveModel:
    def test_two_hops(self):
        # Sec. 4.1: two Cisco routers -> ~1e-6
        p = cvr_false_positive_probability(2)
        assert p == pytest.approx(1 / CISCO_DYNAMIC_POOL_SIZE)
        assert p < 1e-5

    def test_probability_decays_with_length(self):
        probabilities = [
            cvr_false_positive_probability(k) for k in range(2, 6)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_exact_formula(self):
        assert cvr_false_positive_probability(3, pool_size=10) == 1 / 100
        assert cvr_false_positive_probability(4, pool_size=10) == 1 / 1000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cvr_false_positive_probability(1)
        with pytest.raises(ValueError):
            cvr_false_positive_probability(2, pool_size=0)


class TestStrongest:
    def test_picks_highest(self):
        assert strongest({Flag.CO, Flag.LSO}) is Flag.CO
        assert strongest({Flag.CVR, Flag.CO, Flag.LVR}) is Flag.CVR

    def test_empty(self):
        assert strongest(set()) is None

    def test_tie_broken_deterministically(self):
        # CO and LSVR both carry 4 stars; the answer must be stable.
        assert strongest({Flag.CO, Flag.LSVR}) is strongest(
            {Flag.LSVR, Flag.CO}
        )
