#!/usr/bin/env python3
"""Longitudinal SR-MPLS adoption (the paper's future work, Sec. 9).

Replays the measurement campaign year by year against an evolving
portfolio: every AS that deploys SR by 2025 starts its migration at a
(deterministic) adoption year and ramps up.  The output is the adoption
curve AReST would have measured had the campaign run annually.

Run:  python examples/adoption_timeline.py
"""

from repro.analysis.longitudinal import AdoptionTracker, adoption_year
from repro.topogen.portfolio import default_portfolio
from repro.util.tables import format_table

AS_IDS = [7, 13, 15, 19, 27, 31, 46, 53, 58]


def main() -> None:
    portfolio = default_portfolio()
    print("simulated adoption years (confirmed ASes migrate earlier):")
    for as_id in AS_IDS:
        spec = portfolio.spec(as_id)
        year = (
            adoption_year(spec, first_year=2019, seed=1)
            if spec.scenario.deploys_sr
            else None
        )
        print(
            f"  AS#{as_id:<3} {spec.name:<18} "
            f"{'adopts ' + str(year) if year else 'never adopts SR'}"
        )

    print("\nrunning one campaign per year (2019-2025) ...")
    tracker = AdoptionTracker(
        portfolio=portfolio,
        first_year=2019,
        last_year=2025,
        as_ids=AS_IDS,
        seed=1,
        targets_per_as=12,
        vps_per_as=2,
    )
    snapshots = tracker.run()
    print()
    print(
        format_table(
            ["Year", "ASes w/ strong SR evidence", "SR ifaces",
             "MPLS ifaces", "SR iface share"],
            [
                (
                    s.year,
                    f"{s.ases_with_sr_evidence}/{s.ases_analyzed}",
                    s.sr_interfaces,
                    s.mpls_interfaces,
                    f"{s.sr_interface_share:.0%}",
                )
                for s in snapshots
            ],
            title="SR-MPLS adoption as AReST would have measured it",
        )
    )
    print(
        "\nThe curve only climbs: migrations replace LDP with node-SID "
        "forwarding, and AReST's consecutive flags pick each one up as "
        "soon as the deployment becomes traceroute-visible."
    )


if __name__ == "__main__":
    main()
