"""Unit tests for the work-stealing lease executor.

Every failure mode the supervisor promises to contain is provoked
directly: worker crashes (re-dispatch then quarantine), lease expiry on
silent workers, deterministic exceptions (no re-dispatch), and the RSS
watchdog's graceful recycle.  The in-process ``jobs=1`` path is tested
separately -- it must behave like a plain loop.
"""

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.campaign.executor import TaskStatus
from repro.campaign.shardexec import LeaseExecutor, WorkerControl

_needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for the worker pool",
)


# -- shard functions (module level: they run in worker processes) ------------


def _double(payload, ctl):
    ctl.heartbeat("work")
    return payload * 2


def _raise_on_odd(payload, ctl):
    ctl.heartbeat("work")
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


def _crash_unless_marked(payload, ctl):
    """Die hard on the first attempt; succeed once the marker exists."""
    marker, value = payload
    if not Path(marker).exists():
        Path(marker).touch()
        os._exit(137)
    return value


def _always_crash(payload, ctl):
    os._exit(137)


def _silent_unless_marked(payload, ctl):
    """Go silent past any lease on the first attempt; then answer."""
    marker, value = payload
    if not Path(marker).exists():
        Path(marker).touch()
        time.sleep(120)
    return value


def _report_pid_and_recycle(payload, ctl):
    ctl.request_recycle()
    return os.getpid()


# -- in-process path ---------------------------------------------------------


class TestInProcess:
    def test_plain_loop_semantics(self):
        executor = LeaseExecutor(_double, jobs=1)
        seen = []
        result = executor.run(
            [("a", 1), ("b", 2)], on_complete=lambda o: seen.append(o.key)
        )
        assert not result.interrupted
        assert {k: o.value for k, o in result.outcomes.items()} == {
            "a": 2,
            "b": 4,
        }
        assert seen == ["a", "b"]  # completion order == plan order

    def test_exception_isolated_per_shard(self):
        executor = LeaseExecutor(_raise_on_odd, jobs=1)
        result = executor.run([("even", 2), ("odd", 3), ("even2", 4)])
        assert result.outcomes["odd"].status is TaskStatus.ERROR
        assert "odd payload 3" in result.outcomes["odd"].error
        assert result.outcomes["even"].value == 2
        assert result.outcomes["even2"].value == 4  # loop continued

    def test_stop_interrupts_between_shards(self):
        calls = []

        def fn(payload, ctl):
            calls.append(payload)
            return payload

        executor = LeaseExecutor(fn, jobs=1)
        result = executor.run(
            [("a", 1), ("b", 2)], stop=lambda: bool(calls)
        )
        assert result.interrupted
        assert calls == [1]  # second shard never admitted

    def test_duplicate_keys_rejected(self):
        executor = LeaseExecutor(_double, jobs=1)
        with pytest.raises(ValueError, match="unique"):
            executor.run([("a", 1), ("a", 2)])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LeaseExecutor(_double, jobs=0)
        with pytest.raises(ValueError):
            LeaseExecutor(_double, lease_timeout=0)
        with pytest.raises(ValueError):
            LeaseExecutor(_double, watch_interval=0)
        with pytest.raises(ValueError):
            LeaseExecutor(_double, max_redispatch=-1)


# -- pooled path -------------------------------------------------------------


@_needs_fork
class TestPool:
    def test_pool_drains_all_shards(self):
        executor = LeaseExecutor(_double, jobs=2)
        tasks = [(i, i) for i in range(7)]
        result = executor.run(tasks)
        assert {k: o.value for k, o in result.outcomes.items()} == {
            i: 2 * i for i in range(7)
        }
        assert executor.stats["leases_granted"] == 7
        assert executor.stats["leases_renewed"] >= 7  # one hb per shard
        assert executor.stats["workers_spawned"] == 2

    def test_crashed_worker_is_replaced_and_shard_redispatched(
        self, tmp_path
    ):
        executor = LeaseExecutor(_crash_unless_marked, jobs=2)
        tasks = [
            (i, (str(tmp_path / f"marker-{i}"), i)) for i in range(3)
        ]
        result = executor.run(tasks)
        assert {k: o.value for k, o in result.outcomes.items()} == {
            0: 0,
            1: 1,
            2: 2,
        }
        assert executor.stats["workers_crashed"] == 3
        assert executor.stats["shards_redispatched"] == 3
        assert executor.stats["shards_quarantined"] == 0
        # every crashed worker was replaced by a fresh spawn
        assert executor.stats["workers_spawned"] >= 4

    def test_poison_shard_quarantined_past_budget(self, tmp_path):
        executor = LeaseExecutor(_always_crash, jobs=2, max_redispatch=1)
        result = executor.run([("poison", None)])
        outcome = result.outcomes["poison"]
        assert outcome.status is TaskStatus.CRASH
        assert outcome.attempts == 2  # original + one re-dispatch
        assert result.quarantined["poison"].reason == "crash"
        assert executor.stats["shards_quarantined"] == 1

    def test_lease_expiry_recovers_silent_worker(self, tmp_path):
        executor = LeaseExecutor(
            _silent_unless_marked,
            jobs=2,
            lease_timeout=0.4,
            watch_interval=0.05,
        )
        marker = str(tmp_path / "marker")
        result = executor.run([("slow", (marker, "answer"))])
        assert result.outcomes["slow"].value == "answer"
        assert executor.stats["leases_expired"] == 1
        assert executor.stats["shards_redispatched"] == 1
        assert result.quarantined == {}

    def test_exception_fails_fast_without_redispatch(self):
        executor = LeaseExecutor(_raise_on_odd, jobs=2, max_redispatch=3)
        result = executor.run([("odd", 3), ("even", 2)])
        odd = result.outcomes["odd"]
        assert odd.status is TaskStatus.ERROR
        assert odd.attempts == 1  # deterministic: retry would be futile
        assert "odd payload 3" in odd.error
        assert result.outcomes["even"].value == 2
        assert executor.stats["shards_redispatched"] == 0

    def test_recycle_requests_honoured_between_shards(self):
        executor = LeaseExecutor(_report_pid_and_recycle, jobs=2)
        result = executor.run([(i, None) for i in range(3)])
        pids = {o.value for o in result.outcomes.values()}
        assert len(pids) == 3  # every shard got a fresh process
        assert executor.stats["workers_recycled"] == 3
        assert executor.stats["workers_crashed"] == 0


class TestWorkerControl:
    def test_records_stages_and_recycle_flag(self):
        ctl = WorkerControl()
        ctl.heartbeat("probe")
        ctl.heartbeat("analyze")
        assert ctl.stages == ["probe", "analyze"]
        assert not ctl.recycle_requested
        ctl.request_recycle()
        assert ctl.recycle_requested
