"""Supervised executor: deadlines, crash containment, quarantine.

Worker functions live at module level so they survive pickling under
any multiprocessing start method.
"""

import os
import signal
import time

import pytest

from repro.campaign.executor import (
    GracefulShutdown,
    SupervisedExecutor,
    TaskStatus,
)


def well_behaved(payload, heartbeat):
    heartbeat("working")
    return payload * 10


def failing(payload, heartbeat):
    raise ValueError(f"bad payload {payload}")


def hang_on_two(payload, heartbeat):
    if payload == 2:
        heartbeat("hanging")
        time.sleep(600)
    return payload * 10


def sigkill_on_two(payload, heartbeat):
    if payload == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * 10


def crash_once_then_succeed(payload, heartbeat):
    # A *transient* crash: the marker file exists only on the first
    # attempt, so the one-shot re-dispatch rescues the task.
    marker, value = payload
    if os.path.exists(marker):
        os.unlink(marker)
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


class TestInProcessPath:
    def test_runs_all_tasks_in_order(self):
        engine = SupervisedExecutor(well_behaved, jobs=1)
        result = engine.run([("a", 1), ("b", 2), ("c", 3)])
        assert [o.value for o in result.outcomes.values()] == [10, 20, 30]
        assert list(result.outcomes) == ["a", "b", "c"]
        assert not result.interrupted
        assert not result.quarantined

    def test_error_isolation(self):
        engine = SupervisedExecutor(failing, jobs=1)
        result = engine.run([("a", 1)])
        outcome = result.outcomes["a"]
        assert outcome.status is TaskStatus.ERROR
        assert "ValueError: bad payload 1" in outcome.error

    def test_stop_flag_interrupts_between_tasks(self):
        shutdown = GracefulShutdown()
        seen = []

        def fn(payload, heartbeat):
            seen.append(payload)
            if payload == 2:
                shutdown.request()
            return payload

        result = SupervisedExecutor(fn, jobs=1).run(
            [(k, k) for k in (1, 2, 3)], stop=shutdown
        )
        assert result.interrupted
        assert seen == [1, 2]  # task 3 never dispatched
        assert 3 not in result.outcomes

    def test_duplicate_keys_rejected(self):
        engine = SupervisedExecutor(well_behaved, jobs=1)
        with pytest.raises(ValueError, match="unique"):
            engine.run([("a", 1), ("a", 2)])

    def test_on_complete_fires_per_task(self):
        completions = []
        SupervisedExecutor(well_behaved, jobs=1).run(
            [("a", 1), ("b", 2)], on_complete=completions.append
        )
        assert [c.key for c in completions] == ["a", "b"]


class TestSupervisedPool:
    def test_parallel_results_match_serial(self):
        tasks = [(k, k) for k in range(6)]
        serial = SupervisedExecutor(well_behaved, jobs=1).run(tasks)
        parallel = SupervisedExecutor(well_behaved, jobs=3).run(tasks)
        assert {k: o.value for k, o in parallel.outcomes.items()} == {
            k: o.value for k, o in serial.outcomes.items()
        }

    def test_worker_exception_reported(self):
        result = SupervisedExecutor(failing, jobs=2).run([("a", 7)])
        outcome = result.outcomes["a"]
        assert outcome.status is TaskStatus.ERROR
        assert "ValueError: bad payload 7" in outcome.error

    def test_hung_worker_is_quarantined_and_rest_complete(self):
        engine = SupervisedExecutor(
            hang_on_two,
            jobs=2,
            timeout=0.4,
            watch_interval=0.05,
            max_redispatch=1,
        )
        start = time.monotonic()
        result = engine.run([(k, k) for k in (1, 2, 3)])
        elapsed = time.monotonic() - start
        assert result.outcomes[1].value == 10
        assert result.outcomes[3].value == 30
        victim = result.outcomes[2]
        assert victim.status is TaskStatus.TIMEOUT
        assert victim.attempts == 2  # one re-dispatch, then quarantine
        assert 2 in result.quarantined
        assert result.quarantined[2].reason == "timeout"
        # Two 0.4s deadlines plus watchdog slack, nowhere near the
        # 600s the task wanted to sleep.
        assert elapsed < 5

    def test_heartbeat_watchdog_catches_silent_worker_early(self):
        engine = SupervisedExecutor(
            hang_on_two,
            jobs=2,
            timeout=30,  # generous deadline: the heartbeat must trip first
            heartbeat_timeout=0.3,
            watch_interval=0.05,
        )
        start = time.monotonic()
        result = engine.run([(2, 2)])
        elapsed = time.monotonic() - start
        assert result.outcomes[2].status is TaskStatus.TIMEOUT
        assert "hung" in result.outcomes[2].error
        assert result.quarantined[2].reason == "hung"
        assert elapsed < 5

    def test_sigkilled_worker_is_contained(self):
        engine = SupervisedExecutor(
            sigkill_on_two, jobs=2, watch_interval=0.05
        )
        result = engine.run([(k, k) for k in (1, 2, 3)])
        assert result.outcomes[1].value == 10
        assert result.outcomes[3].value == 30
        victim = result.outcomes[2]
        assert victim.status is TaskStatus.CRASH
        assert "died without a result" in victim.error
        assert result.quarantined[2].reason == "crash"
        assert result.quarantined[2].attempts == 2

    def test_transient_crash_survives_via_redispatch(self, tmp_path):
        marker = tmp_path / "crash-once"
        marker.touch()
        engine = SupervisedExecutor(
            crash_once_then_succeed, jobs=2, watch_interval=0.05
        )
        result = engine.run([("a", (str(marker), 4))])
        outcome = result.outcomes["a"]
        assert outcome.status is TaskStatus.OK
        assert outcome.value == 40
        assert outcome.attempts == 2
        assert not result.quarantined

    def test_stage_heartbeats_surface_in_outcome(self):
        result = SupervisedExecutor(well_behaved, jobs=2).run([("a", 1)])
        assert result.outcomes["a"].last_stage == "working"


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(well_behaved, jobs=0)
        with pytest.raises(ValueError):
            SupervisedExecutor(well_behaved, timeout=0)
        with pytest.raises(ValueError):
            SupervisedExecutor(well_behaved, watch_interval=0)
        with pytest.raises(ValueError):
            SupervisedExecutor(well_behaved, max_redispatch=-1)
