#!/usr/bin/env python3
"""Ground-truth validation on the ESnet-like AS (the paper's Table 3).

Runs the full measurement campaign against AS#46 -- the survey-confirmed
operator who manually reviewed every AReST inference -- and scores the
detections against the simulator's ground truth, printing the Table 3
rows (per-flag counts, TP/FP rates) and interface-level precision.

Run:  python examples/ground_truth_validation.py
"""

from repro.analysis.report import render_validation
from repro.analysis.validation import validate_against_truth
from repro.campaign import CampaignRunner


def main() -> None:
    runner = CampaignRunner(seed=1)
    print("running the AS#46 (ESnet) campaign ...")
    result = runner.run_as(46)

    analysis = result.analysis
    print(
        f"\n{analysis.traces_total} traces collected from "
        f"{len(result.dataset.vantage_points())} vantage points; "
        f"{analysis.traces_in_as} crossed the AS"
    )
    print(
        f"explicit tunnel share: {analysis.explicit_tunnel_share():.0%} "
        "(ESnet propagates TTLs and quotes LSEs everywhere)"
    )

    report = validate_against_truth(result)
    print()
    print(render_validation(report))
    print(
        f"\ninterface-level: precision={report.interface_precision:.3f} "
        f"recall={report.interface_recall:.3f} "
        f"(TP={report.interface_tp} FP={report.interface_fp} "
        f"FN={report.interface_fn})"
    )
    print(
        "\nAs in the paper: CO segments dominate (no ESnet box answers "
        "fingerprinting, so CVR can never fire), and every flagged "
        "segment is genuine SR-MPLS -- zero false positives."
    )


if __name__ == "__main__":
    main()
