"""Crash-safe JSONL event sink for campaign telemetry.

One campaign writes one ``telemetry.jsonl``: a stream of small JSON
records (span durations, counter tallies) appended *per completed AS*
in batches.  The append protocol mirrors the checkpoint's durability
story (:mod:`repro.util.atomicio`):

1. all records of one AS are serialized into a single text block, each
   record one line, terminated by a ``flush`` marker record;
2. the block is appended with :func:`~repro.util.atomicio.durable_append`
   (write + flush + fsync), so once :meth:`TelemetryWriter.append_batch`
   returns the batch is on stable storage;
3. a crash (even ``kill -9``) mid-append at worst truncates the final
   line; :func:`load_events` salvages every intact line before the
   damage and reports what it dropped, and the ``flush`` markers let
   readers distinguish complete AS batches from a torn tail.

Records are plain dicts with a ``kind`` field (``span``, ``counter``,
``flush``); every record carries the ``scope`` it was recorded under
(an AS id, or ``"portfolio"`` for campaign-level records).  The sink is
observational: nothing here feeds back into results, so completion
order -- which varies across parallel runs -- is allowed to leak into
the file.  Only the *counter totals* are contractual (order-independent
by construction, see :func:`repro.obs.telemetry.merge_counters`).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from repro.util.atomicio import durable_append

logger = logging.getLogger(__name__)

#: canonical telemetry stream filename inside a telemetry directory
EVENTS_FILENAME = "telemetry.jsonl"


class TelemetryWriter:
    """Appends per-scope record batches to the JSONL event stream."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append_batch(
        self,
        scope: int | str,
        spans: list[dict] | None = None,
        counters: dict[str, int] | None = None,
        gauges: dict[str, float] | None = None,
    ) -> int:
        """Durably append one scope's telemetry; returns records written.

        The batch is one ``write(2)`` followed by an fsync, closed by a
        ``flush`` marker: a reader that sees the marker knows the whole
        batch is intact.
        """
        records: list[dict] = []
        for span in spans or ():
            records.append({"kind": "span", "scope": scope, **span})
        for name in sorted(counters or ()):
            records.append(
                {
                    "kind": "counter",
                    "scope": scope,
                    "name": name,
                    "value": counters[name],
                }
            )
        for name in sorted(gauges or ()):
            records.append(
                {
                    "kind": "gauge",
                    "scope": scope,
                    "name": name,
                    "value": gauges[name],
                }
            )
        records.append({"kind": "flush", "scope": scope})
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        durable_append(self.path, text)
        return len(records)


def load_events(path: str | Path) -> tuple[list[dict], int]:
    """Read every salvageable record; returns ``(records, dropped)``.

    Tolerates the damage a crash can inflict: undecodable or truncated
    lines are dropped (and counted), never raised, so a telemetry file
    that survived a ``kill -9`` still renders.  A missing file is an
    empty stream.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[dict] = []
    dropped = 0
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if not isinstance(record, dict) or "kind" not in record:
                dropped += 1
                continue
            records.append(record)
    if dropped:
        logger.warning(
            "telemetry stream %s: dropped %d corrupt line(s)", path, dropped
        )
    return records, dropped
