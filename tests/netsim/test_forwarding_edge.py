"""Edge-case forwarding tests: interface targets, self-probes, tiny
TTLs, and boundary conditions the campaign occasionally produces."""

import pytest

from repro.netsim.forwarding import ReplyKind
from repro.probing.traceroute import ParisTraceroute

from tests.conftest import ChainNetwork


class TestInterfaceTargets:
    """Real campaigns trace *router interface* addresses, not only
    destination prefixes; the engine must deliver to them."""

    def test_traceroute_to_interface_address(self, sr_chain):
        target = sr_chain.routers[3].interfaces[
            sr_chain.routers[2].router_id
        ]
        trace = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, target
        )
        assert trace.reached
        assert trace.hops[-1].address == target

    def test_tunnel_still_used_toward_interface(self, sr_chain):
        target = sr_chain.routers[3].interfaces[
            sr_chain.routers[2].router_id
        ]
        trace = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, target
        )
        assert trace.labeled_hops()  # the SR tunnel covered part of it

    def test_traceroute_to_loopback(self, sr_chain):
        target = sr_chain.routers[2].loopback
        trace = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, target
        )
        assert trace.reached
        assert trace.hops[-1].address == target


class TestDegenerateProbes:
    def test_probe_to_own_loopback(self, sr_chain):
        reply = sr_chain.engine.forward_probe(
            sr_chain.vp.router_id, sr_chain.vp.loopback, 5
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_ttl_one_expires_at_first_router(self, sr_chain):
        reply = sr_chain.engine.forward_probe(
            sr_chain.vp.router_id, sr_chain.target, 1
        )
        assert reply is not None
        assert reply.kind is ReplyKind.TIME_EXCEEDED
        assert reply.truth_router_id == sr_chain.routers[0].router_id

    def test_huge_ttl_delivers(self, sr_chain):
        reply = sr_chain.engine.forward_probe(
            sr_chain.vp.router_id, sr_chain.target, 255
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_first_and_last_prefix_addresses(self, sr_chain):
        for offset in (0, sr_chain.prefix.num_addresses() - 1):
            reply = sr_chain.engine.forward_probe(
                sr_chain.vp.router_id,
                sr_chain.prefix.address_at(offset),
                64,
            )
            assert reply is not None
            assert reply.kind is ReplyKind.DEST_UNREACHABLE


class TestShortestChains:
    @pytest.mark.parametrize("length", [1, 2])
    def test_tiny_ases_deliver(self, length):
        chain = ChainNetwork(length=length)
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_one_router_as_has_no_tunnel(self):
        chain = ChainNetwork(length=1)
        trace = ParisTraceroute(chain.engine).trace(
            chain.vp.router_id, chain.target
        )
        assert trace.reached
        assert not trace.labeled_hops()
