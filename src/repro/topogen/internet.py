"""Per-target measurement networks.

For every AS of interest the campaign builds one internetwork:

- the **target AS** itself, instantiated from its deployment scenario;
- a handful of **customer stub ASes** behind its PE/border routers,
  announcing prefixes that pull *transit* traffic across the AS (that is
  how the paper's targets light up ASBR-to-ASBR tunnels);
- two plain-IP **upstream transit ASes** carrying probes from the VPs to
  the target's borders, via distinct entry points for path diversity;
- one **vantage-point router per VP**, each in its own AS.

Everything is deterministic given (spec, vp names, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.checks import assert_valid
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.topology import Network, Router, RouterRole
from repro.netsim.tunnels import TunnelController
from repro.topogen.deployment import AppliedDeployment, apply_scenario
from repro.topogen.intra import (
    IntraAsTopology,
    build_intra_as,
    build_pop_intra_as,
)
from repro.topogen.portfolio import AsSpec
from repro.util.determinism import DeterministicRng

_TRANSIT_ASN_BASE = 64_600
_CUSTOMER_ASN_BASE = 64_700
_VP_ASN_BASE = 64_800


@dataclass(slots=True)
class MeasurementNetwork:
    """One ready-to-probe internetwork around a target AS."""

    spec: AsSpec
    network: Network
    igp: ShortestPaths
    ldp: LdpState
    controller: TunnelController
    engine: ForwardingEngine
    deployment: AppliedDeployment
    target: IntraAsTopology
    #: vantage-point name -> router id
    vantage_points: dict[str, int] = field(default_factory=dict)
    #: all probeable destination prefixes (PE-announced + customers)
    target_prefixes: list[IPv4Prefix] = field(default_factory=list)

    @property
    def target_asn(self) -> int:
        """The probed AS's autonomous system number."""
        return self.spec.asn


def build_measurement_network(
    spec: AsSpec,
    vp_names: list[str],
    seed: int = 0,
) -> MeasurementNetwork:
    """Build the full measurement internetwork for one portfolio AS."""
    if not vp_names:
        raise ValueError("at least one vantage point is required")
    rng = DeterministicRng("internet", seed, spec.as_id)
    network = Network()
    scenario = spec.scenario

    builder = (
        build_pop_intra_as
        if scenario.topology_style == "pop"
        else build_intra_as
    )
    target = builder(
        network,
        spec.asn,
        n_core=scenario.n_core,
        n_edge=scenario.n_edge,
        n_border=scenario.n_border,
        seed=seed,
        name_prefix=f"as{spec.asn}",
    )
    prefixes = list(target.prefixes)

    # Customer cones: single-router stubs behind PEs/borders whose
    # prefixes make probes *transit* the target AS.
    attach_pool = target.edges + target.borders
    for i in range(scenario.n_customers):
        customer = network.add_router(
            f"cust{i}-of-{spec.asn}",
            _CUSTOMER_ASN_BASE + i,
            role=RouterRole.EDGE,
        )
        network.add_link(customer, rng.choice(attach_pool), cost=10)
        prefixes.append(network.announce_prefix(customer, 24))

    # Upstream transit: two plain-IP chains from the VP side into
    # distinct target borders.
    transits: list[list[Router]] = []
    borders = target.borders or target.core
    n_transits = min(3, max(2, len(borders)))
    for t in range(n_transits):
        chain = []
        for i in range(3):
            chain.append(
                network.add_router(
                    f"tr{t}-r{i}",
                    _TRANSIT_ASN_BASE + t,
                    role=RouterRole.CORE,
                )
            )
            if i:
                network.add_link(chain[i - 1], chain[i], cost=10)
        entry = borders[t % len(borders)]
        network.add_link(chain[-1], entry, cost=10)
        transits.append(chain)

    vantage_points: dict[str, int] = {}
    for i, name in enumerate(vp_names):
        vp = network.add_router(
            f"vp-{name}", _VP_ASN_BASE + i, role=RouterRole.VANTAGE
        )
        network.add_link(vp, transits[i % len(transits)][0], cost=10)
        vantage_points[name] = vp.router_id

    igp = ShortestPaths(network)
    ldp = LdpState(network, seed=seed)
    deployment = apply_scenario(network, spec.asn, scenario, seed=seed)
    domains = (
        {spec.asn: deployment.sr_domain}
        if deployment.sr_domain is not None
        else {}
    )
    controller = TunnelController(network, igp, ldp, domains)
    controller.set_policy(deployment.policy)
    # Converge all demand-driven label state (LDP bindings, RSVP LSPs,
    # adjacency/binding SIDs) in canonical order: label values must be
    # a function of the network, never of which VP probes first.
    controller.converge()
    engine = ForwardingEngine(network, igp, controller)
    assert_valid(network, controller)
    return MeasurementNetwork(
        spec=spec,
        network=network,
        igp=igp,
        ldp=ldp,
        controller=controller,
        engine=engine,
        deployment=deployment,
        target=target,
        vantage_points=vantage_points,
        target_prefixes=prefixes,
    )
