"""Tests for label-space statistics (Fig. 16)."""

import pytest

from repro.analysis.labels import (
    LABEL_BUCKETS,
    bucket_of,
    label_bucket_rows,
    low_label_share,
    share_in_sr_ranges,
)


class TestBuckets:
    def test_buckets_partition_label_space(self):
        previous_high = -1
        for low, high in LABEL_BUCKETS:
            assert low == previous_high + 1
            previous_high = high
        assert previous_high == 2**20 - 1

    def test_bucket_of(self):
        assert bucket_of(0) == 0
        assert bucket_of(16_500) == 3  # the Cisco/Huawei SRGB bucket
        assert bucket_of(2**20 - 1) == len(LABEL_BUCKETS) - 1

    def test_bucket_of_out_of_range(self):
        with pytest.raises(ValueError):
            bucket_of(2**20)


class TestRows:
    def test_rows_built(self, small_portfolio_results):
        rows = label_bucket_rows(small_portfolio_results)
        assert {r.as_id for r in rows} == set(small_portfolio_results)

    def test_labels_skew_low(self, small_portfolio_results):
        # Fig. 16: "most MPLS 20-bit labels encountered were relatively
        # small numbers ... very few instances above 100,000".
        rows = label_bucket_rows(small_portfolio_results)
        assert low_label_share(rows, cutoff=100_000) > 0.5

    def test_sr_range_share_positive(self, small_portfolio_results):
        rows = label_bucket_rows(small_portfolio_results)
        assert share_in_sr_ranges(rows) > 0.0

    def test_esnet_labels_in_srgb_bucket(self, small_portfolio_results):
        rows = label_bucket_rows(small_portfolio_results)
        esnet = next(r for r in rows if r.as_id == 46)
        assert esnet.total > 0
        assert esnet.bucket_counts[3] > 0  # 16,000-23,999

    def test_empty_rows(self):
        assert low_label_share([]) == 0.0
        assert share_in_sr_ranges([]) == 0.0
