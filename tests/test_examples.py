"""Smoke tests: every example script must run and produce its story.

Executed in-process (imported as modules via runpy) so coverage and
failure reporting stay meaningful.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "AReST detection" in out
    assert "CVR" in out
    assert "Segment Routing, not LDP" in out


def test_ground_truth_validation(capsys):
    out = run_example("ground_truth_validation.py", [], capsys)
    assert "Table 3" in out
    assert "precision=1.000" in out
    assert "zero false positives" in out


def test_offline_detection(tmp_path, capsys):
    # first build a dataset, then run the example against it
    from repro.campaign import CampaignRunner

    dataset_path = tmp_path / "as28.jsonl"
    CampaignRunner(
        seed=1, vps_per_as=2, targets_per_as=10
    ).run_as(28).dataset.dump_jsonl(dataset_path)
    capsys.readouterr()
    out = run_example("offline_detection.py", [str(dataset_path)], capsys)
    assert "distinct segments" in out
    assert "hop areas" in out


def test_portfolio_campaign_with_dump(tmp_path, capsys):
    out = run_example("portfolio_campaign.py", [str(tmp_path)], capsys)
    assert "Fig. 8" in out
    assert "headline" in out
    dumped = list(tmp_path.glob("*.jsonl"))
    assert len(dumped) == 41


@pytest.mark.slow
def test_interworking_study(capsys):
    out = run_example("interworking_study.py", [], capsys)
    assert "Interworking mode mix" in out
    assert "SR->LDP" in out
    assert "cloud sizes" in out


def test_sr_policy_splice(capsys):
    out = run_example("sr_policy_splice.py", [], capsys)
    assert "binding SID" in out
    assert "spliced in" in out
    assert "CO" in out


def test_controlled_validation(capsys):
    out = run_example("controlled_validation.py", [], capsys)
    assert out.count("PASS") == 5
    assert "all five flags isolated" in out


@pytest.mark.slow
def test_adoption_timeline(capsys):
    out = run_example("adoption_timeline.py", [], capsys)
    assert "adoption" in out
    assert "2025" in out
    assert "never adopts SR" in out
