"""Fig. 13 -- tunnel-type distribution and explicit-tunnel path shares.

The paper (Appendix C): explicit tunnels exceed the other categories
overall, while stub ASes are almost entirely invisible/implicit --
which is why AReST finds nothing there.
"""

from collections import Counter

from repro.analysis.tunnel_stats import (
    explicit_share_by_role,
    tunnel_type_rows,
)
from repro.probing.tunnels import TunnelType
from repro.topogen.as_types import AsRole
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig13_tunnel_types(benchmark, portfolio_results):
    rows = benchmark(lambda: tunnel_type_rows(portfolio_results))

    table = []
    for row in rows:
        if row.total() == 0:
            continue
        table.append(
            (
                f"AS#{row.as_id}",
                str(row.role),
                f"{row.share(TunnelType.EXPLICIT):.2f}",
                f"{row.share(TunnelType.IMPLICIT):.2f}",
                f"{row.share(TunnelType.OPAQUE):.2f}",
                f"{row.share(TunnelType.INVISIBLE):.2f}",
                f"{row.share_paths_with_explicit:.2f}",
            )
        )
    emit(
        format_table(
            ["AS", "Role", "expl", "impl", "opaq", "invis", "paths-expl"],
            table,
            title="Fig. 13 -- tunnel types per AS",
        )
    )

    totals: Counter = Counter()
    for row in rows:
        for tunnel_type, count in row.counts:
            totals[tunnel_type] += count

    # Shape 1: explicit tunnels dominate overall (paper: ~76%).
    total_tunnels = sum(totals.values())
    explicit_share = totals[TunnelType.EXPLICIT] / total_tunnels
    emit(f"overall explicit share: {explicit_share:.1%} (paper: ~76%)")
    assert explicit_share >= 0.5
    assert totals[TunnelType.EXPLICIT] == max(totals.values())

    # Shape 2: stubs show far fewer explicit tunnels than transits.
    stub_share = explicit_share_by_role(rows, AsRole.STUB)
    transit_share = explicit_share_by_role(rows, AsRole.TRANSIT)
    emit(
        f"explicit share: stubs={stub_share:.1%} "
        f"transits={transit_share:.1%}"
    )
    assert transit_share > stub_share

    # Shape 3: the no-explicit narrative ASes (#2, #3, #16, #44)
    # show (almost) no explicit-tunnel paths.
    by_id = {r.as_id: r for r in rows}
    for as_id in (2, 3, 16, 44):
        if as_id in by_id:
            assert by_id[as_id].share_paths_with_explicit <= 0.25, as_id
