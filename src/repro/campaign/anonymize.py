"""Prefix-preserving dataset anonymization.

The paper publishes its collected traces; responsible releases rewrite
addresses so that real infrastructure is not exposed while topology
analyses still work.  This module implements deterministic
prefix-preserving anonymization (Crypto-PAn style, keyed): two
addresses sharing an n-bit prefix before anonymization share exactly an
n-bit prefix after it, so longest-prefix analyses, alias grouping and
per-/24 aggregations survive the rewrite.
"""

from __future__ import annotations

from repro.campaign.dataset import TraceDataset
from repro.netsim.addressing import IPv4Address
from repro.probing.records import Trace, TraceHop
from repro.util.determinism import int_hash


class PrefixPreservingAnonymizer:
    """Keyed, deterministic, prefix-preserving IPv4 anonymization.

    For every bit position the flip decision depends only on the key and
    the (already-anonymized-input) prefix above it, which yields the
    prefix-preservation property; the same key always produces the same
    mapping, so datasets anonymized separately remain joinable.
    """

    def __init__(self, key: str) -> None:
        if not key:
            raise ValueError("an anonymization key is required")
        self._key = key
        self._cache: dict[int, int] = {}

    def anonymize_address(self, address: IPv4Address) -> IPv4Address:
        """The anonymized counterpart of one address (cached)."""
        value = address.value
        cached = self._cache.get(value)
        if cached is not None:
            return IPv4Address(cached)
        out = 0
        for bit_index in range(32):
            shift = 31 - bit_index
            original_bit = (value >> shift) & 1
            prefix = value >> (shift + 1)  # the bits above this one
            flip = int_hash("ppa", self._key, bit_index, prefix) & 1
            out = (out << 1) | (original_bit ^ flip)
        self._cache[value] = out
        return IPv4Address(out)

    # -- dataset-level ------------------------------------------------------

    def anonymize_hop(self, hop: TraceHop, strip_truth: bool = True) -> TraceHop:
        """Rewrite one hop; ground-truth annotations are stripped by
        default (they would deanonymize the release)."""
        changes: dict = {}
        if hop.address is not None:
            changes["address"] = self.anonymize_address(hop.address)
        if strip_truth:
            changes.update(
                truth_router_id=None,
                truth_asn=None,
                truth_planes=(),
                truth_uniform=True,
            )
        return hop.with_annotation(**changes)

    def anonymize_trace(self, trace: Trace, strip_truth: bool = True) -> Trace:
        """A rewritten copy of one trace."""
        from dataclasses import replace

        return replace(
            trace,
            destination=self.anonymize_address(trace.destination),
            hops=tuple(
                self.anonymize_hop(h, strip_truth) for h in trace.hops
            ),
        )

    def anonymize_dataset(
        self, dataset: TraceDataset, strip_truth: bool = True
    ) -> TraceDataset:
        """A releasable copy of the dataset (the original is untouched)."""
        return TraceDataset(
            target_asn=dataset.target_asn,
            traces=[
                self.anonymize_trace(t, strip_truth) for t in dataset
            ],
            metadata={**dataset.metadata, "anonymized": "prefix-preserving"},
        )


def shared_prefix_length(a: IPv4Address, b: IPv4Address) -> int:
    """Length of the common bit prefix of two addresses."""
    diff = a.value ^ b.value
    if diff == 0:
        return 32
    return 32 - diff.bit_length()
