"""Property tests: default-on sanitization never perturbs clean
campaigns, and corrupted campaigns replay deterministically."""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.campaign.runner import CampaignRunner
from repro.netsim.faults import FaultPlan
from repro.probing.sanitize import TraceSanitizer

from tests.conftest import scaled_examples

_CAMPAIGN_ASES = (27, 46)

_trace_cache: dict[int, list] = {}


def _campaign_traces(as_id: int) -> list:
    """Traces from one clean campaign run (cached; runs are expensive)."""
    if as_id not in _trace_cache:
        result = CampaignRunner(
            seed=3, vps_per_as=2, targets_per_as=8
        ).run_as(as_id)
        _trace_cache[as_id] = list(result.dataset)
    return _trace_cache[as_id]


def _dataset_bytes(dataset) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dataset.jsonl"
        dataset.dump_jsonl(path)
        return path.read_bytes()


@settings(max_examples=scaled_examples(30), deadline=None)
@given(
    as_id=st.sampled_from(_CAMPAIGN_ASES),
    index=st.integers(min_value=0, max_value=10_000),
)
def test_sanitizer_is_identity_on_clean_campaign_traces(as_id, index):
    """Every well-formed trace sanitizes to the *same object* with no
    anomalies -- the pass-through that keeps clean runs byte-identical."""
    traces = _campaign_traces(as_id)
    trace = traces[index % len(traces)]
    result = TraceSanitizer().sanitize(trace)
    assert result.trace is trace
    assert result.anomalies == []


@settings(max_examples=scaled_examples(6), deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30),
    as_id=st.sampled_from(_CAMPAIGN_ASES),
)
def test_clean_campaign_has_no_anomalies(seed, as_id):
    """With no corruption injected, the default-on sanitizer stays
    invisible: nothing flagged, nothing quarantined, every trace
    analyzed."""
    result = CampaignRunner(
        seed=seed, vps_per_as=2, targets_per_as=6
    ).run_as(as_id)
    analysis = result.analysis
    assert analysis.anomalies == []
    assert analysis.traces_quarantined == 0
    assert analysis.traces_analyzed == analysis.traces_total
    assert "trace_anomalies" not in result.dataset.metadata


@settings(max_examples=scaled_examples(5), deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30),
    rate=st.floats(min_value=0.01, max_value=0.30),
)
def test_corrupted_campaign_replays_byte_identical(seed, rate):
    """The corruption schedule is part of the deterministic contract:
    the same plan and seed reproduce the same corrupted dataset, the
    same fault counters and the same quarantine decisions."""

    def run():
        return CampaignRunner(
            seed=seed,
            vps_per_as=2,
            targets_per_as=6,
            fault_plan=FaultPlan.corruption(rate, seed=seed),
        ).run_as(46)

    a, b = run(), run()
    assert _dataset_bytes(a.dataset) == _dataset_bytes(b.dataset)
    assert a.fault_counters == b.fault_counters
    assert a.analysis.flag_counts() == b.analysis.flag_counts()
    assert a.analysis.traces_quarantined == b.analysis.traces_quarantined
    assert a.analysis.anomaly_counts() == b.analysis.anomaly_counts()


@settings(max_examples=scaled_examples(5), deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30),
    rate=st.floats(min_value=0.05, max_value=0.40),
    as_id=st.sampled_from(_CAMPAIGN_ASES),
)
def test_quarantine_reconciliation_under_corruption(seed, rate, as_id):
    """No trace is silently dropped: analyzed + quarantined always
    reconciles with collected, at any corruption intensity."""
    result = CampaignRunner(
        seed=seed,
        vps_per_as=2,
        targets_per_as=6,
        fault_plan=FaultPlan.corruption(rate, seed=seed),
    ).run_as(as_id)
    analysis = result.analysis
    assert (
        analysis.traces_analyzed + analysis.traces_quarantined
        == analysis.traces_total
    )
    assert analysis.traces_total == len(result.dataset.traces)
    if analysis.traces_quarantined:
        assert result.dataset.metadata["traces_quarantined"] == str(
            analysis.traces_quarantined
        )
