"""MPLS label-space occupancy (Fig. 16, Appendix C).

Buckets every 20-bit label observed across the campaign and shows the
skew toward low values: most labels sit in the tens of thousands or
below, very few above 100,000.  Since the vendor SR blocks also live in
the low label space, the skew inherently boosts the chance that an
observed label falls inside a known SR range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.campaign.runner import AsCampaignResult
from repro.core.vendor_ranges import known_sr_ranges

#: Fig. 16's x-axis buckets (inclusive bounds)
LABEL_BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 999),
    (1_000, 9_999),
    (10_000, 15_999),
    (16_000, 23_999),  # the Cisco/Huawei SRGB region
    (24_000, 47_999),
    (48_000, 99_999),
    (100_000, 299_999),
    (300_000, 999_999),
    (1_000_000, 2**20 - 1),
)


@dataclass(frozen=True, slots=True)
class LabelBucketRow:
    """One AS's Fig. 16 heatmap column."""

    as_id: int
    name: str
    bucket_counts: tuple[int, ...]  # parallel to LABEL_BUCKETS

    @property
    def total(self) -> int:
        """All label observations in this AS."""
        return sum(self.bucket_counts)


def bucket_of(label: int) -> int:
    """Index of the bucket containing ``label``."""
    for i, (low, high) in enumerate(LABEL_BUCKETS):
        if low <= label <= high:
            return i
    raise ValueError(f"label out of 20-bit space: {label}")


def observed_labels(result: AsCampaignResult) -> Iterable[int]:
    """Every label value quoted in the AS's traces (with multiplicity)."""
    for trace in result.dataset:
        for hop in trace.hops:
            if hop.lses and hop.truth_asn == result.spec.asn:
                for lse in hop.lses:
                    yield lse.label


def label_bucket_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[LabelBucketRow]:
    """One Fig. 16 row per AS, ordered by id."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        counts = [0] * len(LABEL_BUCKETS)
        for label in observed_labels(result):
            counts[bucket_of(label)] += 1
        rows.append(
            LabelBucketRow(
                as_id=as_id,
                name=result.spec.name,
                bucket_counts=tuple(counts),
            )
        )
    return rows


def low_label_share(rows: list[LabelBucketRow], cutoff: int = 100_000) -> float:
    """Share of observed labels below ``cutoff`` (the Fig. 16 skew)."""
    low = total = 0
    for row in rows:
        for (bucket_low, bucket_high), count in zip(
            LABEL_BUCKETS, row.bucket_counts
        ):
            total += count
            if bucket_high < cutoff:
                low += count
    return low / total if total else 0.0


def share_in_sr_ranges(rows: list[LabelBucketRow]) -> float:
    """Approximate share of observed labels inside Table 1 SR ranges,
    using bucket resolution (buckets were chosen to align with the
    Cisco/Huawei SRGB region)."""
    ranges = known_sr_ranges()
    hits = total = 0
    for row in rows:
        for (bucket_low, bucket_high), count in zip(
            LABEL_BUCKETS, row.bucket_counts
        ):
            total += count
            if any(
                r.low <= bucket_low and bucket_high <= r.high for r in ranges
            ):
                hits += count
    return hits / total if total else 0.0
