"""Synthetic portfolios: lazy, deterministic, picklable, bounded."""

import pickle

import pytest

from repro.campaign.vantage_points import default_vantage_points
from repro.topogen.as_types import AsRole
from repro.topogen.synthetic import (
    _SPEC_CACHE_MAX,
    SyntheticPortfolio,
    synthetic_vantage_points,
)


class TestSyntheticPortfolio:
    def test_len_and_iteration(self):
        portfolio = SyntheticPortfolio(5, seed=1)
        assert len(portfolio) == 5
        specs = list(portfolio)
        assert [s.as_id for s in specs] == [1, 2, 3, 4, 5]
        assert all(s.analyzed for s in specs)

    def test_specs_are_pure_functions_of_seed_and_id(self):
        one = SyntheticPortfolio(100, seed=7)
        two = SyntheticPortfolio(100, seed=7)
        for as_id in (1, 42, 100):
            a, b = one.spec(as_id), two.spec(as_id)
            assert (a.asn, a.name, a.role, a.confirmation) == (
                b.asn, b.name, b.role, b.confirmation
            )
            assert a.scenario == b.scenario

    def test_different_seed_changes_the_internet(self):
        one = SyntheticPortfolio(50, seed=1)
        two = SyntheticPortfolio(50, seed=2)
        assert any(
            one.spec(i).ips_discovered != two.spec(i).ips_discovered
            for i in range(1, 51)
        )

    def test_out_of_range_and_bad_construction(self):
        portfolio = SyntheticPortfolio(3, seed=1)
        with pytest.raises(KeyError):
            portfolio.spec(0)
        with pytest.raises(KeyError):
            portfolio.spec(4)
        with pytest.raises(ValueError):
            SyntheticPortfolio(0)
        with pytest.raises(ValueError):
            SyntheticPortfolio(3, profile="enormous")

    def test_spec_cache_stays_bounded(self):
        portfolio = SyntheticPortfolio(_SPEC_CACHE_MAX * 3, seed=1)
        for as_id in range(1, _SPEC_CACHE_MAX * 3 + 1):
            portfolio.spec(as_id)
        assert len(portfolio._spec_cache) <= _SPEC_CACHE_MAX

    def test_picklable_for_worker_spawn_configs(self):
        portfolio = SyntheticPortfolio(10, seed=3)
        portfolio.spec(4)  # warm the cache: must not break pickling
        clone = pickle.loads(pickle.dumps(portfolio))
        assert clone.spec(4).scenario == portfolio.spec(4).scenario
        assert clone.as_dict() == portfolio.as_dict()

    def test_role_mix_covers_the_ladder(self):
        portfolio = SyntheticPortfolio(200, seed=1)
        roles = {spec.role for spec in portfolio}
        assert roles == set(AsRole)
        for role in AsRole:
            assert portfolio.by_role(role)

    def test_views_are_consistent(self):
        portfolio = SyntheticPortfolio(30, seed=5)
        assert len(portfolio.analyzed()) == 30
        assert portfolio.excluded() == []
        confirmed = portfolio.confirmed()
        assert all(s.confirmation.confirmed for s in confirmed)
        assert 0 < len(confirmed) < 30

    def test_as_dict_is_the_config_signature(self):
        assert SyntheticPortfolio(7, seed=2, profile="paper").as_dict() == {
            "kind": "synthetic",
            "n_ases": 7,
            "seed": 2,
            "profile": "paper",
        }


class TestSyntheticVantagePoints:
    def test_small_fleets_are_the_table_4_prefix(self):
        base = default_vantage_points()
        assert synthetic_vantage_points(3) == base[:3]
        assert synthetic_vantage_points(len(base)) == base

    def test_large_fleets_extend_with_deterministic_clones(self):
        base = default_vantage_points()
        fleet = synthetic_vantage_points(len(base) + 10)
        assert fleet[: len(base)] == base
        assert len(fleet) == len(base) + 10
        assert len({vp.vp_id for vp in fleet}) == len(fleet)
        assert fleet == synthetic_vantage_points(len(base) + 10)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            synthetic_vantage_points(0)
