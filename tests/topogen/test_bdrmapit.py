"""Tests for bdrmapIT-style ownership annotation."""

from repro.netsim.addressing import IPv4Address
from repro.topogen.bdrmapit import BdrmapIt

from tests.conftest import TARGET_ASN, VP_ASN, ChainNetwork, make_hop


class TestAnnotation:
    def test_perfect_annotation(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network, error_rate=0.0)
        for router in chain.routers:
            for address in router.interfaces.values():
                assert bdrmap.asn_of_address(address) == TARGET_ASN
        assert (
            bdrmap.asn_of_address(chain.vp.loopback) == VP_ASN
        )

    def test_unknown_address(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network)
        assert (
            bdrmap.asn_of_address(
                IPv4Address.from_string("203.0.113.44")
            )
            is None
        )

    def test_announced_prefix_attributed_to_origin_as(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network)
        assert bdrmap.asn_of_address(chain.target) == TARGET_ASN

    def test_errors_go_to_neighbor_as(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network, error_rate=1.0, seed=5)
        # the first AS router borders the VP's AS: full error rate must
        # flip it to a *neighbouring* AS, never an arbitrary one
        border = chain.routers[0]
        address = border.interfaces[chain.vp.router_id]
        wrong = bdrmap.asn_of_address(address)
        assert wrong in (VP_ASN, TARGET_ASN)

    def test_interior_router_has_no_foreign_neighbor(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network, error_rate=1.0, seed=5)
        interior = chain.routers[2]
        address = interior.interfaces[chain.routers[1].router_id]
        # fallback: no foreign neighbour -> truth preserved
        assert bdrmap.asn_of_address(address) == TARGET_ASN

    def test_cached_and_stable(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network, error_rate=0.5, seed=5)
        address = chain.routers[0].interfaces[chain.vp.router_id]
        assert bdrmap.asn_of_address(address) == bdrmap.asn_of_address(
            address
        )

    def test_hop_adapter(self):
        chain = ChainNetwork()
        bdrmap = BdrmapIt(chain.network)
        hop = make_hop(1, str(chain.routers[0].loopback))
        assert bdrmap.asn_of_hop(hop) == TARGET_ASN
        assert bdrmap.asn_of_hop(make_hop(2, None)) is None

    def test_invalid_error_rate(self):
        import pytest

        chain = ChainNetwork()
        with pytest.raises(ValueError):
            BdrmapIt(chain.network, error_rate=1.5)
