"""Tests for the per-vendor segment/flag breakdown."""

from repro.analysis.vendor_breakdown import (
    RANGE_PREFIX,
    UNATTRIBUTED,
    VendorBreakdownAccumulator,
    campaign_vendor_breakdown,
    vendor_breakdown,
)
from repro.core.columnar import ColumnarDetector, TraceBatch
from repro.fingerprint.records import Fingerprint
from repro.netsim.addressing import IPv4Address
from repro.netsim.vendors import Vendor

from tests.conftest import make_hop, make_trace


def fingerprinted(mapping):
    return {
        IPv4Address.from_string(address): fp
        for address, fp in mapping.items()
    }


class TestAttributionLadder:
    def test_confirming_hop_wins(self):
        """A fingerprinted in-range hop names the vendor exactly."""
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16001,)),
                make_hop(2, "10.0.0.2", labels=(16001,)),
            ]
        )
        fps = fingerprinted(
            {"10.0.0.2": Fingerprint.from_snmp(Vendor.CISCO)}
        )
        doc = vendor_breakdown([(trace, fps)])
        assert list(doc["vendors"]) == [Vendor.CISCO.value]
        assert doc["vendors"]["Cisco"]["flags"] == {"CVR": 1}

    def test_fingerprint_without_range_still_attributes(self):
        """Out-of-range fingerprint evidence beats label inference."""
        trace = make_trace(
            [
                # Juniper has no Table 1 ranges: the run stays CO but
                # the fingerprint still says whose gear answered
                make_hop(1, "10.0.0.1", labels=(16001,)),
                make_hop(2, "10.0.0.2", labels=(16001,)),
            ]
        )
        fps = fingerprinted(
            {"10.0.0.1": Fingerprint.from_snmp(Vendor.JUNIPER)}
        )
        doc = vendor_breakdown([(trace, fps)])
        assert list(doc["vendors"]) == [Vendor.JUNIPER.value]
        assert doc["vendors"]["Juniper"]["flags"] == {"CO": 1}

    def test_range_inference_is_marked(self):
        """No fingerprints at all: Table 1 gives a prefixed class."""
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16005,)),
                make_hop(2, "10.0.0.2", labels=(16005,)),
            ]
        )
        doc = vendor_breakdown([(trace, {})])
        (vendor,) = doc["vendors"]
        assert vendor.startswith(RANGE_PREFIX)
        assert "Cisco" in vendor and "Huawei" in vendor

    def test_unattributed(self):
        """Deep stack outside every known range, no fingerprints."""
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(500_000, 500_001))]
        )
        doc = vendor_breakdown([(trace, {})])
        assert list(doc["vendors"]) == [UNATTRIBUTED]
        assert doc["vendors"][UNATTRIBUTED]["flags"] == {"LSO": 1}


class TestAccumulator:
    def make_pairs(self):
        pairs = []
        for k in range(10):
            label = 16000 + (k % 2)
            pairs.append(
                (
                    make_trace(
                        [
                            make_hop(1, f"10.2.{k}.1", labels=(label,)),
                            make_hop(2, f"10.2.{k}.2", labels=(label,)),
                        ]
                    ),
                    {},
                )
            )
        return pairs

    def test_chunking_invariant(self):
        """One batch or many chunks: the merged document is identical."""
        pairs = self.make_pairs()
        detector = ColumnarDetector()

        whole = VendorBreakdownAccumulator()
        batch = TraceBatch.from_pairs(pairs)
        whole.feed_batch(batch, detector.detect_batch(batch))

        chunked = VendorBreakdownAccumulator()
        for lo in range(0, len(pairs), 3):
            part = TraceBatch.from_pairs(pairs[lo : lo + 3])
            chunked.feed_batch(part, detector.detect_batch(part))

        assert whole.as_doc() == chunked.as_doc()

    def test_distinct_vs_occurrences(self):
        pairs = self.make_pairs()
        doc = vendor_breakdown(pairs)
        # 10 occurrences (one run per trace) but only 2 distinct label
        # values x disjoint addresses -> every segment key is distinct
        assert doc["segment_occurrences"] == 10
        assert doc["distinct_segments"] == 10
        assert doc["traces"] == 10

    def test_mismatched_detections_rejected(self):
        import pytest

        pairs = self.make_pairs()
        batch = TraceBatch.from_pairs(pairs)
        accumulator = VendorBreakdownAccumulator()
        with pytest.raises(ValueError):
            accumulator.feed_batch(batch, [[]])


class TestCampaignBreakdown:
    def test_occurrences_match_stored_segments(
        self, small_portfolio_results
    ):
        doc = campaign_vendor_breakdown(small_portfolio_results)
        stored = sum(
            len(segments)
            for result in small_portfolio_results.values()
            for _trace, segments in result.trace_segments
        )
        assert doc["segment_occurrences"] == stored
        assert doc["vendors"]  # the portfolio fingerprints real vendors
        per_vendor = sum(
            entry["occurrences"] for entry in doc["vendors"].values()
        )
        assert per_vendor == stored
