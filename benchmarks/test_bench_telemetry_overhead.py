"""Performance -- telemetry instrumentation overhead.

The observability layer promises to be effectively free: the default
:data:`~repro.obs.telemetry.NULL_TELEMETRY` path does no extra work at
all, and a live recorder costs two monotonic-clock reads per trace in
the analysis hot loop (:meth:`ArestPipeline.analyze_as` accumulates
sanitize/detect durations in locals and folds them into the recorder
once per AS).  This benchmark holds that promise to a number: <2%
overhead with telemetry enabled, measured as min-of-N over interleaved
repetitions so scheduler noise cannot fake a regression either way.
"""

import time

from repro.core.pipeline import ArestPipeline
from repro.obs import Telemetry

from benchmarks.conftest import emit

#: alternate instrumented/uninstrumented runs this many times and keep
#: the fastest of each -- the stable estimator for a tight-bound check
REPETITIONS = 7

#: corpus replication factor: longer runs drown out timer granularity
COPIES = 5

OVERHEAD_BUDGET = 0.02


def test_bench_telemetry_overhead(esnet_campaign):
    pipeline = ArestPipeline()
    asn = esnet_campaign.spec.asn
    corpus = list(esnet_campaign.dataset.traces) * COPIES
    fingerprints = esnet_campaign.fingerprints

    def run_once(telemetry) -> float:
        tick = time.perf_counter()
        pipeline.analyze_as(asn, corpus, fingerprints, telemetry=telemetry)
        return time.perf_counter() - tick

    # warm caches on both paths before timing anything
    run_once(None)
    run_once(Telemetry())

    baseline = float("inf")
    instrumented = float("inf")
    for _ in range(REPETITIONS):
        baseline = min(baseline, run_once(None))
        instrumented = min(instrumented, run_once(Telemetry()))

    overhead = instrumented / baseline - 1
    emit(
        f"analyze_as over {len(corpus):,} traces: baseline "
        f"{baseline * 1e3:.2f}ms, instrumented {instrumented * 1e3:.2f}ms "
        f"-> overhead {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET
