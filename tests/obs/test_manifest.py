"""Run manifests: provenance, lifecycle, and atomic rewrites."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_FILENAME,
    begin_manifest,
    load_manifest,
)


def _fake_clock(values):
    it = iter(values)
    return lambda: next(it)


class TestManifestLifecycle:
    def test_begin_writes_running_manifest(self, tmp_path):
        begin_manifest(
            tmp_path,
            config={"seed": 1},
            seed=1,
            command="run_portfolio",
            jobs=4,
            as_ids=[27, 46],
            clock=_fake_clock([100.0]),
        )
        record = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        assert record["kind"] == "arest-manifest"
        assert record["exit_status"] == "running"
        assert record["started_unix"] == 100.0
        assert record["finished_unix"] is None
        assert record["duration_seconds"] is None
        assert record["jobs"] == 4
        assert record["as_ids"] == [27, 46]
        assert record["config"] == {"seed": 1}

    def test_environment_provenance_fields(self, tmp_path):
        begin_manifest(
            tmp_path, config={}, seed=0, command="run_as"
        )
        env = load_manifest(tmp_path)["environment"]
        for key in (
            "package_version",
            "python_version",
            "platform",
            "hostname",
            "argv",
        ):
            assert key in env

    def test_finalize_records_outcome_and_duration(self, tmp_path):
        manifest = begin_manifest(
            tmp_path,
            config={},
            seed=1,
            command="run_portfolio",
            clock=_fake_clock([100.0]),
        )
        manifest.finalize("ok", clock=_fake_clock([107.5]))
        record = load_manifest(tmp_path)
        assert record["exit_status"] == "ok"
        assert record["finished_unix"] == 107.5
        assert record["duration_seconds"] == 7.5

    def test_load_missing_returns_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_load_rejects_foreign_json(self, tmp_path):
        (tmp_path / MANIFEST_FILENAME).write_text('{"kind": "other"}')
        with pytest.raises(ValueError, match="not an AReST run manifest"):
            load_manifest(tmp_path)
