"""Link-state interior routing (IS-IS / OSPF stand-in).

The simulator does not model protocol messages; like a converged IGP, it
computes shortest-path trees over the network graph.  One Dijkstra run per
*destination* (costs are symmetric) yields a distance field from which any
router's next hop toward that destination falls out; results are cached.

Determinism matters: the paper's detection signals depend on which path a
Paris traceroute flow takes, so ECMP ties are broken by preferring the
neighbour with the lowest router id.  This makes every experiment in the
benchmark suite reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from repro.netsim.topology import Network

_INFINITY = float("inf")


class NoRouteError(Exception):
    """Raised when no IGP route exists between two routers."""


class ShortestPaths:
    """All-pairs shortest-path oracle with deterministic ECMP tie-breaks."""

    def __init__(self, network: Network) -> None:
        self._network = network
        #: destination -> {router -> distance}
        self._distance_cache: dict[int, dict[int, float]] = {}
        #: (src, dst) -> ECMP next-hop set, lowest router id first
        self._ecmp_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        #: (src, dst) -> shortest-path hop count
        self._hop_count_cache: dict[tuple[int, int], int] = {}
        #: memoize derived lookups (ECMP sets, hop counts) beyond the SPF
        #: distance fields.  Results are identical either way; benchmarks
        #: turn this off to measure the unmemoized cost model.
        self.memoize: bool = True

    def invalidate(self) -> None:
        """Drop cached SPF results (call after topology changes)."""
        self._distance_cache.clear()
        self._ecmp_cache.clear()
        self._hop_count_cache.clear()

    # -- SPF ----------------------------------------------------------------

    def _distances_to(self, dst: int) -> dict[int, float]:
        """Dijkstra from ``dst`` over the undirected graph."""
        cached = self._distance_cache.get(dst)
        if cached is not None:
            return cached
        dist: dict[int, float] = {dst: 0.0}
        heap: list[tuple[float, int]] = [(0.0, dst)]
        visited: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in self._network.neighbors(node):
                link = self._network.link_between(node, neighbor)
                assert link is not None
                nd = d + link.cost
                if nd < dist.get(neighbor, _INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor))
        self._distance_cache[dst] = dist
        return dist

    # -- queries ------------------------------------------------------------

    def distance(self, src: int, dst: int) -> float:
        """IGP metric of the shortest path from ``src`` to ``dst``."""
        dist = self._distances_to(dst).get(src)
        if dist is None:
            raise NoRouteError(f"no route from #{src} to #{dst}")
        return dist

    def reachable(self, src: int, dst: int) -> bool:
        """True when a route from ``src`` to ``dst`` exists."""
        return src in self._distances_to(dst)

    def next_hop(self, src: int, dst: int) -> int:
        """The unique (tie-broken) next hop from ``src`` toward ``dst``."""
        if src == dst:
            raise ValueError("next_hop undefined for src == dst")
        hops = self.ecmp_next_hops(src, dst)
        return hops[0]

    def ecmp_next_hops(self, src: int, dst: int) -> list[int]:
        """Every neighbour on a shortest path, lowest router id first."""
        if not self.memoize:
            return list(self._ecmp_scan(src, dst))
        return list(self._ecmp(src, dst))

    def _ecmp(self, src: int, dst: int) -> tuple[int, ...]:
        cached = self._ecmp_cache.get((src, dst))
        if cached is not None:
            return cached
        result = self._ecmp_scan(src, dst)
        self._ecmp_cache[(src, dst)] = result
        return result

    def _ecmp_scan(self, src: int, dst: int) -> tuple[int, ...]:
        distances = self._distances_to(dst)
        if src not in distances:
            raise NoRouteError(f"no route from #{src} to #{dst}")
        best = distances[src]
        hops = []
        for neighbor in self._network.neighbors(src):
            link = self._network.link_between(src, neighbor)
            assert link is not None
            if distances.get(neighbor, _INFINITY) + link.cost == best:
                hops.append(neighbor)
        if not hops:
            raise NoRouteError(f"no route from #{src} to #{dst}")
        return tuple(hops)

    def path(self, src: int, dst: int) -> list[int]:
        """The tie-broken shortest path, inclusive of both endpoints."""
        path = [src]
        node = src
        guard = self._network.num_routers + 1
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            guard -= 1
            if guard == 0:  # pragma: no cover - defensive
                raise RuntimeError("next-hop loop detected")
        return path

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links on the tie-broken shortest path, memoized.

        Every ICMP reply pays this lookup (return-path length for the
        reply TTL), so one ``path()`` walk seeds the cache for every
        suffix of the path at once.
        """
        if src == dst:
            return 0
        if not self.memoize:
            return len(self.path(src, dst)) - 1
        cached = self._hop_count_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self.path(src, dst)
        length = len(path) - 1
        for i, node in enumerate(path):
            self._hop_count_cache[(node, dst)] = length - i
        return length

    def distances_from(self, src: int) -> Mapping[int, float]:
        """Distance to every reachable router (symmetric costs)."""
        # With symmetric link costs d(src, x) == d(x, src), so reuse the
        # per-destination cache.
        return dict(self._distances_to(src))
