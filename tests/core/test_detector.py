"""Tests for the AReST detector, including a replication of the paper's
Fig. 6 walkthrough (all five flags on one picture)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import ArestDetector
from repro.core.flags import Flag
from repro.fingerprint.records import Fingerprint
from repro.netsim.addressing import IPv4Address
from repro.netsim.vendors import Vendor

from tests.conftest import make_hop, make_trace

CISCO = Fingerprint.from_snmp(Vendor.CISCO)
TTL_CLASS = Fingerprint.from_ttl(frozenset({Vendor.CISCO, Vendor.HUAWEI}))


def fps(*pairs):
    return {
        IPv4Address.from_string(addr): fp for addr, fp in pairs
    }


@pytest.fixture
def detector():
    return ArestDetector()


class TestCvr:
    def test_consecutive_labels_with_vendor_range(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,)),
                make_hop(2, "10.0.0.2", labels=(16_005,)),
                make_hop(3, "10.0.0.3", labels=(16_005,)),
            ]
        )
        segments = detector.detect(
            trace, fps(("10.0.0.1", CISCO))
        )
        assert [s.flag for s in segments] == [Flag.CVR]
        assert segments[0].hop_indices == (0, 1, 2)

    def test_one_fingerprinted_hop_is_enough(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,)),
                make_hop(2, "10.0.0.2", labels=(16_005,)),
            ]
        )
        segments = detector.detect(trace, fps(("10.0.0.2", TTL_CLASS)))
        assert segments[0].flag is Flag.CVR

    def test_fingerprint_without_range_match_stays_co(self, detector):
        # label outside the vendor range: CVR cannot fire
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(500_000,)),
                make_hop(2, "10.0.0.2", labels=(500_000,)),
            ]
        )
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert segments[0].flag is Flag.CO

    def test_suffix_matched_run(self, detector):
        # footnote 4: 16,005 -> 13,005 continues the run
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,)),
                make_hop(2, "10.0.0.2", labels=(13_005,)),
            ]
        )
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert segments[0].flag is Flag.CVR
        assert segments[0].suffix_based


class TestCo:
    def test_consecutive_without_fingerprints(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2", labels=(17_005,)),
                make_hop(3, "10.0.0.3", labels=(17_005,)),
            ]
        )
        segments = detector.detect(trace, {})
        assert [s.flag for s in segments] == [Flag.CO]

    def test_run_broken_by_unlabeled_hop(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2"),
                make_hop(3, "10.0.0.3", labels=(17_005,)),
            ]
        )
        segments = detector.detect(trace, {})
        assert segments == []  # two singletons, depth 1, no range

    def test_run_broken_by_star(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, None),
                make_hop(3, "10.0.0.3", labels=(17_005,)),
            ]
        )
        assert detector.detect(trace, {}) == []

    def test_different_labels_no_run(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2", labels=(99_001,)),
            ]
        )
        assert detector.detect(trace, {}) == []


class TestStackFlags:
    def test_lsvr(self, detector):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(20_000, 37_000))]
        )
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert [s.flag for s in segments] == [Flag.LSVR]

    def test_lvr(self, detector):
        trace = make_trace([make_hop(1, "10.0.0.1", labels=(16_500,))])
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert [s.flag for s in segments] == [Flag.LVR]

    def test_lso(self, detector):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(600_000, 700_000))]
        )
        segments = detector.detect(trace, {})
        assert [s.flag for s in segments] == [Flag.LSO]

    def test_single_unmatched_label_raises_nothing(self, detector):
        # Sec. 6.3's false-negative case: indistinguishable from MPLS.
        trace = make_trace([make_hop(1, "10.0.0.1", labels=(600_000,))])
        assert detector.detect(trace, {}) == []

    def test_lsvr_checks_top_label_only(self, detector):
        # bottom label in range, top outside: not LSVR
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(600_000, 16_005))]
        )
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert [s.flag for s in segments] == [Flag.LSO]

    def test_srlb_label_triggers_lvr(self, detector):
        trace = make_trace([make_hop(1, "10.0.0.1", labels=(15_100,))])
        segments = detector.detect(trace, fps(("10.0.0.1", CISCO)))
        assert [s.flag for s in segments] == [Flag.LVR]


class TestFiltersAndEdges:
    def test_hop_filter_breaks_runs(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,), truth_planes=("sr",)),
                make_hop(2, "10.0.0.2", labels=(17_005,)),
            ]
        )
        segments = detector.detect(
            trace, {}, hop_filter=lambda h: bool(h.truth_planes)
        )
        assert segments == []  # the run split; singleton depth-1 silent

    def test_tnt_revealed_hops_excluded(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2", labels=(17_005,), tnt_revealed=True),
            ]
        )
        # revealed hops never carry LSEs in reality; even if they did,
        # the detector must not consume them
        assert detector.detect(trace, {}) == []

    def test_empty_trace(self, detector):
        assert detector.detect(make_trace([]), {}) == []

    def test_callable_fingerprint_lookup(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_005,)),
                make_hop(2, "10.0.0.2", labels=(16_005,)),
            ]
        )
        segments = detector.detect(trace, lambda addr: CISCO)
        assert segments[0].flag is Flag.CVR

    def test_min_run_length_configurable(self):
        detector = ArestDetector(min_run_length=3)
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2", labels=(17_005,)),
            ]
        )
        assert detector.detect(trace, {}) == []
        with pytest.raises(ValueError):
            ArestDetector(min_run_length=1)

    def test_segments_sorted_by_position(self, detector):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(600_000, 700_000)),
                make_hop(2, "10.0.0.2"),
                make_hop(3, "10.0.0.3", labels=(17_005,)),
                make_hop(4, "10.0.0.4", labels=(17_005,)),
            ]
        )
        segments = detector.detect(trace, {})
        assert [s.flag for s in segments] == [Flag.LSO, Flag.CO]


class TestFig6Walkthrough:
    """The paper's Fig. 6: all five flags in one (concatenated) picture."""

    def test_all_five_flags(self, detector):
        trace = make_trace(
            [
                # green path: P1-P3 share 16,005; P1 fingerprinted Cisco
                make_hop(1, "10.1.0.1", labels=(16_005,)),
                make_hop(2, "10.1.0.2", labels=(16_005,)),
                make_hop(3, "10.1.0.3", labels=(16_005,)),
                make_hop(4, "10.9.0.1"),  # plain IP separator
                # gray path: P4-P6 share 17,005; nobody fingerprinted
                make_hop(5, "10.2.0.1", labels=(17_005,)),
                make_hop(6, "10.2.0.2", labels=(17_005,)),
                make_hop(7, "10.2.0.3", labels=(17_005,)),
                make_hop(8, "10.9.0.2"),
                # purple path: P7 Cisco with stack [20,000; 37,000]
                make_hop(9, "10.3.0.1", labels=(20_000, 37_000)),
                make_hop(10, "10.9.0.3"),
                # blue path: P9 Cisco with single in-range label
                make_hop(11, "10.4.0.1", labels=(16_900,)),
                make_hop(12, "10.9.0.4"),
                # orange path: P10 stack of 2, no vendor mapping
                make_hop(13, "10.5.0.1", labels=(400_000, 410_000)),
            ]
        )
        fingerprints = fps(
            ("10.1.0.1", CISCO),
            ("10.3.0.1", CISCO),
            ("10.4.0.1", CISCO),
        )
        segments = detector.detect(trace, fingerprints)
        assert [s.flag for s in segments] == [
            Flag.CVR,
            Flag.CO,
            Flag.LSVR,
            Flag.LVR,
            Flag.LSO,
        ]
        cvr, co, lsvr, lvr, lso = segments
        assert cvr.hop_indices == (0, 1, 2)
        assert co.hop_indices == (4, 5, 6)
        assert lsvr.hop_indices == (8,)
        assert lvr.hop_indices == (10,)
        assert lso.hop_indices == (12,)


@settings(max_examples=30, deadline=None)
@given(
    run_length=st.integers(min_value=2, max_value=6),
    label=st.integers(min_value=16, max_value=2**20 - 1),
)
def test_any_consecutive_run_is_flagged(run_length, label):
    """Property: >= 2 consecutive identical labels always raise CVR/CO."""
    detector = ArestDetector()
    trace = make_trace(
        [
            make_hop(i + 1, f"10.0.0.{i + 1}", labels=(label,))
            for i in range(run_length)
        ]
    )
    segments = detector.detect(trace, {})
    assert len(segments) == 1
    assert segments[0].flag in (Flag.CVR, Flag.CO)
    assert segments[0].length == run_length


@settings(max_examples=30, deadline=None)
@given(
    depth=st.integers(min_value=2, max_value=6),
    top=st.integers(min_value=300_000, max_value=2**20 - 1),
)
def test_any_deep_stack_is_at_least_lso(depth, top):
    """Property: an isolated stack of depth >= 2 always raises a flag."""
    detector = ArestDetector()
    labels = tuple([top] + [500_000 + i for i in range(depth - 1)])
    trace = make_trace([make_hop(1, "10.0.0.1", labels=labels)])
    segments = detector.detect(trace, {})
    assert len(segments) == 1
    assert segments[0].flag in (Flag.LSO, Flag.LSVR)
