"""Paris traceroute over the simulated data plane.

Sends TTL-increasing UDP probes with a *constant flow identifier* so
per-flow ECMP keeps the path stable (Augustin et al.), records the
responding address, RTT, reply TTL and any RFC 4950-quoted label stack.

RTTs are synthesized from hop counts with deterministic jitter -- enough
for TNT-style heuristics (RTT jumps at tunnel entrances) to have
something to look at without pretending to model queueing.
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultInjector
from repro.netsim.forwarding import ForwardingEngine, ProbeReply, ReplyKind
from repro.probing.records import QuotedLse, Trace, TraceHop
from repro.util.determinism import unit_hash
from repro.util.retry import RetryAccounting, RetryPolicy

#: per-hop one-way latency used to synthesize RTTs, in milliseconds
_HOP_LATENCY_MS = 0.42
_MAX_CONSECUTIVE_STARS = 4


def _quote(reply: ProbeReply) -> tuple[QuotedLse, ...] | None:
    if reply.quoted_stack is None:
        return None
    return tuple(
        QuotedLse(
            label=e.label,
            tc=e.tc,
            bottom_of_stack=e.bottom_of_stack,
            ttl=e.ttl,
        )
        for e in reply.quoted_stack
    )


class ParisTraceroute:
    """A traceroute client bound to one forwarding engine."""

    def __init__(
        self,
        engine: ForwardingEngine,
        max_ttl: int = 40,
        seed: int = 0,
        retry: RetryPolicy | None = None,
    ) -> None:
        if max_ttl <= 0:
            raise ValueError("max_ttl must be positive")
        self._engine = engine
        self._max_ttl = max_ttl
        self._seed = seed
        self._retry = retry or RetryPolicy.none()
        self.accounting = RetryAccounting()

    @property
    def retry(self) -> RetryPolicy:
        """The per-probe retry policy."""
        return self._retry

    def trace(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str = "",
        flow_id: int | None = None,
    ) -> Trace:
        """Run one traceroute; the flow id defaults to a stable hash of
        (vp, destination) as Paris traceroute derives it from the tuple."""
        if flow_id is None:
            flow_id = int(unit_hash("flow", vp_router_id, destination) * 2**16)
        faults = self._engine.faults
        corrupting = faults is not None and faults.plan.corruption_active
        reroute = (
            faults.rerouted_flow(flow_id, destination, self._max_ttl)
            if corrupting
            else None
        )
        hops: list[TraceHop] = []
        reached = False
        stars = 0
        for ttl in range(1, self._max_ttl + 1):
            probe_flow = flow_id
            if reroute is not None and ttl >= reroute[0]:
                probe_flow = reroute[1]
            reply = self._probe_with_retries(
                vp_router_id, destination, ttl, probe_flow
            )
            if reply is None:
                hops.append(TraceHop(probe_ttl=ttl, address=None))
                stars += 1
                if stars >= _MAX_CONSECUTIVE_STARS:
                    break
                continue
            stars = 0
            is_destination = reply.kind is not ReplyKind.TIME_EXCEEDED
            hop = self._hop_from_reply(ttl, reply, flow_id, is_destination)
            if corrupting:
                hop = self._corrupt_hop(
                    hop,
                    hops[-1].lses if hops else None,
                    faults,
                    flow_id,
                    destination,
                )
            hops.append(hop)
            if is_destination:
                reached = True
                break
        if corrupting:
            hops = self._corrupt_order(hops, faults, flow_id, destination)
        return Trace(
            vp=vp_name or f"vp{vp_router_id}",
            vp_router_id=vp_router_id,
            destination=destination,
            flow_id=flow_id,
            hops=tuple(hops),
            reached=reached,
        )

    def _probe_with_retries(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        ttl: int,
        flow_id: int,
    ) -> ProbeReply | None:
        """Fire one probe, re-firing per the retry policy while silent.

        Each attempt redraws its loss fate in the fault injector (the
        ``attempt`` index keys the draw), so retries genuinely recover
        lost probes; a router that is ICMP-silent by configuration stays
        silent on every attempt, exactly as in the wild.
        """
        self.accounting.probes += 1
        reply = self._engine.forward_probe(
            vp_router_id, destination, ttl, flow_id
        )
        attempt = 1
        while reply is None and attempt < self._retry.max_attempts:
            self.accounting.retries += 1
            self.accounting.backoff_ms += self._retry.backoff_ms(attempt)
            reply = self._engine.forward_probe(
                vp_router_id, destination, ttl, flow_id, attempt=attempt
            )
            attempt += 1
        if reply is None and self._retry.enabled:
            self.accounting.exhausted += 1
        return reply

    def _hop_from_reply(
        self,
        ttl: int,
        reply: ProbeReply,
        flow_id: int,
        is_destination: bool = False,
    ) -> TraceHop:
        round_trip_hops = ttl + reply.truth_forward_hops
        jitter = unit_hash(self._seed, "rtt", flow_id, ttl) * 0.3
        rtt = round_trip_hops * _HOP_LATENCY_MS + jitter
        return TraceHop(
            probe_ttl=ttl,
            address=reply.source_ip,
            rtt_ms=round(rtt, 3),
            reply_ip_ttl=reply.reply_ip_ttl,
            lses=_quote(reply),
            destination_reply=is_destination,
            truth_router_id=reply.truth_router_id,
        )

    # -- corruption application (decisions live in the fault injector) -----------

    @staticmethod
    def _corrupt_hop(
        hop: TraceHop,
        prev_lses: tuple[QuotedLse, ...] | None,
        faults: FaultInjector,
        flow_id: int,
        destination: IPv4Address,
    ) -> TraceHop:
        """Apply per-hop corruption faults to one recorded reply.

        Decisions are keyed on ``(flow, destination, probe TTL)`` so the
        schedule is independent of call order; only applicable faults
        draw, keeping counters equal to applied corruptions.
        """
        ttl = hop.probe_ttl
        if prev_lses and faults.stale_replayed(flow_id, destination, ttl):
            hop = hop.with_annotation(lses=prev_lses)
        if hop.lses and faults.stack_suppressed(flow_id, destination, ttl):
            hop = hop.with_annotation(lses=None)
        if (
            hop.lses
            and len(hop.lses) > 1
            and faults.stack_truncated(flow_id, destination, ttl)
        ):
            # the kept top entry retains bottom_of_stack=False: exactly
            # the structural wound the sanitizer detects and repairs
            hop = hop.with_annotation(lses=(hop.lses[0],))
        if hop.lses:
            garbled = faults.garbled_label(
                flow_id, destination, ttl, hop.lses[0].label
            )
            if garbled is not None:
                top = hop.lses[0]
                hop = hop.with_annotation(
                    lses=(
                        QuotedLse(
                            label=garbled,
                            tc=top.tc,
                            bottom_of_stack=top.bottom_of_stack,
                            ttl=top.ttl,
                        ),
                    )
                    + hop.lses[1:]
                )
        if hop.reply_ip_ttl is not None:
            delta = faults.ttl_perturbation(flow_id, destination, ttl)
            if delta:
                hop = hop.with_annotation(
                    reply_ip_ttl=hop.reply_ip_ttl + delta
                )
        if hop.responded:
            spoofed = faults.spoofed_source(flow_id, destination, ttl)
            if spoofed is not None:
                hop = hop.with_annotation(
                    address=IPv4Address(spoofed), truth_router_id=None
                )
        return hop

    @staticmethod
    def _corrupt_order(
        hops: list[TraceHop],
        faults: FaultInjector,
        flow_id: int,
        destination: IPv4Address,
    ) -> list[TraceHop]:
        """Duplicate and reorder recorded hops per the fault plan."""
        duplicated: list[TraceHop] = []
        for hop in hops:
            duplicated.append(hop)
            if faults.hop_duplicated(flow_id, destination, hop.probe_ttl):
                duplicated.append(hop)
        i = 0
        while i < len(duplicated) - 1:
            if faults.hops_swapped(flow_id, destination, i):
                duplicated[i], duplicated[i + 1] = (
                    duplicated[i + 1],
                    duplicated[i],
                )
                i += 2
            else:
                i += 1
        return duplicated
