"""Table 3 -- ground-truth validation on the ESnet-like AS (#46).

The paper: 17,687 distinct segments, 95.6% CO / 4.4% LSO, 100% TP and
0% FP for both flags, plus 0% FN given ESnet runs SR everywhere.  The
simulated AS reproduces the same shape: CO dominates, every flagged
segment is truly SR, interface precision is perfect.
"""

from repro.analysis.report import render_validation
from repro.analysis.validation import validate_against_truth
from repro.core.flags import Flag

from benchmarks.conftest import emit


def test_bench_table3_ground_truth(benchmark, esnet_campaign):
    report = benchmark.pedantic(
        lambda: validate_against_truth(esnet_campaign),
        rounds=1,
        iterations=1,
    )
    emit(render_validation(report))
    emit(
        f"interface precision={report.interface_precision:.3f} "
        f"recall={report.interface_recall:.3f} "
        f"(TP={report.interface_tp}, FP={report.interface_fp}, "
        f"FN={report.interface_fn})"
    )

    # Shape: CO carries the bulk; the range flags never fire (nothing
    # fingerprintable at ESnet); zero false positives anywhere.
    assert report.total_segments() > 0
    assert report.flag_share(Flag.CO) >= 0.8
    assert report.per_flag[Flag.CVR].distinct_segments == 0
    assert report.per_flag[Flag.LSVR].distinct_segments == 0
    assert report.per_flag[Flag.LVR].distinct_segments == 0
    for flag in Flag:
        assert report.per_flag[flag].false_positives == 0
    assert report.interface_precision == 1.0
    # the operator confirmed AReST found *all* their SR usage: FN-free
    # at the segment level; interface recall stays high (PHP can hide a
    # handful of tail interfaces from the flags)
    assert report.interface_recall >= 0.8
