"""The AReST flag-raising engine (Sec. 4 of the paper).

Input: one TNT-augmented trace plus a fingerprint per responding
address.  Output: the list of detected SR-MPLS segments, each tagged
with its flag.

Detection order mirrors the paper's flag hierarchy:

1. Scan for maximal runs of >= 2 consecutive labeled hops whose top
   labels match (identical or suffix-matched).  A run becomes **CVR**
   when at least one of its hops is fingerprinted to a vendor whose SR
   range contains that hop's label; otherwise **CO**.
2. Every labeled hop outside such runs is examined alone:
   - stack depth >= 2 and top label inside the fingerprinted vendor's
     SR range -> **LSVR**;
   - stack depth == 1 and label inside the range -> **LVR**;
   - stack depth >= 2, no vendor mapping -> **LSO**;
   - stack depth == 1, no vendor mapping -> nothing (indistinguishable
     from classic MPLS -- the false-negative case of Sec. 6.3).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.labels import run_is_suffix_based, sequence_match
from repro.core.segments import DetectedSegment
from repro.core.flags import Flag
from repro.core.vendor_ranges import label_in_vendor_range
from repro.fingerprint.records import Fingerprint
from repro.netsim.addressing import IPv4Address
from repro.netsim.mpls import ReservedLabel
from repro.probing.records import Trace, TraceHop

_ELI = int(ReservedLabel.ENTROPY_LABEL_INDICATOR)
_FIRST_UNRESERVED = 16


def effective_labels(hop: TraceHop) -> tuple[int, ...]:
    """The hop's quoted labels with special-purpose labels stripped.

    Two classes of labels carry no SR signal and must not contaminate
    detection:

    - an ELI (label 7) announces that the following label is an entropy
      value for load balancing (RFC 6790); the pair is skipped as one;
    - the remaining reserved labels (explicit-null, router-alert, ...,
      values < 16) are signalling artefacts -- consecutive explicit-null
      tops are routine on UHP deployments and would otherwise fabricate
      CO runs out of thin air.

    A quoted ``[transport, ELI, EL]`` is a single-label observation; a
    bare ``[0]`` or ``[ELI, EL]`` carries no detectable signal at all.
    """
    if not hop.lses:
        return ()
    labels = [e.label for e in hop.lses]
    out: list[int] = []
    i = 0
    while i < len(labels):
        if labels[i] == _ELI:
            i += 2  # skip the ELI and its entropy value
            continue
        if labels[i] < _FIRST_UNRESERVED:
            i += 1  # other reserved labels: signalling only
            continue
        out.append(labels[i])
        i += 1
    return tuple(out)

FingerprintLookup = Callable[[IPv4Address], Fingerprint]

#: the shared no-information fingerprint (hoisted: building a fresh one
#: per unfingerprinted hop showed up in the detector profile)
_NO_FINGERPRINT = Fingerprint.none()


def _lookup_from_mapping(
    fingerprints: Mapping[IPv4Address, Fingerprint]
) -> FingerprintLookup:
    def lookup(address: IPv4Address) -> Fingerprint:
        """Resolve one address to its fingerprint (none when absent)."""
        return fingerprints.get(address, _NO_FINGERPRINT)

    return lookup


class ArestDetector:
    """Stateless detector; one instance can process any number of traces.

    ``suffix_matching`` toggles footnote 4's differing-SRGB heuristic
    (on by default, as in the paper); the ablation benchmark measures
    what it buys on heterogeneous-SRGB deployments.
    """

    def __init__(
        self,
        min_run_length: int = 2,
        suffix_matching: bool = True,
    ) -> None:
        if min_run_length < 2:
            raise ValueError("consecutive flags need runs of >= 2 hops")
        self._min_run = min_run_length
        self._suffix_matching = suffix_matching

    def detect(
        self,
        trace: Trace,
        fingerprints: Mapping[IPv4Address, Fingerprint] | FingerprintLookup,
        hop_filter: Callable[[TraceHop], bool] | None = None,
        hop_mask: frozenset[int] | set[int] | None = None,
    ) -> list[DetectedSegment]:
        """Detect SR-MPLS segments in one trace.

        ``hop_filter`` restricts detection to hops of interest (the
        pipeline passes an is-in-target-AS predicate); hops failing the
        filter break label runs, like AS boundaries do in the paper.
        ``hop_mask`` is the precomputed-index-set equivalent -- callers
        that already know which hops qualify pass the set instead of
        paying a predicate call per hop; when both are given the mask
        wins.
        """
        lookup = (
            fingerprints
            if callable(fingerprints)
            else _lookup_from_mapping(fingerprints)
        )
        # One effective-label computation per hop; every later stage
        # (eligibility, run discovery, classification) reads this view.
        views = [effective_labels(hop) for hop in trace.hops]
        eligible = self._eligibility(trace, views, hop_filter, hop_mask)
        segments: list[DetectedSegment] = []
        in_run: set[int] = set()
        for run in self._label_runs(trace, views, eligible):
            segments.append(self._classify_run(trace, run, views, lookup))
            in_run.update(run)
        for i, hop in enumerate(trace.hops):
            if not eligible[i] or i in in_run:
                continue
            segment = self._classify_single(trace, i, hop, views[i], lookup)
            if segment is not None:
                segments.append(segment)
        segments.sort(key=lambda s: s.hop_indices[0])
        return segments

    # -- run discovery -----------------------------------------------------------

    def _eligibility(
        self,
        trace: Trace,
        views: list[tuple[int, ...]],
        hop_filter: Callable[[TraceHop], bool] | None,
        hop_mask: frozenset[int] | set[int] | None,
    ) -> list[bool]:
        flags = []
        for i, hop in enumerate(trace.hops):
            # an address-less hop cannot be classified (no fingerprint,
            # no reportable interface) -- sanitized-but-anonymous labeled
            # hops must break runs, not crash single classification
            ok = (
                bool(views[i])
                and not hop.tnt_revealed
                and hop.address is not None
            )
            if ok:
                if hop_mask is not None:
                    ok = i in hop_mask
                elif hop_filter is not None:
                    ok = hop_filter(hop)
            flags.append(ok)
        return flags

    def _label_runs(
        self,
        trace: Trace,
        views: list[tuple[int, ...]],
        eligible: list[bool],
    ) -> list[list[int]]:
        """Maximal runs of consecutive, label-matching, eligible hops."""
        runs: list[list[int]] = []
        current: list[int] = []
        prev_label: int | None = None
        for i in range(len(trace.hops)):
            effective = views[i] if eligible[i] else ()
            label = effective[0] if effective else None
            if label is None:
                self._flush(runs, current)
                current, prev_label = [], None
                continue
            matches = (
                sequence_match(prev_label, label)
                if self._suffix_matching
                else prev_label == label
            ) if prev_label is not None else False
            if matches:
                current.append(i)
            else:
                self._flush(runs, current)
                current = [i]
            prev_label = label
        self._flush(runs, current)
        return runs

    def _flush(self, runs: list[list[int]], current: list[int]) -> None:
        if len(current) >= self._min_run:
            runs.append(list(current))

    # -- classification -------------------------------------------------------------

    def _classify_run(
        self,
        trace: Trace,
        run: list[int],
        views: list[tuple[int, ...]],
        lookup: FingerprintLookup,
    ) -> DetectedSegment:
        hops = [trace.hops[i] for i in run]
        run_views = [views[i] for i in run]
        labels = tuple(v[0] for v in run_views)
        vendor_confirmed = any(
            label_in_vendor_range(v[0], lookup(h.address))
            for h, v in zip(hops, run_views)
        )
        flag = Flag.CVR if vendor_confirmed else Flag.CO
        return DetectedSegment(
            flag=flag,
            hop_indices=tuple(run),
            addresses=tuple(h.address for h in hops),  # type: ignore[arg-type]
            top_labels=labels,
            stack_depths=tuple(len(v) for v in run_views),
            suffix_based=run_is_suffix_based(labels),
        )

    def _classify_single(
        self,
        trace: Trace,
        index: int,
        hop: TraceHop,
        effective: tuple[int, ...],
        lookup: FingerprintLookup,
    ) -> DetectedSegment | None:
        assert hop.address is not None
        assert effective
        label = effective[0]
        in_range = label_in_vendor_range(label, lookup(hop.address))
        depth = len(effective)
        if depth >= 2:
            flag = Flag.LSVR if in_range else Flag.LSO
        elif in_range:
            flag = Flag.LVR
        else:
            return None  # single label, no range: classic MPLS
        return DetectedSegment(
            flag=flag,
            hop_indices=(index,),
            addresses=(hop.address,),
            top_labels=(label,),
            stack_depths=(depth,),
        )
