"""Fingerprinting statistics (Figs. 14 and 15, Appendix C).

Fig. 14: among identified interfaces, the split between TTL-based and
SNMPv3-based fingerprints (the paper: 88% TTL / 12% SNMPv3, with ~45%
of all observed hops identified at all).

Fig. 15: the per-AS vendor heatmap from SNMPv3 hits (Cisco most common,
then Juniper, Huawei, some Nokia/Linux; Arista structurally absent).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.campaign.runner import AsCampaignResult
from repro.fingerprint.records import FingerprintMethod
from repro.netsim.vendors import Vendor


@dataclass(frozen=True, slots=True)
class FingerprintShareRow:
    """One AS's Fig. 14 bar."""

    as_id: int
    name: str
    total_interfaces: int
    identified: int
    via_ttl: int
    via_snmp: int

    @property
    def identified_share(self) -> float:
        """Identified interfaces over all observed ones."""
        return self.identified / self.total_interfaces if self.total_interfaces else 0.0

    @property
    def ttl_share_of_identified(self) -> float:
        """TTL-method share among identified interfaces."""
        return self.via_ttl / self.identified if self.identified else 0.0


def fingerprint_share_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[FingerprintShareRow]:
    """One Fig. 14 row per AS, ordered by id."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        counts = result.fingerprint_method_counts()
        ttl = counts.get(FingerprintMethod.TTL, 0)
        snmp = counts.get(FingerprintMethod.SNMP, 0)
        rows.append(
            FingerprintShareRow(
                as_id=as_id,
                name=result.spec.name,
                total_interfaces=len(result.fingerprints),
                identified=ttl + snmp,
                via_ttl=ttl,
                via_snmp=snmp,
            )
        )
    return rows


def overall_method_split(
    rows: list[FingerprintShareRow],
) -> tuple[float, float]:
    """(ttl share, snmp share) among all identified interfaces."""
    ttl = sum(r.via_ttl for r in rows)
    snmp = sum(r.via_snmp for r in rows)
    total = ttl + snmp
    if total == 0:
        return (0.0, 0.0)
    return (ttl / total, snmp / total)


def vendor_heatmap(
    results: Mapping[int, AsCampaignResult]
) -> dict[int, Counter]:
    """Fig. 15: per-AS counter of SNMPv3-identified vendors."""
    heatmap: dict[int, Counter] = {}
    for as_id in sorted(results):
        result = results[as_id]
        counter: Counter = Counter()
        for fp in result.fingerprints.values():
            if fp.method is FingerprintMethod.SNMP:
                assert fp.exact_vendor is not None
                counter[fp.exact_vendor] += 1
        heatmap[as_id] = counter
    return heatmap


def vendor_totals(heatmap: dict[int, Counter]) -> Counter:
    """Vendor counts summed over every AS."""
    totals: Counter = Counter()
    for counter in heatmap.values():
        totals.update(counter)
    return totals


def arista_absent(heatmap: dict[int, Counter]) -> bool:
    """Appendix C: the SNMPv3 dataset cannot identify Arista devices."""
    return all(Vendor.ARISTA not in c for c in heatmap.values())
