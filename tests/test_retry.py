"""Tests for the deterministic retry policy and its probing integration."""

import pytest

from repro.netsim.faults import FaultInjector, FaultPlan
from repro.probing.traceroute import ParisTraceroute
from repro.util.retry import RetryAccounting, RetryPolicy

from tests.conftest import ChainNetwork


class TestRetryPolicy:
    def test_none_is_single_attempt(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert not policy.enabled
        assert policy.max_backoff_ms() == 0.0

    def test_default_enables_retries(self):
        policy = RetryPolicy.default()
        assert policy.enabled
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_ms": -1.0},
            {"backoff_factor": 0.5},
            {"backoff_cap_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule_doubles_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6,
            backoff_base_ms=100.0,
            backoff_factor=2.0,
            backoff_cap_ms=500.0,
        )
        assert [policy.backoff_ms(i) for i in range(1, 6)] == [
            100.0,
            200.0,
            400.0,
            500.0,
            500.0,
        ]
        assert policy.max_backoff_ms() == 1700.0

    def test_backoff_index_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy.default().backoff_ms(0)


class TestRetryAccounting:
    def test_merge(self):
        a = RetryAccounting(probes=10, retries=2, exhausted=1, backoff_ms=150.0)
        b = RetryAccounting(probes=4, retries=1, backoff_ms=50.0)
        a.merge(b)
        assert a == RetryAccounting(
            probes=14, retries=3, exhausted=1, backoff_ms=200.0
        )

    def test_dict_round_trip(self):
        acct = RetryAccounting(probes=3, retries=2, exhausted=1, backoff_ms=75.0)
        assert RetryAccounting.from_dict(acct.as_dict()) == acct


def _lossy_chain(seed: int = 1) -> ChainNetwork:
    chain = ChainNetwork(length=6, seed=seed)
    chain.engine.faults = FaultInjector(
        FaultPlan(probe_loss=0.4, seed=seed), "test"
    )
    return chain


class TestRetriesRecoverLostProbes:
    def test_retries_fill_in_stars(self):
        bare = _lossy_chain()
        no_retry = ParisTraceroute(bare.engine).trace(
            bare.vp.router_id, bare.target
        )
        retried_chain = _lossy_chain()
        prober = ParisTraceroute(
            retried_chain.engine, retry=RetryPolicy(max_attempts=4)
        )
        retried = prober.trace(retried_chain.vp.router_id, retried_chain.target)
        stars = lambda tr: sum(1 for h in tr.hops if h.address is None)  # noqa: E731
        assert stars(retried) < stars(no_retry)
        assert prober.accounting.retries > 0
        assert prober.accounting.backoff_ms > 0.0

    def test_without_faults_retry_changes_nothing(self):
        base = ChainNetwork(length=6)
        baseline = ParisTraceroute(base.engine).trace(
            base.vp.router_id, base.target
        )
        with_retry = ChainNetwork(length=6)
        prober = ParisTraceroute(
            with_retry.engine, retry=RetryPolicy.default()
        )
        trace = prober.trace(with_retry.vp.router_id, with_retry.target)
        assert trace == baseline
        assert prober.accounting.retries == 0
        assert prober.accounting.exhausted == 0

    def test_accounting_is_deterministic(self):
        runs = []
        for _ in range(2):
            chain = _lossy_chain(seed=7)
            prober = ParisTraceroute(
                chain.engine, retry=RetryPolicy(max_attempts=3)
            )
            trace = prober.trace(chain.vp.router_id, chain.target)
            runs.append((trace, prober.accounting))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_icmp_silent_router_stays_silent(self):
        chain = ChainNetwork(length=6)
        chain.routers[2].icmp_silent = True
        prober = ParisTraceroute(
            chain.engine, retry=RetryPolicy(max_attempts=5)
        )
        trace = prober.trace(chain.vp.router_id, chain.target)
        assert trace.hops[2].address is None  # still a star
        # configured silence is not recoverable, so the budget was spent
        assert prober.accounting.retries >= 4
        assert prober.accounting.exhausted >= 1
