"""Measurement-side data model: hops, traces, quoted LSEs.

These records are what AReST post-processes.  They deliberately contain
only information a real vantage point could observe -- addresses, RTTs,
quoted label stacks, reply TTLs -- plus clearly marked ``truth_*``
fields that the evaluation harness (and only it) uses to score
detections against simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.netsim.addressing import IPv4Address


@dataclass(frozen=True, slots=True)
class QuotedLse:
    """One label stack entry quoted in an ICMP time-exceeded message."""

    label: int
    tc: int
    bottom_of_stack: bool
    ttl: int

    def __post_init__(self) -> None:
        if not 0 <= self.label < 2**20:
            raise ValueError(f"label out of range: {self.label}")
        if not 0 <= self.tc <= 7:
            raise ValueError(f"LSE-TC out of range: {self.tc}")
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"LSE-TTL out of range: {self.ttl}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.label},{self.ttl}>"


@dataclass(frozen=True, slots=True)
class TraceHop:
    """One traceroute hop as recorded by the vantage point.

    ``address is None`` renders as ``*`` (no reply).  ``lses`` is the
    quoted stack, top first, or None when the reply carried no RFC 4950
    extension.  ``tnt_revealed`` marks hops TNT uncovered inside hidden
    tunnels (addresses only, never LSEs -- Sec. 2.2 of the paper).
    """

    probe_ttl: int
    address: IPv4Address | None
    rtt_ms: float | None = None
    reply_ip_ttl: int | None = None
    lses: tuple[QuotedLse, ...] | None = None
    tnt_revealed: bool = False
    #: the reply came from the destination itself (port unreachable /
    #: echo reply), not from an expiring router
    destination_reply: bool = False
    #: simulator ground truth (evaluation only)
    truth_router_id: int | None = None
    truth_asn: int | None = None
    truth_planes: tuple[str, ...] = ()
    #: TTL model at this hop (False: the hop sat in a pipe-mode tunnel)
    truth_uniform: bool = True

    @property
    def responded(self) -> bool:
        """True when the hop answered (not a ``*``)."""
        return self.address is not None

    @property
    def has_lses(self) -> bool:
        """True when the hop quoted at least one LSE."""
        return bool(self.lses)

    @property
    def stack_depth(self) -> int:
        """Number of quoted LSEs (0 when none)."""
        return len(self.lses) if self.lses else 0

    @property
    def top_label(self) -> int | None:
        """The active (top) quoted label, or None."""
        if self.lses:
            return self.lses[0].label
        return None

    def with_annotation(self, **changes: object) -> "TraceHop":
        """A copy of the hop with the given fields replaced.

        Hand-rolled rather than :func:`dataclasses.replace`: annotation
        runs once per hop per trace, and ``replace``'s per-call field
        introspection dominated the TNT annotation stage.
        """
        get = changes.get
        return TraceHop(
            probe_ttl=get("probe_ttl", self.probe_ttl),
            address=get("address", self.address),
            rtt_ms=get("rtt_ms", self.rtt_ms),
            reply_ip_ttl=get("reply_ip_ttl", self.reply_ip_ttl),
            lses=get("lses", self.lses),
            tnt_revealed=get("tnt_revealed", self.tnt_revealed),
            destination_reply=get("destination_reply", self.destination_reply),
            truth_router_id=get("truth_router_id", self.truth_router_id),
            truth_asn=get("truth_asn", self.truth_asn),
            truth_planes=get("truth_planes", self.truth_planes),
            truth_uniform=get("truth_uniform", self.truth_uniform),
        )


@dataclass(frozen=True, slots=True)
class Trace:
    """One Paris traceroute (constant flow identifier)."""

    vp: str
    vp_router_id: int
    destination: IPv4Address
    flow_id: int
    hops: tuple[TraceHop, ...]
    reached: bool
    #: (lowest, highest) topology epoch the probes of this trace were
    #: forwarded under; None on a static network (the default -- the
    #: field only materializes when a churn scheduler is attached, so
    #: churn-free datasets serialize byte-identically to before)
    epoch_span: tuple[int, int] | None = None

    @property
    def crosses_epochs(self) -> bool:
        """True when the topology mutated while this trace was probed."""
        return self.epoch_span is not None and (
            self.epoch_span[0] != self.epoch_span[1]
        )

    def __iter__(self) -> Iterator[TraceHop]:
        return iter(self.hops)

    def __len__(self) -> int:
        return len(self.hops)

    def responding_hops(self) -> list[TraceHop]:
        """Hops that answered, in path order."""
        return [h for h in self.hops if h.responded]

    def labeled_hops(self) -> list[TraceHop]:
        """Hops that quoted LSEs, in path order."""
        return [h for h in self.hops if h.has_lses]

    def addresses(self) -> set[IPv4Address]:
        """The set of responding addresses in this trace."""
        return {h.address for h in self.hops if h.address is not None}

    def with_hops(self, hops: tuple[TraceHop, ...]) -> "Trace":
        """A copy of the trace with the hop tuple replaced."""
        return Trace(
            vp=self.vp,
            vp_router_id=self.vp_router_id,
            destination=self.destination,
            flow_id=self.flow_id,
            hops=hops,
            reached=self.reached,
            epoch_span=self.epoch_span,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"traceroute {self.vp} -> {self.destination}"]
        for hop in self.hops:
            addr = str(hop.address) if hop.address else "*"
            stack = ""
            if hop.lses:
                stack = " MPLS " + " ".join(str(e) for e in hop.lses)
            revealed = " (TNT)" if hop.tnt_revealed else ""
            parts.append(f"  {hop.probe_ttl:2d}  {addr}{stack}{revealed}")
        return "\n".join(parts)


def truth_transport_is_sr(trace: "Trace", index: int) -> bool:
    """Ground truth: is this hop carrying Segment Routing?

    Evaluation-only helper over the ``truth_planes`` annotations.  True
    when any carried label came from the SR control plane -- transport
    node/adjacency SIDs (``sr``) or SR service SIDs (``service-sr``,
    SRLB-allocated; the ESnet operator confirmed service-SID stacks as
    genuine SR).  A hop whose remaining stack is only plain VPN labels
    (``service``) inherits the transport of the nearest earlier labeled
    hop.
    """
    planes = trace.hops[index].truth_planes
    if not planes:
        return False
    if "sr" in planes or "service-sr" in planes:
        return True
    if "ldp" in planes or "rsvp" in planes:
        return False
    for i in range(index - 1, -1, -1):
        earlier = trace.hops[i].truth_planes
        if "sr" in earlier or "service-sr" in earlier:
            return True
        if "ldp" in earlier or "rsvp" in earlier:
            return False
        if not earlier:
            break
    return False


@dataclass(slots=True)
class TraceMetadata:
    """Campaign-level context attached to a batch of traces."""

    target_asn: int
    campaign: str = ""
    notes: dict[str, str] = field(default_factory=dict)
