"""The simulated data plane.

Walks probe packets hop by hop through the network, applying full
MPLS/SR semantics: ingress push (per :class:`TunnelController` programs),
per-hop swap or pop, PHP, SR-to-LDP and LDP-to-SR interworking, service
SID termination, TTL propagation (RFC 3443 uniform vs. pipe models) and
RFC 4950 ICMP quoting.

The observable behaviour -- who answers a given probe, from which
address, quoting which label stack, with which remaining reply TTL -- is
exactly the input TNT-style traceroute consumes, so the measurement
layer above never peeks at simulator internals except through fields
explicitly prefixed ``truth_``.

TTL semantics
-------------

*uniform* (ingress has ``ttl_propagate``): the IP TTL is copied into the
pushed LSE-TTL; inner LSEs inherit the outer TTL on pop; the IP TTL is
restored from the last popped LSE.  Every LSR in the tunnel is one
visible traceroute hop (*explicit*/*implicit* tunnels).

*pipe* (no ``ttl_propagate``): the pushed LSE-TTL starts at 255; the IP
TTL is frozen inside the tunnel and decremented once more by the router
performing the final pop.  The tunnel therefore collapses into a single
traceroute hop -- the ending hop -- which, if it implements RFC 4950,
quotes the received LSE and betrays the tunnel (*opaque*); otherwise the
tunnel is *invisible*.

Fast path
---------

Because forwarding decisions never read the TTL, one instrumented walk
per ``(src, destination, flow)`` -- :meth:`ForwardingEngine.record_walk`
-- captures enough state to answer every probe TTL of a traceroute in
O(1) via :meth:`ForwardingEngine.forward_probe_cached`, with per-probe
fault draws replayed in the reference call order.  See
:mod:`repro.netsim.walkcache` for the synthesis model and its exactness
guarantees.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultInjector
from repro.netsim.igp import NoRouteError, ShortestPaths
from repro.netsim.mpls import LabelStack, LabelStackEntry, ReservedLabel
from repro.netsim.topology import Network, Router
from repro.netsim.tunnels import TunnelController, TunnelProgram
from repro.netsim.vendors import VENDOR_PROFILES
from repro.netsim.walkcache import (
    RECORD_TTL,
    RecordedWalk,
    SymTtl,
    WalkRecorder,
    WalkStats,
)
from repro.util.determinism import unit_hash

_MAX_WALK = 512
_DEFAULT_INITIAL_TTL = 64


def _ecmp_digest(flow_id: int, node: int, target: int) -> int:
    """The per-flow ECMP hash bucket (bit-identical to the historical
    inline SHA-256)."""
    digest = hashlib.sha256(f"{flow_id}:{node}:{target}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


#: memoized bucket -- the same flow re-resolves the same hop once per probe
_ecmp_bucket = lru_cache(maxsize=1 << 16)(_ecmp_digest)


@lru_cache(maxsize=1 << 16)
def _truth_hop(
    node: int,
    asn: int,
    labels: tuple[int, ...],
    planes: tuple[str, ...],
    pushed: bool,
    uniform: bool,
) -> "TruthHop":
    """A memoized ground-truth hop: every flow crossing a router in the
    same tunnel state records the identical (frozen) hop."""
    return TruthHop(node, asn, labels, planes, pushed, uniform)


class ReplyKind(enum.Enum):
    """ICMP reply categories the VP can receive."""
    TIME_EXCEEDED = "time-exceeded"
    DEST_UNREACHABLE = "dest-unreachable"
    ECHO_REPLY = "echo-reply"


@dataclass(frozen=True, slots=True)
class ProbeReply:
    """What the vantage point receives for one probe (or None)."""

    kind: ReplyKind
    source_ip: IPv4Address
    #: label stack quoted via RFC 4950 extensions, if any
    quoted_stack: tuple[LabelStackEntry, ...] | None
    #: remaining IP TTL of the reply as it reaches the VP (fingerprinting)
    reply_ip_ttl: int
    #: ground truth -- never consumed by the measurement pipeline
    truth_router_id: int
    truth_forward_hops: int


@dataclass(frozen=True, slots=True)
class TruthHop:
    """Ground-truth record of one forwarding step (for evaluation only)."""

    router_id: int
    asn: int
    #: label stack carried by the packet when it *arrived* at the router
    received_labels: tuple[int, ...]
    #: control plane that produced each received label, top-first
    received_planes: tuple[str, ...]
    #: True when this router pushed a tunnel program
    pushed: bool
    #: TTL model of the tunnel at this hop (False = pipe / hidden)
    uniform: bool = True


class DropReason(enum.Enum):
    """Why a packet died without generating ICMP."""
    NO_ROUTE = "no-route"
    UNKNOWN_LABEL = "unknown-label"
    WALK_LIMIT = "walk-limit"
    BLACKOUT = "blackout"


class PacketDropped(Exception):
    """Internal signal: the packet died without generating ICMP."""

    def __init__(self, reason: DropReason) -> None:
        super().__init__(reason.value)
        self.reason = reason


@dataclass(slots=True)
class _Packet:
    dest: IPv4Address
    ip_ttl: int
    flow_id: int
    origin: int = -1
    stack: LabelStack = field(default_factory=LabelStack)
    planes: list[str] = field(default_factory=list)
    uniform: bool = True  # RFC 3443 TTL model of the current tunnel
    #: True for measurement probes; ground-truth walks are never faulted
    measured: bool = False
    #: observer of an instrumented recording walk (fast path)
    recorder: WalkRecorder | None = None


class ForwardingEngine:
    """Hop-by-hop packet walker over a converged network."""

    def __init__(
        self,
        network: Network,
        igp: ShortestPaths,
        tunnels: TunnelController,
        faults: FaultInjector | None = None,
    ) -> None:
        self._network = network
        self._igp = igp
        self._tunnels = tunnels
        self._faults = faults
        #: attached network-dynamics scheduler (None = static topology)
        self._dynamics = None
        #: monotonic topology epoch; bumped by every cache invalidation
        self._epoch = 0
        #: fast-path and cache counters (observational only)
        self.stats = WalkStats()
        #: (node, target, flow) -> resolved ECMP next hop
        self._next_hop_cache: dict[tuple[int, int, int], int] = {}
        #: (node, prev, vp) -> reply skeleton, shared by walk recorders
        self._reply_skeletons: dict = {}
        self._memoize = True

    def invalidate_caches(self) -> None:
        """Drop memoized routing state (call after topology changes).

        Also invalidates the underlying IGP caches and advances the
        topology :attr:`epoch`.  Recorded walks held by callers are NOT
        tracked here: they keep the epoch they were stamped with, and
        :meth:`forward_probe_cached` refuses to synthesize from a
        recording whose epoch trails the engine's.
        """
        self._next_hop_cache.clear()
        self._reply_skeletons.clear()
        self._igp.invalidate()
        self._epoch += 1
        self.stats.epoch_transitions += 1

    @property
    def memoize(self) -> bool:
        """Memoize deterministic routing primitives (on by default).

        Turning this off makes every walk recompute ECMP scans, flow
        hash buckets and return-path hop counts from scratch -- the
        pre-memoization cost model.  Results are bit-identical either
        way; the campaign benchmark uses the switch to time its
        reference leg honestly.
        """
        return self._memoize

    @memoize.setter
    def memoize(self, on: bool) -> None:
        changed = on != self._memoize
        self._memoize = on
        self._igp.memoize = on
        if changed and not on:
            # Drop state the memoized mode accumulated; re-assigning the
            # same value is a no-op so steady-state callers keep the SPF
            # distance fields the seed engine also kept warm.
            self.invalidate_caches()

    @property
    def network(self) -> Network:
        """The network this engine forwards over."""
        return self._network

    @property
    def igp(self) -> ShortestPaths:
        """The converged IGP."""
        return self._igp

    @property
    def tunnels(self) -> TunnelController:
        """The tunnel controller."""
        return self._tunnels

    @property
    def faults(self) -> FaultInjector | None:
        """The attached fault injector (None = pristine measurement plane)."""
        return self._faults

    @faults.setter
    def faults(self, injector: FaultInjector | None) -> None:
        self._faults = injector

    @property
    def epoch(self) -> int:
        """The current topology epoch (monotonic, starts at 0)."""
        return self._epoch

    @property
    def dynamics(self):
        """The attached churn scheduler (None = static topology)."""
        return self._dynamics

    @dynamics.setter
    def dynamics(self, scheduler) -> None:
        self._dynamics = scheduler

    # -- public API -------------------------------------------------------------

    def forward_probe(
        self,
        src: int,
        dest: IPv4Address,
        ttl: int,
        flow_id: int = 0,
        attempt: int = 0,
    ) -> ProbeReply | None:
        """Send one UDP probe; return the ICMP reply observed at the VP.

        Returns None when the expiring router is ICMP-silent, the packet
        is dropped, or an attached fault injector swallows the probe.
        ``attempt`` distinguishes retries of the same probe so each
        attempt redraws its loss fate independently.
        """
        if ttl <= 0:
            raise ValueError(f"probe TTL must be positive, got {ttl}")
        if self._dynamics is not None:
            self._dynamics.on_probe()
        if self._faults is not None:
            self._faults.on_probe()
            if self._faults.probe_lost(flow_id, dest, ttl, attempt):
                return None
        try:
            return self._walk(src, dest, ttl, flow_id, truth=None)
        except PacketDropped:
            return None
        except NoRouteError:
            # A destination transiently unroutable mid-reconvergence:
            # the probe dies in the blackhole.
            return None

    def truth_walk(
        self, src: int, dest: IPv4Address, flow_id: int = 0
    ) -> list[TruthHop]:
        """Walk the full forward path with an effectively infinite TTL and
        record per-hop ground truth.  Evaluation-only."""
        truth: list[TruthHop] = []
        try:
            self._walk(src, dest, 255, flow_id, truth=truth)
        except (PacketDropped, NoRouteError):
            pass
        return truth

    def record_walk(
        self, src: int, dest: IPv4Address, flow_id: int = 0
    ) -> RecordedWalk:
        """Run one instrumented, fault-free walk and record enough state
        to synthesize the reply for every probe TTL of this flow.

        The recording consumes no fault-injector state, so it may run at
        any point relative to the probes it answers.  When the walk
        cannot guarantee exactness the result has ``ok=False`` and
        :meth:`forward_probe_cached` transparently falls back to the
        reference walker.  The recording doubles as the ground-truth
        walk (``RecordedWalk.truth`` equals :meth:`truth_walk` output).
        """
        recorder = WalkRecorder(self, src, dest, flow_id)
        truth: list[TruthHop] = []
        reply: ProbeReply | None = None
        dropped = False
        try:
            reply = self._walk(
                src,
                dest,
                SymTtl(RECORD_TTL, probe=True),
                flow_id,
                truth=truth,
                recorder=recorder,
            )
        except PacketDropped:
            # A TTL-independent silent death (no route, unknown label,
            # walk limit): every deep-enough probe dies the same way.
            dropped = True
        except Exception:
            # Anything else (e.g. NoRouteError mid-path) may never
            # surface in the reference because shallow probes expire
            # first and consecutive stars abort the trace -- refuse to
            # synthesize rather than guess.
            recorder.inexact = True
        walk = recorder.finalize(reply, dropped, truth)
        walk.epoch = self._epoch
        if walk.ok:
            self.stats.walks_recorded += 1
        else:
            self.stats.walks_fallback += 1
        return walk

    def forward_probe_cached(
        self, walk: RecordedWalk, ttl: int, attempt: int = 0
    ) -> ProbeReply | None:
        """Answer one probe of a recorded flow in O(1).

        Bit-equivalent to ``forward_probe(walk.src, walk.dest, ttl,
        walk.flow_id, attempt)``: the per-probe fault draws -- loss,
        blackout checks along the visited prefix, ICMP policing at the
        responder -- replay in the reference call order; only the path
        walk itself is skipped.  Falls back to the reference walker when
        the recording is inexact, the TTL exceeds the recording base,
        the recording's topology epoch is stale, or an attached churn
        scheduler is mid-reconvergence.
        """
        if ttl <= 0:
            raise ValueError(f"probe TTL must be positive, got {ttl}")
        dynamics = self._dynamics
        if dynamics is not None:
            dynamics.on_probe()
        faults = self._faults
        if faults is not None:
            faults.on_probe()
            if faults.probe_lost(walk.flow_id, walk.dest, ttl, attempt):
                return None
        if walk.epoch != self._epoch:
            # The recording predates a topology mutation: never serve a
            # pre-change reply.  A live reference walk over the current
            # topology answers instead.
            self.stats.stale_walk_fallbacks += 1
        elif dynamics is not None and dynamics.in_transient():
            # Mid-reconvergence the data plane is not the converged one
            # the recording captured (transient blackholes, micro-loops):
            # only the reference walker models those, so step aside.
            pass
        elif walk.ok and ttl <= RECORD_TTL:
            event = walk.expiry_by_ttl.get(ttl)
            if faults is not None:
                # Replay the blackout checks the reference walk would
                # make: one per visited router up to (and including) the
                # expiry node, stopping at the first hit exactly as the
                # walk does.
                upto = (
                    event.visit_index
                    if event is not None
                    else len(walk.visits)
                )
                for node in walk.visits[:upto]:
                    if faults.blacked_out(node):
                        return None
            self.stats.probes_synthesized += 1
            if event is None:
                # The probe outlives every expiry checkpoint: it reaches
                # the walk's terminal fate (delivery, or a silent drop).
                return walk.terminal_reply
            if event.silent or not event.rate_passed:
                return None
            if faults is not None and not faults.allow_icmp(event.node):
                return None
            return ProbeReply(
                kind=ReplyKind.TIME_EXCEEDED,
                source_ip=event.source_ip,
                quoted_stack=event.materialize_quote(ttl),
                reply_ip_ttl=event.reply_ip_ttl,
                truth_router_id=event.node,
                truth_forward_hops=event.return_hops,
            )
        self.stats.probes_walked += 1
        try:
            return self._walk(
                walk.src, walk.dest, ttl, walk.flow_id, truth=None
            )
        except PacketDropped:
            return None
        except NoRouteError:
            return None

    def ping(self, src: int, target: IPv4Address, flow_id: int = 0) -> ProbeReply | None:
        """ICMP echo to an interface address (TTL fingerprint, 2nd half)."""
        owner = self._network.owner_of(target)
        if owner is None:
            return None
        router = self._network.router(owner)
        if not router.responds_to_ping:
            return None
        if self._dynamics is not None:
            self._dynamics.on_probe()
            if self._dynamics.blackholed(owner):
                return None
        if self._faults is not None:
            self._faults.on_probe()
            if self._faults.probe_lost(flow_id, target, 0, 0, kind="ping"):
                return None
            if self._faults.blacked_out(owner):
                return None
        reply_ttl, return_hops = self._reply_meta(owner, src, echo=True)
        return ProbeReply(
            kind=ReplyKind.ECHO_REPLY,
            source_ip=target,
            quoted_stack=None,
            reply_ip_ttl=reply_ttl,
            truth_router_id=owner,
            truth_forward_hops=return_hops,
        )

    # -- walk ---------------------------------------------------------------------

    def _walk(
        self,
        src: int,
        dest: IPv4Address,
        ttl: int,
        flow_id: int,
        truth: list[TruthHop] | None,
        recorder: WalkRecorder | None = None,
    ) -> ProbeReply | None:
        final = self._network.owner_of(dest)
        if final is None:
            raise PacketDropped(DropReason.NO_ROUTE)
        packet = _Packet(
            dest=dest,
            ip_ttl=ttl,
            flow_id=flow_id,
            origin=src,
            measured=truth is None,
            recorder=recorder,
        )
        node = src
        prev: int | None = None
        for _ in range(_MAX_WALK):
            if node == src:
                # The sender itself neither decrements nor pushes.
                if node == final:
                    return self._deliver(node, packet)
                next_node = self._flow_next_hop(node, final, packet.flow_id)
                prev, node = node, next_node
                continue
            if (
                packet.measured
                and self._dynamics is not None
                and self._dynamics.blackholed(node)
            ):
                # Mid-reconvergence the router has no usable FIB entry
                # for the prefix yet: the probe falls into the transient
                # blackhole.
                raise PacketDropped(DropReason.BLACKOUT)
            if (
                packet.measured
                and self._faults is not None
                and self._faults.blacked_out(node)
            ):
                # The router is transiently dark: it neither forwards
                # nor replies, so the probe dies silently.
                raise PacketDropped(DropReason.BLACKOUT)
            if packet.recorder is not None:
                # Mirror the blackout checkpoint above: a measured probe
                # draws blacked_out() once per router reached, in order.
                packet.recorder.on_visit(node)
            step = self._process_at(node, prev, final, packet, truth)
            if isinstance(step, ProbeReply):
                return step
            if step is None:
                return None  # silent expiry / delivered silently
            if (
                packet.measured
                and prev is not None
                and self._dynamics is not None
                and self._dynamics.microloops(node)
            ):
                # Classic post-repair micro-loop: the router still
                # points back the way the packet came, so it bounces
                # between the pair until its TTL expires inside the loop.
                step = prev
            prev, node = node, step
        raise PacketDropped(DropReason.WALK_LIMIT)

    # -- per-node processing ---------------------------------------------------------

    def _process_at(
        self,
        node: int,
        prev: int | None,
        final: int,
        packet: _Packet,
        truth: list[TruthHop] | None,
    ) -> ProbeReply | int | None:
        """Process the packet at ``node``.

        Returns the next-hop router id to keep forwarding, a ProbeReply
        to stop with, or None for a silent stop.
        """
        self.stats.nodes_processed += 1
        router = self._network.router(node)
        received_stack = packet.stack.copy() if packet.stack else None
        if truth is not None:
            # positional: router_id, asn, received_labels, received_planes,
            # pushed (fixed up below if a push happens), uniform
            make_hop = _truth_hop if self._memoize else TruthHop
            truth.append(
                make_hop(
                    node,
                    router.asn,
                    packet.stack.labels() if received_stack is not None else (),
                    tuple(packet.planes) if packet.planes else (),
                    False,
                    packet.uniform,
                )
            )

        if packet.stack:
            # MPLS TTL processing on the outermost header.
            if packet.recorder is not None:
                packet.recorder.on_check(
                    node, prev, packet.stack.top.ttl,
                    received_stack if router.rfc4950 else None,
                )
            if packet.stack.top.ttl <= 1:
                return self._time_exceeded(
                    node, prev, packet.origin,
                    received_stack if router.rfc4950 else None,
                    packet,
                )
            packet.stack.decrement_ttl(self._memoize)
            return self._label_ops(node, prev, final, packet, received_stack, truth)

        # Plain IP processing.  The final router is still a router: it
        # decrements before handing the packet to the destination host.
        if packet.recorder is not None:
            packet.recorder.on_check(node, prev, packet.ip_ttl, None)
        if packet.ip_ttl <= 1:
            return self._time_exceeded(
                node, prev, packet.origin, None, packet
            )
        packet.ip_ttl -= 1
        if node == final:
            return self._deliver(node, packet)
        # Ingress push: only the first router of an AS on the path is an LER.
        if prev is None or self._network.router(prev).asn != router.asn:
            program = self._tunnels.program_for(node, final)
            if program is not None:
                self._push_program(router, packet, program)
                if truth is not None and truth:
                    last = truth[-1]
                    make_hop = _truth_hop if self._memoize else TruthHop
                    truth[-1] = make_hop(
                        last.router_id,
                        last.asn,
                        last.received_labels,
                        last.received_planes,
                        True,
                        packet.uniform,
                    )
                return self._forward_labeled(node, final, packet)
        return self._flow_next_hop(node, final, packet.flow_id)

    def _push_program(
        self, router: Router, packet: _Packet, program: TunnelProgram
    ) -> None:
        packet.uniform = router.ttl_propagate
        lse_ttl = packet.ip_ttl if packet.uniform else 255
        for label, plane in zip(
            reversed(program.labels), reversed(program.truth_planes)
        ):
            packet.stack.push(LabelStackEntry(label=label, ttl=lse_ttl))
            packet.planes.insert(0, plane)

    # -- label operations ---------------------------------------------------------------

    def _label_ops(
        self,
        node: int,
        prev: int | None,
        final: int,
        packet: _Packet,
        received_stack: LabelStack | None,
        truth: list[TruthHop] | None,
    ) -> ProbeReply | int | None:
        """Resolve the (already TTL-decremented) top label at ``node``.

        May pop several labels (segment endpoints, service SIDs) before
        forwarding; transitions to IP processing when the stack empties.
        """
        router = self._network.router(node)
        for _ in range(packet.stack.depth + 2):
            if not packet.stack:
                return self._ip_after_pop(
                    node, prev, final, packet, received_stack, truth
                )
            label = packet.stack.top.label
            domain = self._tunnels.sr_domain(router.asn)

            # 1. Service SID owned by this router (bottom of stack).
            if self._tunnels.services.is_service_label(node, label):
                self._pop(packet)
                continue
            # 1b. Entropy label indicator: strip the ELI + EL pair (the
            # EL only feeds the load-balancing hash, it is never
            # forwarded on; RFC 6790).
            if label == int(ReservedLabel.ENTROPY_LABEL_INDICATOR):
                self._pop(packet)  # ELI
                if packet.stack:
                    self._pop(packet)  # EL
                continue

            # 0. Explicit null: a signalling label addressed to us --
            # strip it and keep processing (RFC 3032).
            if label == int(ReservedLabel.IPV4_EXPLICIT_NULL):
                self._pop(packet)
                continue

            if router.sr_enabled and domain is not None:
                # 2. Our own node SID: segment complete, pop and re-examine.
                target = domain.resolve_label(node, label)
                if target == node:
                    self._pop(packet)
                    continue
                # 2b. A binding SID of a local SR policy: splice the
                # policy's segment list in place of the BSID (RFC 9256).
                registry = self._tunnels.policy_registry(router.asn)
                if registry is not None:
                    policy = registry.policy_for(node, label)
                    if policy is not None:
                        self._splice_policy(packet, policy)
                        continue
                # 3. Our adjacency SID: pop, forward over that very link.
                adj = domain.adjacency_target(node, label)
                if adj is not None:
                    self._pop(packet)
                    if packet.stack:
                        return adj
                    # Transport ended exactly here; deliver IP-wise next hop.
                    return adj
                # 4. A node SID toward another router.
                if target is not None:
                    nh = self._forward_node_sid(node, target, domain, packet)
                    return self._after_forwarding_pop(
                        node, prev, packet, received_stack, router, nh
                    )

            if router.ldp_enabled:
                fec = self._tunnels.ldp.fec_for_label(node, label)
                if fec is not None:
                    nh = self._forward_ldp(node, fec.egress, packet)
                    return self._after_forwarding_pop(
                        node, prev, packet, received_stack, router, nh
                    )
                # RSVP-TE: the label is bound to a signaled LSP whose
                # explicit route overrides the IGP next hop.
                step = self._tunnels.rsvp.next_step(node, label)
                if step is not None:
                    nh, out_label = step
                    if out_label is None:
                        self._pop(packet)  # PHP at the penultimate hop
                    else:
                        packet.stack.swap(out_label, self._memoize)
                        packet.planes[0] = "rsvp"
                    return self._after_forwarding_pop(
                        node, prev, packet, received_stack, router, nh
                    )

            raise PacketDropped(DropReason.UNKNOWN_LABEL)
        raise PacketDropped(DropReason.WALK_LIMIT)  # pragma: no cover

    def _forward_node_sid(
        self,
        node: int,
        target: int,
        domain,
        packet: _Packet,
    ) -> int:
        index = domain.node_index(target)
        assert index is not None
        nh = self._flow_next_hop(node, target, packet.flow_id)
        if domain.is_enrolled(nh):
            if nh == target and domain.explicit_null:
                # signal explicit-null: the endpoint still receives an
                # MPLS header, carrying only label 0
                packet.stack.swap(0, self._memoize)
                packet.planes[0] = "sr"
            elif nh == target and domain.php:
                self._pop(packet)  # PHP toward the segment endpoint
            else:
                packet.stack.swap(domain.label_on_wire(nh, index), self._memoize)
                packet.planes[0] = "sr"
            return nh
        # SR -> LDP interworking: downstream neighbour is LDP-only.  The
        # mapping-server SID got us here; continue on the LDP binding.
        fec = self._tunnels.egress_fec(target)
        binding = self._tunnels.ldp.binding(nh, fec)
        if binding == int(ReservedLabel.IMPLICIT_NULL):
            self._pop(packet)
        else:
            packet.stack.swap(binding, self._memoize)
            packet.planes[0] = "ldp"
        return nh

    def _forward_ldp(self, node: int, egress: int, packet: _Packet) -> int:
        if node == egress:
            # UHP tail: we advertised this binding and we are the egress.
            self._pop(packet)
            return node
        nh = self._flow_next_hop(node, egress, packet.flow_id)
        nh_router = self._network.router(nh)
        fec = self._tunnels.egress_fec(egress)
        if nh_router.ldp_enabled:
            binding = self._tunnels.ldp.binding(nh, fec)
            if binding == int(ReservedLabel.IMPLICIT_NULL):
                self._pop(packet)
            else:
                packet.stack.swap(binding, self._memoize)
                packet.planes[0] = "ldp"
            return nh
        # LDP -> SR interworking: downstream speaks SR only.  This border
        # router mirrors the egress's node SID into the SR domain.
        domain = self._tunnels.sr_domain(self._network.router(node).asn)
        if domain is None or not domain.is_enrolled(nh):
            raise PacketDropped(DropReason.UNKNOWN_LABEL)
        index = domain.node_index(egress)
        if index is None:
            raise PacketDropped(DropReason.UNKNOWN_LABEL)
        if nh == egress:
            self._pop(packet)
        else:
            packet.stack.swap(domain.label_on_wire(nh, index), self._memoize)
            packet.planes[0] = "sr"
        return nh

    def _forward_labeled(self, node: int, final: int, packet: _Packet) -> int:
        """First hop after an ingress push: route on the top label."""
        router = self._network.router(node)
        domain = self._tunnels.sr_domain(router.asn)
        label = packet.stack.top.label
        if domain is not None and router.sr_enabled:
            target = domain.resolve_label(node, label)
            if target is not None and target != node:
                return self._flow_next_hop(node, target, packet.flow_id)
        if router.ldp_enabled:
            # The pushed label is the *next hop's* binding; find the FEC
            # through the tunnel program's egress instead.
            program = self._tunnels.program_for(node, final)
            if program is not None:
                return self._flow_next_hop(node, program.egress, packet.flow_id)
        program = self._tunnels.program_for(node, final)
        if program is not None:
            return self._flow_next_hop(node, program.egress, packet.flow_id)
        raise PacketDropped(DropReason.UNKNOWN_LABEL)  # pragma: no cover

    def _after_forwarding_pop(
        self,
        node: int,
        prev: int | None,
        packet: _Packet,
        received_stack: LabelStack | None,
        router: Router,
        nh: int,
    ) -> ProbeReply | int | None:
        """Post-forwarding hook at a router that may have performed the
        final pop (PHP).  In pipe mode the popping LSR owes the IP TTL
        check the tunnel swallowed; expiring here with RFC 4950 yields
        the *opaque* signature (the received LSE is quoted)."""
        if packet.stack or packet.uniform:
            return nh
        if packet.recorder is not None:
            packet.recorder.on_check(
                node, prev, packet.ip_ttl,
                received_stack if router.rfc4950 else None,
            )
        if packet.ip_ttl <= 1:
            return self._time_exceeded(
                node, prev, packet.origin,
                received_stack if router.rfc4950 else None,
                packet,
            )
        packet.ip_ttl -= 1
        return nh

    def _ip_after_pop(
        self,
        node: int,
        prev: int | None,
        final: int,
        packet: _Packet,
        received_stack: LabelStack | None,
        truth: list[TruthHop] | None,
    ) -> ProbeReply | int | None:
        """The stack emptied at this node (it is the ending hop)."""
        router = self._network.router(node)
        if not packet.uniform:
            # Pipe model: the EH performs the IP TTL check + decrement the
            # tunnel swallowed.  Expiring here with RFC 4950 produces the
            # *opaque* tunnel signature (one quoted LSE, TTL ~255-k).
            if packet.recorder is not None:
                packet.recorder.on_check(
                    node, prev, packet.ip_ttl,
                    received_stack if router.rfc4950 else None,
                )
            if packet.ip_ttl <= 1:
                return self._time_exceeded(
                    node, prev, packet.origin,
                    received_stack if router.rfc4950 else None,
                    packet,
                )
            packet.ip_ttl -= 1
        # Uniform model: the MPLS decrement already covered this hop; the
        # IP TTL was synchronised on each pop.
        if node == final:
            return self._deliver(node, packet)
        return self._flow_next_hop(node, final, packet.flow_id)

    def _splice_policy(self, packet: _Packet, policy) -> None:
        """Replace the active BSID with the policy's segment list; the
        pushed LSEs inherit the BSID's remaining TTL (uniform model) so
        downstream hops keep expiring consecutively."""
        bsid_entry = packet.stack.pop()
        if packet.planes:
            packet.planes.pop(0)
        ttl = bsid_entry.ttl if packet.uniform else 255
        for label in reversed(policy.segment_labels):
            packet.stack.push(LabelStackEntry(label=label, ttl=ttl))
            packet.planes.insert(0, "sr")

    def _pop(self, packet: _Packet) -> None:
        popped = packet.stack.pop()
        if packet.planes:
            packet.planes.pop(0)
        if packet.uniform:
            if packet.stack:
                packet.stack.set_top_ttl(popped.ttl, self._memoize)
            else:
                packet.ip_ttl = popped.ttl

    # -- replies -----------------------------------------------------------------------

    def _time_exceeded(
        self,
        node: int,
        prev: int | None,
        vp: int,
        quoted: LabelStack | None,
        packet: _Packet | None = None,
    ) -> ProbeReply | None:
        router = self._network.router(node)
        if router.icmp_silent:
            return None
        if router.icmp_response_rate < 1.0 and packet is not None:
            if self._memoize:
                draw = unit_hash(
                    "icmp-drop", node, packet.flow_id, packet.dest.value
                )
            else:
                # pre-change cost model: every deterministic draw pays a
                # fresh SHA-256 (bit-identical to unit_hash)
                text = (
                    f"icmp-drop\x1f{node}\x1f{packet.flow_id}"
                    f"\x1f{packet.dest.value}"
                )
                draw = (
                    int.from_bytes(
                        hashlib.sha256(text.encode("utf-8")).digest()[:8],
                        "big",
                    )
                    / 2**64
                )
            if draw >= router.icmp_response_rate:
                # ICMP rate limiting: this flow's probes expiring here are
                # consistently policed away (a '*' in the traceroute).
                return None
        if (
            self._faults is not None
            and packet is not None
            and packet.measured
            and not self._faults.allow_icmp(node)
        ):
            # Injected token-bucket policing: the router's ICMP budget
            # for this stretch of the campaign is spent.
            return None
        source = (
            router.interfaces.get(prev) if prev is not None else router.loopback
        )
        if source is None:  # pragma: no cover - defensive
            source = router.loopback
            assert source is not None
        reply_ttl, return_hops = self._reply_meta(node, vp, echo=False)
        return ProbeReply(
            kind=ReplyKind.TIME_EXCEEDED,
            source_ip=source,
            quoted_stack=tuple(quoted) if quoted is not None else None,
            reply_ip_ttl=reply_ttl,
            truth_router_id=node,
            truth_forward_hops=return_hops,
        )

    def _deliver(self, node: int, packet: _Packet) -> ProbeReply:
        reply_ttl, return_hops = self._reply_meta(node, packet.origin, echo=False)
        return ProbeReply(
            kind=ReplyKind.DEST_UNREACHABLE,
            source_ip=packet.dest,
            quoted_stack=None,
            reply_ip_ttl=reply_ttl,
            truth_router_id=node,
            truth_forward_hops=return_hops,
        )

    # -- helpers ------------------------------------------------------------------------

    def _flow_next_hop(self, node: int, target: int, flow_id: int) -> int:
        if not self._memoize:
            hops = self._igp.ecmp_next_hops(node, target)
            if len(hops) == 1:
                return hops[0]
            return hops[_ecmp_digest(flow_id, node, target) % len(hops)]
        key = (node, target, flow_id)
        cached = self._next_hop_cache.get(key)
        if cached is not None:
            self.stats.next_hop_hits += 1
            return cached
        hops = self._igp.ecmp_next_hops(node, target)
        if len(hops) == 1:
            nh = hops[0]
        else:
            nh = hops[_ecmp_bucket(flow_id, node, target) % len(hops)]
        self.stats.next_hop_misses += 1
        self._next_hop_cache[key] = nh
        return nh

    def _return_hops(self, responder: int, vp: int) -> int:
        if vp < 0 or responder == vp:
            return 0
        try:
            return self._igp.hop_count(responder, vp)
        except NoRouteError:  # pragma: no cover - connected graphs
            return 0

    def _reply_meta(self, responder: int, vp: int, echo: bool) -> tuple[int, int]:
        """(reply IP TTL, return-path hop count) for one responder.

        One helper so every reply builder pays the hop-count lookup once.
        The unmemoized cost model resolved the reply TTL and the truth
        hop count independently -- two path walks per reply.
        """
        hops = self._return_hops(responder, vp)
        if not self._memoize:
            hops = self._return_hops(responder, vp)
        vendor = self._network.router(responder).vendor
        profile = VENDOR_PROFILES.get(vendor)
        if profile is None:
            initial = _DEFAULT_INITIAL_TTL
        else:
            initial = (
                profile.ttl_signature.echo_reply
                if echo
                else profile.ttl_signature.time_exceeded
            )
        return max(1, initial - hops), hops

    def _reply_ttl(self, responder: int, vp: int, echo: bool) -> int:
        return self._reply_meta(responder, vp, echo)[0]
