"""Property tests: the fault layer never perturbs fault-free runs, and a
fixed plan replays the exact same fault schedule."""

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.campaign.runner import CampaignRunner
from repro.netsim.faults import FaultInjector, FaultPlan

from tests.conftest import scaled_examples

_CAMPAIGN_ASES = (7, 27, 46)


def _dataset_bytes(dataset) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dataset.jsonl"
        dataset.dump_jsonl(path)
        return path.read_bytes()


@settings(max_examples=scaled_examples(8), deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    as_id=st.sampled_from(_CAMPAIGN_ASES),
    vps=st.integers(min_value=1, max_value=3),
    targets=st.integers(min_value=4, max_value=10),
)
def test_none_plan_is_byte_identical_to_no_plan(seed, as_id, vps, targets):
    """FaultPlan.none() must be indistinguishable from the seed behaviour:
    the serialized datasets agree byte for byte."""
    plain = CampaignRunner(
        seed=seed, vps_per_as=vps, targets_per_as=targets
    ).run_as(as_id)
    with_plan = CampaignRunner(
        seed=seed,
        vps_per_as=vps,
        targets_per_as=targets,
        fault_plan=FaultPlan.none(),
    ).run_as(as_id)
    assert _dataset_bytes(plain.dataset) == _dataset_bytes(with_plan.dataset)
    assert plain.fingerprints == with_plan.fingerprints
    assert plain.analysis.flag_counts() == with_plan.analysis.flag_counts()
    assert with_plan.fault_counters.total_faults() == 0


_rate = st.floats(min_value=0.0, max_value=1.0)

fault_plans = st.builds(
    FaultPlan,
    probe_loss=_rate,
    icmp_rate_limit=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=2.0)
    ),
    icmp_burst=st.integers(min_value=1, max_value=16),
    blackout_rate=_rate,
    blackout_window=st.integers(min_value=1, max_value=64),
    snmp_timeout_rate=_rate,
    stack_suppress_rate=_rate,
    stack_truncate_rate=_rate,
    label_garble_rate=_rate,
    stale_replay_rate=_rate,
    ttl_perturb_rate=_rate,
    spoof_rate=_rate,
    duplicate_hop_rate=_rate,
    reorder_rate=_rate,
    reroute_rate=_rate,
    seed=st.integers(min_value=0, max_value=1000),
)


@settings(max_examples=scaled_examples(40), deadline=None)
@given(plan=fault_plans, scope=st.integers(min_value=0, max_value=99))
def test_fault_schedule_replays_exactly(plan, scope):
    """Two injectors with the same plan and scope make identical
    decisions and end with identical counters."""

    def run(injector: FaultInjector) -> list:
        decisions = []
        for i in range(60):
            flow, dest, ttl = i % 5, f"10.0.0.{i % 8}", i % 30
            decisions.append(
                (
                    injector.probe_lost(flow, dest, ttl, 0),
                    injector.blacked_out(i % 4),
                    injector.allow_icmp(i % 3),
                    injector.snmp_timeout(i % 6),
                    injector.reveal_lost(flow, ("lse", i % 7), 1),
                    injector.stack_suppressed(flow, dest, ttl),
                    injector.stack_truncated(flow, dest, ttl),
                    injector.garbled_label(flow, dest, ttl, 16_000 + i),
                    injector.stale_replayed(flow, dest, ttl),
                    injector.ttl_perturbation(flow, dest, ttl),
                    injector.spoofed_source(flow, dest, ttl),
                    injector.hop_duplicated(flow, dest, ttl),
                    injector.hops_swapped(flow, dest, i),
                    injector.rerouted_flow(flow, dest, 30),
                )
            )
            injector.on_probe()
        return decisions

    a = FaultInjector(plan, "as", scope)
    b = FaultInjector(plan, "as", scope)
    assert run(a) == run(b)
    assert a.counters == b.counters
    # counters survive a JSON round trip (the checkpoint path)
    restored = type(a.counters).from_dict(
        json.loads(json.dumps(a.counters.as_dict()))
    )
    assert restored == a.counters


@settings(max_examples=scaled_examples(20), deadline=None)
@given(plan=fault_plans)
def test_garbled_labels_stay_in_range_and_differ(plan):
    """A garbled label is always a valid, different unreserved label."""
    injector = FaultInjector(plan, "as", 1)
    for i in range(40):
        original = 16_000 + i * 37
        garbled = injector.garbled_label(i % 5, f"10.0.1.{i % 9}", i, original)
        if garbled is not None:
            assert 16 <= garbled < 2**20
            assert garbled != original
