"""Unit tests for the fault-injection subsystem."""

import pytest

from repro.netsim.faults import FaultCounters, FaultInjector, FaultPlan


class TestFaultPlan:
    def test_none_is_inactive(self):
        plan = FaultPlan.none()
        assert not plan.active

    def test_any_knob_activates(self):
        assert FaultPlan(probe_loss=0.01).active
        assert FaultPlan(icmp_rate_limit=0.5).active
        assert FaultPlan(blackout_rate=0.01).active
        assert FaultPlan(snmp_timeout_rate=0.01).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probe_loss": -0.1},
            {"probe_loss": 1.5},
            {"blackout_rate": 2.0},
            {"snmp_timeout_rate": -1.0},
            {"icmp_rate_limit": -0.5},
            {"icmp_burst": 0},
            {"blackout_window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_as_dict_round_trips_through_json(self):
        import json

        plan = FaultPlan(probe_loss=0.1, icmp_rate_limit=0.25, seed=7)
        assert json.loads(json.dumps(plan.as_dict())) == plan.as_dict()


class TestProbeLoss:
    def test_zero_rate_never_loses(self):
        injector = FaultInjector(FaultPlan.none())
        assert not any(
            injector.probe_lost(1, "10.0.0.1", ttl, 0) for ttl in range(1, 64)
        )
        assert injector.counters.probes_lost == 0

    def test_full_rate_always_loses(self):
        injector = FaultInjector(FaultPlan(probe_loss=1.0))
        assert all(
            injector.probe_lost(1, "10.0.0.1", ttl, 0) for ttl in range(1, 64)
        )

    def test_rate_roughly_respected(self):
        injector = FaultInjector(FaultPlan(probe_loss=0.2, seed=5))
        losses = sum(
            injector.probe_lost(flow, "10.0.0.1", ttl, 0)
            for flow in range(50)
            for ttl in range(1, 21)
        )
        assert 0.1 < losses / 1000 < 0.3
        assert injector.counters.probes_lost == losses

    def test_attempts_redraw_independently(self):
        injector = FaultInjector(FaultPlan(probe_loss=0.5, seed=1))
        fates = {
            attempt: injector.probe_lost(9, "10.0.0.9", 5, attempt)
            for attempt in range(32)
        }
        assert len(set(fates.values())) == 2  # both outcomes occur


class TestTokenBucket:
    def test_burst_then_policed(self):
        plan = FaultPlan(icmp_rate_limit=0.0, icmp_burst=3)
        injector = FaultInjector(plan)
        allowed = [injector.allow_icmp(7) for _ in range(5)]
        assert allowed == [True, True, True, False, False]
        assert injector.counters.icmp_rate_limited == 2

    def test_refills_with_the_probe_clock(self):
        plan = FaultPlan(icmp_rate_limit=0.5, icmp_burst=2)
        injector = FaultInjector(plan)
        assert injector.allow_icmp(7)
        assert injector.allow_icmp(7)
        assert not injector.allow_icmp(7)  # bucket empty
        for _ in range(4):  # 4 probes * 0.5 tokens = 2 tokens back
            injector.on_probe()
        assert injector.allow_icmp(7)
        assert injector.allow_icmp(7)
        assert not injector.allow_icmp(7)

    def test_buckets_are_per_router(self):
        plan = FaultPlan(icmp_rate_limit=0.0, icmp_burst=1)
        injector = FaultInjector(plan)
        assert injector.allow_icmp(1)
        assert not injector.allow_icmp(1)
        assert injector.allow_icmp(2)  # untouched bucket

    def test_unlimited_by_default(self):
        injector = FaultInjector(FaultPlan(probe_loss=0.1))
        assert all(injector.allow_icmp(1) for _ in range(1000))


class TestBlackouts:
    def test_windows_flip_with_the_clock(self):
        plan = FaultPlan(blackout_rate=0.5, blackout_window=10, seed=3)
        injector = FaultInjector(plan)
        states = []
        for _ in range(20):  # sample 20 windows
            states.append(injector.blacked_out(4))
            for _ in range(10):
                injector.on_probe()
        assert True in states and False in states

    def test_stable_within_a_window(self):
        plan = FaultPlan(blackout_rate=0.5, blackout_window=1000, seed=3)
        injector = FaultInjector(plan)
        first = injector.blacked_out(4)
        for _ in range(50):
            injector.on_probe()
            assert injector.blacked_out(4) == first

    def test_zero_rate_never_dark(self):
        injector = FaultInjector(FaultPlan(probe_loss=0.5))
        assert not injector.blacked_out(4)
        assert injector.counters.blackout_drops == 0


class TestSnmpTimeouts:
    def test_per_router_stable(self):
        plan = FaultPlan(snmp_timeout_rate=0.5, seed=2)
        injector = FaultInjector(plan)
        fates = {r: injector.snmp_timeout(r) for r in range(40)}
        # a dataset gap is a gap every time it is queried
        for r, fate in fates.items():
            assert injector.snmp_timeout(r) == fate
        assert True in fates.values() and False in fates.values()


class TestReproducibility:
    def test_two_injectors_agree(self):
        plan = FaultPlan(
            probe_loss=0.3,
            icmp_rate_limit=0.5,
            icmp_burst=2,
            blackout_rate=0.2,
            blackout_window=16,
            snmp_timeout_rate=0.3,
            seed=11,
        )
        a = FaultInjector(plan, "as", 46)
        b = FaultInjector(plan, "as", 46)
        for i in range(200):
            assert a.probe_lost(i % 7, "10.1.2.3", i % 30 + 1, 0) == (
                b.probe_lost(i % 7, "10.1.2.3", i % 30 + 1, 0)
            )
            assert a.blacked_out(i % 5) == b.blacked_out(i % 5)
            assert a.allow_icmp(i % 3) == b.allow_icmp(i % 3)
            assert a.snmp_timeout(i % 9) == b.snmp_timeout(i % 9)
            a.on_probe()
            b.on_probe()
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_scopes_diverge(self):
        plan = FaultPlan(probe_loss=0.5, seed=11)
        a = FaultInjector(plan, "as", 46)
        b = FaultInjector(plan, "as", 27)
        fates_a = [a.probe_lost(1, "10.1.2.3", t, 0) for t in range(1, 65)]
        fates_b = [b.probe_lost(1, "10.1.2.3", t, 0) for t in range(1, 65)]
        assert fates_a != fates_b


class TestCounters:
    def test_merge_and_total(self):
        a = FaultCounters(probes_sent=10, probes_lost=2, snmp_timeouts=1)
        b = FaultCounters(probes_sent=5, icmp_rate_limited=3)
        a.merge(b)
        assert a.probes_sent == 15
        assert a.total_faults() == 6  # 2 lost + 1 timeout + 3 rate-limited

    def test_dict_round_trip(self):
        counters = FaultCounters(
            probes_sent=7, probes_lost=1, blackout_drops=2, reveal_losses=3
        )
        assert FaultCounters.from_dict(counters.as_dict()) == counters
