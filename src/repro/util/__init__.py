"""Shared utilities: deterministic randomness, retry accounting and
text-table rendering."""

from repro.util.determinism import DeterministicRng, int_hash, unit_hash
from repro.util.retry import RetryAccounting, RetryPolicy
from repro.util.tables import format_table

__all__ = [
    "DeterministicRng",
    "int_hash",
    "unit_hash",
    "RetryAccounting",
    "RetryPolicy",
    "format_table",
]
