"""Tests for measurement-side record types."""

import pytest

from repro.netsim.addressing import IPv4Address
from repro.probing.records import QuotedLse, Trace, TraceHop, truth_transport_is_sr

from tests.conftest import make_hop, make_trace


class TestQuotedLse:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuotedLse(label=2**20, tc=0, bottom_of_stack=True, ttl=1)
        with pytest.raises(ValueError):
            QuotedLse(label=1, tc=0, bottom_of_stack=True, ttl=300)

    def test_tc_is_three_bits(self):
        # The TC field (RFC 5462) is 3 bits; 8 used to slip through.
        with pytest.raises(ValueError):
            QuotedLse(label=1, tc=8, bottom_of_stack=True, ttl=1)
        with pytest.raises(ValueError):
            QuotedLse(label=1, tc=-1, bottom_of_stack=True, ttl=1)
        lse = QuotedLse(label=1, tc=7, bottom_of_stack=True, ttl=1)
        assert lse.tc == 7

    def test_str(self):
        lse = QuotedLse(label=16_005, tc=0, bottom_of_stack=True, ttl=1)
        assert "16005" in str(lse)


class TestTraceHop:
    def test_star_hop(self):
        hop = make_hop(3, None)
        assert not hop.responded
        assert not hop.has_lses
        assert hop.stack_depth == 0
        assert hop.top_label is None

    def test_labeled_hop(self):
        hop = make_hop(3, "10.0.0.1", labels=(16_005, 992_000))
        assert hop.responded
        assert hop.stack_depth == 2
        assert hop.top_label == 16_005
        assert hop.lses[-1].bottom_of_stack

    def test_with_annotation(self):
        hop = make_hop(3, "10.0.0.1")
        annotated = hop.with_annotation(truth_asn=42)
        assert annotated.truth_asn == 42
        assert hop.truth_asn is None  # original untouched


class TestTrace:
    def test_views(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, None),
                make_hop(3, "10.0.0.2", labels=(16_005,)),
            ]
        )
        assert len(trace) == 3
        assert len(trace.responding_hops()) == 2
        assert len(trace.labeled_hops()) == 1
        assert trace.addresses() == {
            IPv4Address.from_string("10.0.0.1"),
            IPv4Address.from_string("10.0.0.2"),
        }

    def test_str_renders_stars_and_stacks(self):
        trace = make_trace(
            [make_hop(1, None), make_hop(2, "10.0.0.2", labels=(16_005,))]
        )
        text = str(trace)
        assert "*" in text
        assert "16005" in text

    def test_with_hops_replaces(self):
        trace = make_trace([make_hop(1, "10.0.0.1")])
        new = trace.with_hops(trace.hops + (make_hop(2, "10.0.0.2"),))
        assert len(new) == 2
        assert len(trace) == 1


class TestTruthTransport:
    def test_sr_plane(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", truth_planes=("sr", "service"))]
        )
        assert truth_transport_is_sr(trace, 0)

    def test_ldp_plane(self):
        trace = make_trace([make_hop(1, "10.0.0.1", truth_planes=("ldp",))])
        assert not truth_transport_is_sr(trace, 0)

    def test_no_planes(self):
        trace = make_trace([make_hop(1, "10.0.0.1")])
        assert not truth_transport_is_sr(trace, 0)

    def test_service_tail_inherits_sr(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", truth_planes=("sr", "service")),
                make_hop(2, "10.0.0.2", truth_planes=("service",)),
            ]
        )
        assert truth_transport_is_sr(trace, 1)

    def test_service_tail_inherits_ldp(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", truth_planes=("ldp", "service")),
                make_hop(2, "10.0.0.2", truth_planes=("service",)),
            ]
        )
        assert not truth_transport_is_sr(trace, 1)

    def test_service_tail_with_gap_stops(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1"),
                make_hop(2, "10.0.0.2", truth_planes=("service",)),
            ]
        )
        assert not truth_transport_is_sr(trace, 1)
