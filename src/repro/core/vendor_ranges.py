"""Table 1 as AReST consumes it.

AReST's vendor-range flags (CVR, LSVR, LVR) need to answer: *given the
fingerprint evidence for a hop, could this label be an SR label of that
vendor?*  Two evidence grades exist (Sec. 5):

- **exact vendor** (SNMPv3): match against that vendor's default SRGB
  and SRLB from Table 1.  Vendors without published defaults (Juniper,
  Nokia, ...) contribute no ranges -- AReST cannot range-match them.
- **TTL class**: the only exploitable class is {Cisco, Huawei}
  (signature <255, 255>); the usable range is the intersection of both
  SRGBs, [16,000; 23,999].
"""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping

from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.netsim.vendors import (
    CISCO_HUAWEI_SRGB_INTERSECTION,
    LabelRange,
    Vendor,
)

#: Table 1 of the paper, keyed by vendor.  Each entry lists the (range,
#: kind) pairs AReST may match against.
TABLE1_RANGES: Mapping[Vendor, tuple[tuple[LabelRange, str], ...]] = {
    Vendor.CISCO: (
        (LabelRange(16_000, 23_999), "srgb"),
        (LabelRange(15_000, 15_999), "srlb"),
    ),
    Vendor.HUAWEI: (
        (LabelRange(16_000, 47_999), "srgb"),
        (LabelRange(48_000, 63_999), "srlb"),
    ),
    Vendor.ARISTA: (
        (LabelRange(900_000, 965_535), "srgb"),
        (LabelRange(100_000, 116_383), "srlb"),
    ),
}

#: The TTL fingerprint class AReST can act on, and its usable range.
TTL_ACTIONABLE_CLASS: frozenset[Vendor] = frozenset(
    {Vendor.CISCO, Vendor.HUAWEI}
)


@lru_cache(maxsize=1024)
def ranges_for_fingerprint(fp: Fingerprint) -> tuple[LabelRange, ...]:
    """SR label ranges implied by a fingerprint (possibly empty).

    Memoized: a campaign holds a handful of distinct fingerprints but
    the detector asks once per labeled hop, so the interval list is
    built once instead of per hop (Fingerprint is frozen/hashable).
    """
    if fp.method is FingerprintMethod.SNMP:
        assert fp.exact_vendor is not None
        entries = TABLE1_RANGES.get(fp.exact_vendor, ())
        return tuple(r for r, _kind in entries)
    if fp.method is FingerprintMethod.TTL:
        if fp.vendor_class == TTL_ACTIONABLE_CLASS:
            return (CISCO_HUAWEI_SRGB_INTERSECTION,)
        return ()
    return ()


def label_in_vendor_range(label: int, fp: Fingerprint) -> bool:
    """Does ``label`` fall inside any SR range the fingerprint allows?"""
    return any(label in r for r in ranges_for_fingerprint(fp))


def known_sr_ranges() -> tuple[LabelRange, ...]:
    """Every Table 1 range, for label-space statistics (Fig. 16)."""
    ranges: list[LabelRange] = []
    for entries in TABLE1_RANGES.values():
        ranges.extend(r for r, _kind in entries)
    return tuple(ranges)
