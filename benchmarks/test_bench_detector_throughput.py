"""Performance -- AReST post-processing throughput.

"AReST is lightweight as it relies only on traceroute-like data" (Sec.
9).  The paper post-processed 7.7M traceroutes; this benchmark measures
the detector's single-core throughput on realistic traces so a reader
can estimate wall-clock for campaigns of any size.  Besides the printed
table the run drops ``BENCH_detector.json`` (throughput plus per-trace
latency percentiles) so CI can archive machine-readable numbers.
"""

import json
import time

from repro.core.detector import ArestDetector
from repro.probing.tnt import TntProber
from repro.util.atomicio import atomic_write_text

from benchmarks.conftest import emit

BENCH_FILENAME = "BENCH_detector.json"


def _trace_corpus(portfolio_results, copies: int = 3):
    traces = []
    for result in portfolio_results.values():
        traces.extend(result.dataset.traces)
    return traces * copies


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


def test_bench_detector_throughput(benchmark, portfolio_results):
    corpus = _trace_corpus(portfolio_results)

    detector = ArestDetector()

    def detect_all() -> int:
        segments = 0
        for trace in corpus:
            segments += len(detector.detect(trace, {}))
        return segments

    segments = benchmark(detect_all)
    per_trace_us = benchmark.stats["mean"] / len(corpus) * 1e6
    emit(
        f"post-processed {len(corpus):,} traces -> {segments:,} segment "
        f"occurrences; {per_trace_us:.1f} us/trace "
        f"(~{1e6 / per_trace_us * 3600 / 1e6:.0f}M traces/hour/core)"
    )

    # Per-trace latency distribution (one extra pass; the benchmark
    # above measures aggregate throughput, this captures tail shape).
    latencies_us = []
    for trace in corpus:
        tick = time.perf_counter_ns()
        detector.detect(trace, {})
        latencies_us.append((time.perf_counter_ns() - tick) / 1e3)
    latencies_us.sort()
    payload = {
        "benchmark": "detector_throughput",
        "traces": len(corpus),
        "segment_occurrences": segments,
        "ops_per_sec": round(len(corpus) / benchmark.stats["mean"], 1),
        "mean_us_per_trace": round(per_trace_us, 3),
        "p50_us_per_trace": round(_percentile(latencies_us, 0.50), 3),
        "p95_us_per_trace": round(_percentile(latencies_us, 0.95), 3),
        "max_us_per_trace": round(latencies_us[-1], 3),
    }
    atomic_write_text(
        BENCH_FILENAME, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(f"machine-readable stats -> {BENCH_FILENAME}")

    assert segments > 0
    # "lightweight": the paper's 7.7M-trace campaign must post-process
    # in minutes on one core, i.e. well under 1 ms per trace.
    assert benchmark.stats["mean"] / len(corpus) < 1e-3
