"""Builders shared by the streaming-service tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.probing.records import Trace
from tests.conftest import make_hop, make_trace


def corpus(n: int = 6) -> list[Trace]:
    """A deterministic mixed corpus: labeled, plain-IP, and odd traces.

    Cycles through shapes that exercise distinct-segment keys, plain IP
    hops, missing replies and (depending on the sanitizer's mood) the
    quarantine path -- the aggregate invariant must hold either way.
    """
    shapes = [
        lambda i: make_trace(
            [
                make_hop(1, f"10.0.{i}.1", labels=(16001 + i, 24000)),
                make_hop(2, f"10.0.{i}.2", labels=(16001 + i,)),
                make_hop(3, "203.0.113.1", destination_reply=True),
            ]
        ),
        lambda i: make_trace(
            [
                make_hop(1, f"10.1.{i}.1"),
                make_hop(2, None),
                make_hop(3, "203.0.113.1", destination_reply=True),
            ]
        ),
        lambda i: make_trace(
            [
                make_hop(1, f"10.2.{i}.1", labels=(24001,), lse_ttl=255),
                make_hop(2, "203.0.113.1", destination_reply=True),
            ]
        ),
        lambda i: make_trace(
            [make_hop(1, f"10.3.{i}.1")], reached=False
        ),
    ]
    return [shapes[i % len(shapes)](i) for i in range(n)]


@st.composite
def trace_strategy(draw) -> Trace:
    """Small synthetic traces over a tiny address/label pool.

    The pool is deliberately narrow so different traces collide on
    distinct-segment keys -- the interesting case for order
    independence (set-union dedup must not care who arrived first).
    """
    length = draw(st.integers(min_value=1, max_value=4))
    hops = []
    for ttl in range(1, length + 1):
        octet = draw(st.integers(min_value=0, max_value=3))
        has_address = draw(st.booleans())
        labels = tuple(
            draw(
                st.lists(
                    st.sampled_from([16001, 16002, 24000, 24001]),
                    max_size=2,
                )
            )
        )
        hops.append(
            make_hop(
                ttl,
                f"10.9.{octet}.{ttl}" if has_address else None,
                labels=labels if has_address else (),
                lse_ttl=draw(st.sampled_from([1, 255])),
            )
        )
    hops.append(
        make_hop(length + 1, "203.0.113.1", destination_reply=True)
    )
    return make_trace(hops, reached=draw(st.booleans()))


trace_lists = st.lists(trace_strategy(), max_size=6)
