"""Tests for deployment scenario application."""

import pytest

from repro.netsim.topology import Network, RouterRole
from repro.netsim.vendors import LabelRange, Vendor
from repro.topogen.deployment import (
    DeploymentScenario,
    apply_scenario,
    pick_vendor,
)
from repro.topogen.intra import build_intra_as

ASN = 65_020


def scenario(**overrides):
    defaults = dict(
        deploys_sr=True,
        mpls=True,
        sr_share=1.0,
        propagate_share=1.0,
        rfc4950_share=1.0,
        vendor_weights=((Vendor.CISCO, 1.0),),
        snmp_share=0.0,
        ping_share=0.0,
        te_share=0.0,
        service_share=0.0,
    )
    defaults.update(overrides)
    return DeploymentScenario(**defaults)


def build_and_apply(sc, seed=3):
    net = Network()
    build_intra_as(net, ASN, n_core=8, n_edge=3, n_border=2, seed=seed)
    applied = apply_scenario(net, ASN, sc, seed=seed)
    return net, applied


class TestScenarioValidation:
    def test_shares_validated(self):
        with pytest.raises(ValueError):
            scenario(sr_share=1.5)
        with pytest.raises(ValueError):
            scenario(propagate_share=-0.1)

    def test_sr_requires_mpls(self):
        with pytest.raises(ValueError):
            scenario(mpls=False)

    def test_vendor_weights_required(self):
        with pytest.raises(ValueError):
            scenario(vendor_weights=())


class TestApplyScenario:
    def test_full_sr(self):
        net, applied = build_and_apply(scenario())
        routers = net.routers_in_as(ASN)
        assert all(r.sr_enabled for r in routers)
        assert not any(r.ldp_enabled for r in routers)
        assert applied.sr_domain is not None
        assert applied.ldp_only_routers == []

    def test_no_mpls(self):
        net, applied = build_and_apply(
            scenario(deploys_sr=False, sr_share=0.0, mpls=False)
        )
        routers = net.routers_in_as(ASN)
        assert not any(r.sr_enabled or r.ldp_enabled for r in routers)
        assert applied.sr_domain is None

    def test_pure_ldp(self):
        net, applied = build_and_apply(
            scenario(deploys_sr=False, sr_share=0.0)
        )
        routers = net.routers_in_as(ASN)
        assert all(r.ldp_enabled for r in routers)
        assert applied.sr_domain is None

    def test_hybrid_island_connected(self):
        net, applied = build_and_apply(scenario(sr_share=0.7))
        island = set(applied.ldp_only_routers)
        assert island
        # connectivity: BFS within the island reaches every member
        start = next(iter(island))
        seen = {start}
        queue = [start]
        while queue:
            rid = queue.pop()
            for n in net.neighbors(rid):
                if n in island and n not in seen:
                    seen.add(n)
                    queue.append(n)
        assert seen == island

    def test_hybrid_island_excludes_borders(self):
        net, applied = build_and_apply(scenario(sr_share=0.7))
        for rid in applied.ldp_only_routers:
            assert net.router(rid).role is not RouterRole.BORDER

    def test_ldp_at_ingress_island_contains_border(self):
        net, applied = build_and_apply(
            scenario(sr_share=0.7, ldp_at_ingress=True)
        )
        roles = {
            net.router(rid).role for rid in applied.ldp_only_routers
        }
        assert RouterRole.BORDER in roles
        assert RouterRole.EDGE not in roles

    def test_boundary_routers_dual_stack(self):
        net, applied = build_and_apply(scenario(sr_share=0.7))
        island = set(applied.ldp_only_routers)
        for rid in applied.sr_routers:
            router = net.router(rid)
            touches_island = any(
                n in island for n in net.neighbors(rid)
            )
            assert router.ldp_enabled == touches_island

    def test_mapping_server_covers_island(self):
        net, applied = build_and_apply(scenario(sr_share=0.7))
        domain = applied.sr_domain
        assert domain is not None
        for rid in applied.ldp_only_routers:
            assert domain.has_mapping_entry(rid)

    def test_custom_srgb_applied(self):
        custom = LabelRange(400_000, 407_999)
        net, applied = build_and_apply(scenario(custom_srgb=custom))
        domain = applied.sr_domain
        for rid in applied.sr_routers:
            assert domain.config(rid).srgb == custom

    def test_aligned_srgb_despite_vendor_mix(self):
        mixed = scenario(
            vendor_weights=(
                (Vendor.CISCO, 0.4),
                (Vendor.ARISTA, 0.3),
                (Vendor.JUNIPER, 0.3),
            )
        )
        net, applied = build_and_apply(mixed)
        domain = applied.sr_domain
        assert domain.srgbs_homogeneous()

    def test_heterogeneous_srgb(self):
        net, applied = build_and_apply(
            scenario(heterogeneous_srgb=True)
        )
        domain = applied.sr_domain
        bases = {
            domain.config(rid).srgb.low for rid in applied.sr_routers
        }
        assert len(bases) > 1
        # bases differ by whole thousands (suffix matching works)
        assert all(b % 1_000 == 0 for b in bases)

    def test_uhp_disables_php(self):
        net, applied = build_and_apply(scenario(uhp=True))
        assert not applied.sr_domain.php

    def test_rfc4950_uniform_per_as(self):
        net, applied = build_and_apply(scenario(rfc4950_share=1.0))
        values = {r.rfc4950 for r in net.routers_in_as(ASN)}
        assert len(values) == 1

    def test_empty_as_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            apply_scenario(net, 99_999, scenario())


class TestPickVendor:
    def test_deterministic(self):
        weights = ((Vendor.CISCO, 0.5), (Vendor.JUNIPER, 0.5))
        assert pick_vendor(weights, 1, 2) == pick_vendor(weights, 1, 2)

    def test_single_option(self):
        assert pick_vendor(((Vendor.NOKIA, 1.0),), "x") is Vendor.NOKIA

    def test_distribution_roughly_follows_weights(self):
        weights = ((Vendor.CISCO, 0.8), (Vendor.JUNIPER, 0.2))
        picks = [pick_vendor(weights, i) for i in range(500)]
        cisco_share = picks.count(Vendor.CISCO) / len(picks)
        assert 0.7 <= cisco_share <= 0.9
