"""Campaign-scoped telemetry session: manifest + event sink + totals.

A :class:`TelemetrySession` owns one telemetry directory for the
lifetime of one campaign run:

- on construction it creates the directory and writes a ``running``
  :mod:`manifest <repro.obs.manifest>`;
- :meth:`record_scope` durably appends one scope's span/counter batch
  to ``telemetry.jsonl`` (called as each AS completes -- in completion
  order, which is fine: the event stream is observational) and folds
  the counters into the session totals;
- :meth:`count` accumulates portfolio-level counters (events that
  belong to no single AS, like worker re-dispatches);
- :meth:`finalize` flushes the portfolio batch including the total
  wall-clock span, rewrites the manifest with the exit status, and
  renders ``metrics.prom`` (Prometheus textfile format) from the
  on-disk stream -- so the export always agrees with what a scraper of
  the JSONL would see, even after a crash-recovery.

The session holds no result data and is consulted by no result path:
deleting every artifact it writes changes nothing about a campaign's
report or checkpoint.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.manifest import RunManifest, begin_manifest
from repro.obs.sink import EVENTS_FILENAME, TelemetryWriter
from repro.obs.telemetry import merge_counters
from repro.obs.trace import ClockAnchor, LatencyHistogram, TraceContext

#: canonical Prometheus textfile name inside a telemetry directory
PROMETHEUS_FILENAME = "metrics.prom"

#: scope label for campaign-level records
PORTFOLIO_SCOPE = "portfolio"


class TelemetrySession:
    """One campaign run's telemetry artifacts, start to finish."""

    def __init__(
        self,
        directory: str | Path,
        *,
        config: dict,
        seed: int,
        command: str = "run_portfolio",
        jobs: int = 1,
        as_ids: list[int] | None = None,
        clock=time.monotonic,
        trace: TraceContext | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: campaign-wide trace context; the session's span_id is the
        #: root span every worker recorder parents under
        self.trace = trace or TraceContext.new()
        #: the supervisor's own wall/monotonic correspondence
        self.anchor = ClockAnchor.capture(clock)
        self.manifest: RunManifest = begin_manifest(
            self.directory,
            config=config,
            seed=seed,
            command=command,
            jobs=jobs,
            as_ids=as_ids,
            trace_id=self.trace.trace_id,
            clock_anchor=self.anchor.as_dict(),
        )
        self.writer = TelemetryWriter(self.directory / EVENTS_FILENAME)
        #: counter totals across every scope recorded so far
        self.totals: dict[str, int] = {}
        self._portfolio_counters: dict[str, int] = {}
        self._portfolio_histograms: dict[str, LatencyHistogram] = {}
        self._clock = clock
        self._started = self.anchor.clock
        self._finalized = False

    def traceparent(self) -> str:
        """The wire context task envelopes carry to worker processes."""
        return self.trace.traceparent()

    # -- recording -------------------------------------------------------------

    def record_scope(
        self,
        scope: int | str,
        spans: list[dict] | None = None,
        counters: dict[str, int] | None = None,
        gauges: dict[str, float] | None = None,
        anchor: dict | None = None,
        histograms: dict[str, dict] | None = None,
    ) -> None:
        """Durably append one scope's telemetry batch."""
        self.writer.append_batch(
            scope,
            spans=spans,
            counters=counters,
            gauges=gauges,
            anchor=anchor,
            histograms=histograms,
        )
        if counters:
            merge_counters(self.totals, counters)

    def record_export(self, scope: int | str, export: dict) -> None:
        """Record one :meth:`repro.obs.telemetry.Telemetry.export` blob.

        Traced exports carry the worker's clock anchor and histogram
        bins; both pass straight through to the stream (the anchor is
        the cross-process skew fix -- each batch normalizes through the
        clock of the process that recorded it).
        """
        self.record_scope(
            scope,
            spans=export.get("spans"),
            counters=export.get("counters"),
            gauges=export.get("gauges"),
            anchor=export.get("anchor"),
            histograms=export.get("histograms"),
        )

    def count(self, name: str, n: int = 1) -> None:
        """Bump a portfolio-level counter (flushed at finalize)."""
        if n:
            self._portfolio_counters[name] = (
                self._portfolio_counters.get(name, 0) + n
            )

    def observe(self, stage: str, seconds: float) -> None:
        """Bin one supervisor-side latency (e.g. a checkpoint bank)."""
        hist = self._portfolio_histograms.get(stage)
        if hist is None:
            hist = self._portfolio_histograms[stage] = LatencyHistogram()
        hist.observe(seconds)

    # -- lifecycle -------------------------------------------------------------

    def finalize(self, exit_status: str = "ok") -> None:
        """Flush portfolio records, settle the manifest, render exports.

        Idempotent: only the first call writes (so an error path can
        finalize defensively without clobbering an earlier outcome).
        """
        if self._finalized:
            return
        self._finalized = True
        wall = self._clock() - self._started
        self.record_scope(
            PORTFOLIO_SCOPE,
            spans=[
                {
                    "stage": "portfolio",
                    "path": "portfolio",
                    "seconds": wall,
                    "start": self._started,
                    "trace_id": self.trace.trace_id,
                    "span_id": self.trace.span_id,
                    "parent_span_id": None,
                }
            ],
            counters=dict(self._portfolio_counters),
            anchor=self.anchor.as_dict(),
            histograms={
                stage: hist.as_dict()
                for stage, hist in self._portfolio_histograms.items()
            }
            or None,
        )
        self.manifest.finalize(exit_status)
        # Render the Prometheus textfile from the on-disk stream so the
        # export and the JSONL can never disagree.
        from repro.obs.prometheus import render_prometheus
        from repro.obs.summary import summarize_telemetry
        from repro.util.atomicio import atomic_write_text

        summary = summarize_telemetry(self.directory)
        atomic_write_text(
            self.directory / PROMETHEUS_FILENAME, render_prometheus(summary)
        )
