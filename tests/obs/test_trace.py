"""Distributed tracing unit tests: context, anchors, histograms, timelines."""

import json

import pytest

from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    LATENCY_BUCKETS,
    ClockAnchor,
    LatencyHistogram,
    TraceContext,
    critical_path,
    merge_histogram_dicts,
    stragglers,
    timeline_from_records,
    timeline_report_dict,
    trace_event_json,
)

from tests.obs.test_telemetry import FakeClock


class TestTraceContext:
    def test_roundtrips_through_the_wire_form(self):
        ctx = TraceContext.new()
        parsed = TraceContext.parse(ctx.traceparent())
        assert parsed == ctx

    def test_wire_form_is_w3c_shaped(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert ctx.traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize(
        "junk",
        [
            "",
            "not-a-traceparent",
            "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # bad version
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
            "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
            "00-" + "g" * 32 + "-" + "b" * 16 + "-01",  # non-hex
        ],
    )
    def test_junk_is_rejected(self, junk):
        with pytest.raises(ValueError):
            TraceContext.parse(junk)

    def test_fresh_contexts_are_distinct(self):
        seen = {TraceContext.new().trace_id for _ in range(8)}
        assert len(seen) == 8


class TestClockAnchor:
    def test_normalizes_monotonic_readings_to_wall_time(self):
        anchor = ClockAnchor(unix=1000.0, clock=50.0)
        assert anchor.to_wall(50.0) == 1000.0
        assert anchor.to_wall(53.5) == 1003.5

    def test_dict_roundtrip(self):
        anchor = ClockAnchor(unix=123.25, clock=9.5)
        assert ClockAnchor.from_dict(anchor.as_dict()) == anchor


class TestLatencyHistogram:
    def test_bucket_semantics_are_inclusive_le(self):
        hist = LatencyHistogram()
        # exactly on an edge lands in that edge's bucket (Prometheus le)
        hist.observe(LATENCY_BUCKETS[0])
        hist.observe(LATENCY_BUCKETS[0] / 2)
        hist.observe(LATENCY_BUCKETS[3])
        hist.observe(99.0)  # overflow
        assert hist.counts[0] == 2
        assert hist.counts[3] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 4

    def test_merge_is_vector_addition(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.0001)
        b.observe(0.0001)
        b.observe(5.0)
        merged: dict = {}
        merge_histogram_dicts(merged, {"probe": a.as_dict()})
        merge_histogram_dicts(merged, {"probe": b.as_dict()})
        assert merged["probe"]["count"] == 3
        assert merged["probe"]["buckets"][3] == 2
        assert merged["probe"]["sum"] == pytest.approx(0.0002 + 5.0)

    def test_observe_many_matches_per_sample_observe(self):
        samples = [0.0, 1e-6, LATENCY_BUCKETS[0], 0.004, 0.004, 1.5, 99.0]
        one_by_one, batched = LatencyHistogram(), LatencyHistogram()
        for value in samples:
            one_by_one.observe(value)
        batched.observe_many(samples)
        assert batched.counts == one_by_one.counts
        assert batched.count == one_by_one.count
        assert batched.sum == pytest.approx(one_by_one.sum)
        batched.observe_many([])  # a flush with nothing banked is free
        assert batched.count == one_by_one.count

    def test_foreign_bucket_layouts_are_refused(self):
        merged = {"probe": LatencyHistogram().as_dict()}
        before = json.dumps(merged, sort_keys=True)
        merge_histogram_dicts(
            merged, {"probe": {"buckets": [1, 2, 3], "sum": 1.0, "count": 6}}
        )
        assert json.dumps(merged, sort_keys=True) == before


class TestTracedRecorder:
    def test_untraced_span_records_keep_the_v1_shape(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("probe"):
            pass
        assert tel.spans == [
            {"stage": "probe", "path": "probe", "seconds": 1.0}
        ]
        assert "anchor" not in tel.export()

    def test_traced_spans_carry_ids_and_parent_under_context(self):
        ctx = TraceContext.new()
        tel = Telemetry(clock=FakeClock(), trace=ctx)
        with tel.span("as"):
            with tel.span("analyze"):
                pass
        inner, outer = tel.spans
        assert inner["trace_id"] == outer["trace_id"] == ctx.trace_id
        assert outer["parent_span_id"] == ctx.span_id
        assert inner["parent_span_id"] == outer["span_id"]
        assert inner["span_id"] != outer["span_id"]
        assert "start" in inner and "start" in outer

    def test_traced_export_ships_anchor_and_histograms(self):
        tel = Telemetry(trace=TraceContext.new())
        tel.observe("detect", 0.001)
        export = tel.export()
        assert set(export["anchor"]) == {"unix", "clock"}
        assert export["histograms"]["detect"]["count"] == 1


def _record_batch(scope, tel):
    """Shape one recorder's export like the sink would (anchor first)."""
    export = tel.export()
    records = [{"kind": "anchor", "scope": scope, **export["anchor"]}]
    for span in export["spans"]:
        records.append({"kind": "span", "scope": scope, **span})
    return records


class TestTimelineReconstruction:
    def _two_worker_stream(self):
        """A supervisor and two workers with wildly different clocks."""
        ctx = TraceContext.new()
        sup_clock = FakeClock(tick=0.0)
        # supervisor: wall anchor 1000, monotonic 0; run spans 0..10
        records = [{"kind": "anchor", "scope": "portfolio",
                    "unix": 1000.0, "clock": 0.0}]
        root = {
            "kind": "span", "scope": "portfolio", "stage": "portfolio",
            "path": "portfolio", "seconds": 10.0, "start": 0.0,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_span_id": None,
        }
        # worker A: monotonic zero offset by +500, did 1001..1004
        tel_a = Telemetry(clock=FakeClock(), trace=ctx)
        records.append({"kind": "anchor", "scope": 1,
                        "unix": 1001.0, "clock": 501.0})
        records.append({
            "kind": "span", "scope": 1, "stage": "as", "path": "as",
            "seconds": 3.0, "start": 501.0, "trace_id": ctx.trace_id,
            "span_id": "a" * 16, "parent_span_id": ctx.span_id,
        })
        # worker B: huge negative monotonic offset, did 1005..1009.5
        records.append({"kind": "anchor", "scope": 2,
                        "unix": 1005.0, "clock": -90.0})
        records.append({
            "kind": "span", "scope": 2, "stage": "as", "path": "as",
            "seconds": 4.5, "start": -90.0, "trace_id": ctx.trace_id,
            "span_id": "b" * 16, "parent_span_id": ctx.span_id,
        })
        records.append({
            "kind": "span", "scope": 2, "stage": "analyze",
            "path": "as/analyze", "seconds": 2.0, "start": -88.0,
            "trace_id": ctx.trace_id, "span_id": "c" * 16,
            "parent_span_id": "b" * 16,
        })
        records.append(root)
        return ctx, records

    def test_anchors_order_spans_across_processes(self):
        ctx, records = self._two_worker_stream()
        timeline = timeline_from_records(records)
        by_scope = {s.scope: s for s in timeline.spans if s.stage == "as"}
        # worker A ran 1001..1004, worker B 1005..1009.5, despite raw
        # monotonic starts of +501 and -90
        assert by_scope[1].start == pytest.approx(1001.0)
        assert by_scope[1].end == pytest.approx(1004.0)
        assert by_scope[2].start == pytest.approx(1005.0)
        assert by_scope[2].end == pytest.approx(1009.5)
        assert by_scope[1].end < by_scope[2].start

    def test_children_nest_within_parents(self):
        _, records = self._two_worker_stream()
        timeline = timeline_from_records(records)
        for parent_id, kids in timeline.children.items():
            parent = next(
                s for s in timeline.spans if s.span_id == parent_id
            )
            for child in kids:
                assert child.start >= parent.start
                assert child.end <= parent.end

    def test_residual_skew_is_clamped_and_counted(self):
        ctx, records = self._two_worker_stream()
        # worker B's child pokes 0.25s past its parent's end
        for record in records:
            if record.get("span_id") == "c" * 16:
                record["seconds"] = 6.0  # ends at 1009.75 > parent 1009.5
        timeline = timeline_from_records(records)
        child = next(s for s in timeline.spans if s.span_id == "c" * 16)
        parent = next(s for s in timeline.spans if s.span_id == "b" * 16)
        assert timeline.skew_clamped == 1
        assert child.end == parent.end

    def test_critical_path_telescopes_to_root_duration(self):
        _, records = self._two_worker_stream()
        timeline = timeline_from_records(records)
        segments = critical_path(timeline)
        assert [s.span.stage for s in segments] == [
            "portfolio", "as", "analyze",
        ]
        total = sum(s.exclusive_seconds for s in segments)
        assert total == pytest.approx(timeline.root().seconds)

    def test_stragglers_report_slowest_scope_and_last_stage(self):
        _, records = self._two_worker_stream()
        timeline = timeline_from_records(records)
        slow = stragglers(timeline)
        assert slow[0].scope == 2
        assert slow[0].last_stage == "analyze"

    def test_untraced_records_are_ignored(self):
        timeline = timeline_from_records(
            [
                {"kind": "span", "scope": 1, "stage": "probe",
                 "path": "probe", "seconds": 1.0},
                {"kind": "counter", "scope": 1, "name": "x", "value": 2},
                {"kind": "flush", "scope": 1},
            ]
        )
        assert timeline.spans == []
        assert timeline.root() is None

    def test_spans_without_an_anchor_are_dropped(self):
        # a torn stream can lose the anchor record; the span cannot be
        # placed on a wall clock, so it must not enter the timeline
        timeline = timeline_from_records(
            [
                {"kind": "span", "scope": 1, "stage": "as", "path": "as",
                 "seconds": 1.0, "start": 5.0, "trace_id": "t",
                 "span_id": "d" * 16, "parent_span_id": None},
            ]
        )
        assert timeline.spans == []


class TestTraceEventJson:
    def test_document_is_valid_and_parent_refs_resolve(self):
        ctx = TraceContext.new()
        tel = Telemetry(clock=FakeClock(), trace=ctx)
        with tel.span("as", as_id=7):
            with tel.span("analyze"):
                pass
        timeline = timeline_from_records(_record_batch(1, tel))
        doc = trace_event_json(timeline)
        text = json.dumps(doc)
        parsed = json.loads(text)
        assert parsed["displayTimeUnit"] == "ms"
        xs = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in parsed["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 2 and len(metas) == 1
        ids = {e["args"]["span_id"] for e in xs}
        for event in xs:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            parent = event["args"].get("parent_span_id")
            assert parent is None or parent in ids
        # caller attrs ride along
        assert any(e["args"].get("as_id") == 7 for e in xs)

    def test_empty_timeline_yields_empty_document(self):
        doc = trace_event_json(timeline_from_records([]))
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestTimelineReportDict:
    def test_report_is_json_serializable_and_consistent(self):
        ctx = TraceContext.new()
        tel = Telemetry(clock=FakeClock(), trace=ctx)
        with tel.span("as"):
            with tel.span("analyze"):
                pass
        records = [{"kind": "anchor", "scope": "portfolio",
                    "unix": 50.0, "clock": 0.0}]
        records.append({
            "kind": "span", "scope": "portfolio", "stage": "portfolio",
            "path": "portfolio", "seconds": 9.0, "start": 0.0,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_span_id": None,
        })
        records.extend(_record_batch(3, tel))
        report = timeline_report_dict(timeline_from_records(records))
        json.dumps(report)  # must be serializable as-is
        assert report["spans"] == 3
        assert report["trace_ids"] == [ctx.trace_id]
        assert report["critical_path_seconds"] == pytest.approx(
            sum(s["exclusive_seconds"] for s in report["critical_path"])
        )
        assert 0.0 <= report["critical_path_share"] <= 1.0 + 1e-9
