"""Columnar trace core: vectorized flag evaluation over whole campaigns.

The object-path detector (:class:`repro.core.detector.ArestDetector`)
walks one hop object at a time -- per-hop Python dispatch caps it around
27k traces/sec, three orders of magnitude short of what replaying a
paper-scale 7.7M-trace campaign wants.  This module trades the per-hop
walk for a *columnar* batch representation plus array passes:

:class:`TraceBatch`
    Flat per-hop columns for a whole campaign, built **once** from
    :class:`~repro.probing.records.Trace` objects or streamed straight
    from :meth:`~repro.campaign.dataset.TraceDataset.iter_jsonl`:
    effective top labels, effective stack depths, base eligibility,
    vendor-range membership, adjacent-label match bits, interned
    fingerprint-vendor ids and hop->trace offsets.  Everything the flag
    hierarchy (Sec. 4) consumes is precomputed at build; re-detection
    over a built batch touches only the columns.

:class:`ColumnarDetector`
    The batch flag evaluator.  Eligibility masking, maximal-run
    discovery, suffix matching and CVR/CO/LSVR/LVR/LSO classification
    run as whole-batch array passes: per-hop bits are combined with
    arbitrary-precision integer bitwise ops (one machine op per 30
    bytes of hops, via ``int.from_bytes``), maximal label runs fall out
    of a single C-level regex scan over the match bytes, and per-run
    evidence checks are ``bytearray.find`` range probes.  The only
    per-segment Python executed is the construction of the
    :class:`~repro.core.segments.DetectedSegment` results themselves.

The output contract is byte-identical to the object path -- same flags,
same hop indices, same ``suffix_based`` bits, same ordering -- enforced
by the Hypothesis differential suite in
``tests/core/test_columnar_differential.py`` (the fast ≡ reference
idiom PR 5 established for the probing fast path).

No new dependencies: columns live in :mod:`array`/``bytearray``
storage, the bitwise passes are stdlib big-int arithmetic, and the run
scan is :mod:`re` on bytes.
"""

from __future__ import annotations

import re
from array import array
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.detector import FingerprintLookup, _lookup_from_mapping
from repro.core.flags import Flag
from repro.core.labels import SUFFIX_DIGITS
from repro.core.segments import DetectedSegment
from repro.core.vendor_ranges import ranges_for_fingerprint
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.netsim.addressing import IPv4Address
from repro.netsim.mpls import ReservedLabel
from repro.probing.records import Trace, TraceHop

_ELI = int(ReservedLabel.ENTROPY_LABEL_INDICATOR)
_FIRST_UNRESERVED = 16
_SUFFIX_MODULUS = 10**SUFFIX_DIGITS

#: default chunk size for streamed (JSONL) batch construction
DEFAULT_CHUNK = 4096


class RowView:
    """Per-trace view over one batch row (the object-API bridge).

    Everything is trace-relative; ``tops``/``depths`` mirror what
    :func:`repro.core.detector.effective_labels` would compute hop by
    hop (top label or ``None``, effective depth), ``eligible`` is the
    base eligibility the detector starts from.  The differential
    suite's round-trip property checks these against the object path.
    """

    __slots__ = ("trace", "tops", "depths", "eligible", "in_range")

    def __init__(self, trace, tops, depths, eligible, in_range):
        self.trace = trace
        self.tops = tops
        self.depths = depths
        self.eligible = eligible
        self.in_range = in_range


class TraceBatch:
    """Flat, append-only columnar storage for a batch of traces.

    Build through the classmethods (:meth:`from_traces`,
    :meth:`from_pairs`, :meth:`from_jsonl`, :meth:`iter_jsonl`); the
    builder seals the batch (:meth:`_seal`) by caching the big-int
    projections of the bit columns, after which detection never touches
    Python-level per-hop state again.
    """

    __slots__ = (
        "traces",
        "offsets",
        "top",
        "depth",
        "truth_asn",
        "addresses",
        "elig",
        "in_range",
        "eq_next",
        "sfx_next",
        "single",
        "vendor_id",
        "vendor_names",
        "_elig_int",
        "_eq_int",
        "_sfx_int",
        "_single_int",
        "_asn_masks",
    )

    def __init__(self) -> None:
        self.traces: list[Trace] = []
        #: hop-offset of each trace; ``offsets[k] .. offsets[k+1]`` is
        #: trace ``k``'s global hop range
        self.offsets = array("q", [0])
        #: effective top label per hop (-1: no detectable signal)
        self.top = array("i")
        #: effective stack depth per hop (reserved/ELI pairs stripped)
        self.depth = array("i")
        #: ground-truth owner AS per hop (-1: unannotated)
        self.truth_asn = array("i")
        #: responding address per hop (None on ``*`` hops)
        self.addresses: list[IPv4Address | None] = []
        #: base eligibility: signal present, not TNT-revealed, addressed
        self.elig = bytearray()
        #: top label inside the hop fingerprint's SR range
        self.in_range = bytearray()
        #: ``top[i] == top[i+1]`` within the same trace
        self.eq_next = bytearray()
        #: labels differ but share the decimal suffix (footnote 4)
        self.sfx_next = bytearray()
        #: single-hop signal: effective depth >= 2 or in-range label
        self.single = bytearray()
        #: interned fingerprint evidence id per hop (0: unfingerprinted)
        self.vendor_id = bytearray()
        #: id -> vendor token ("" at 0, "Cisco", "Cisco|Huawei", ...)
        self.vendor_names: list[str] = [""]
        self._elig_int = 0
        self._eq_int = 0
        self._sfx_int = 0
        self._single_int = 0
        self._asn_masks: dict[int, int] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_traces(
        cls,
        traces: Iterable[Trace],
        fingerprints: Mapping[IPv4Address, Fingerprint]
        | FingerprintLookup
        | None = None,
    ) -> "TraceBatch":
        """Build one batch; every trace shares one fingerprint mapping."""
        lookup = _as_lookup(fingerprints)
        batch = cls()
        for trace in traces:
            batch._append(trace, lookup)
        batch._seal()
        return batch

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[
            tuple[Trace, Mapping[IPv4Address, Fingerprint] | FingerprintLookup]
        ],
    ) -> "TraceBatch":
        """Build from (trace, fingerprints) pairs -- campaigns may carry
        per-AS fingerprint maps, exactly as the pipeline feeds the
        object detector."""
        batch = cls()
        cache: dict[int, FingerprintLookup] = {}
        for trace, fingerprints in pairs:
            key = id(fingerprints)
            lookup = cache.get(key)
            if lookup is None:
                lookup = cache[key] = _as_lookup(fingerprints)
            batch._append(trace, lookup)
        batch._seal()
        return batch

    @classmethod
    def from_jsonl(
        cls,
        path,
        fingerprints: Mapping[IPv4Address, Fingerprint]
        | FingerprintLookup
        | None = None,
    ) -> "TraceBatch":
        """Build one batch straight from a ``dump_jsonl`` dataset file."""
        from repro.campaign.dataset import TraceDataset

        return cls.from_traces(TraceDataset.iter_jsonl(path), fingerprints)

    @classmethod
    def iter_jsonl(
        cls,
        path,
        fingerprints: Mapping[IPv4Address, Fingerprint]
        | FingerprintLookup
        | None = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> Iterator["TraceBatch"]:
        """Stream a dataset as bounded-size batches.

        Constant memory in the dataset size: each yielded batch holds at
        most ``chunk`` traces, so paper-scale archives re-detect without
        ever materializing the whole campaign.
        """
        from repro.campaign.dataset import TraceDataset

        if chunk < 1:
            raise ValueError("chunk must be positive")
        lookup = _as_lookup(fingerprints)
        batch = cls()
        for trace in TraceDataset.iter_jsonl(path):
            batch._append(trace, lookup)
            if len(batch.traces) >= chunk:
                batch._seal()
                yield batch
                batch = cls()
        if batch.traces:
            batch._seal()
            yield batch

    def _append(self, trace: Trace, lookup: FingerprintLookup) -> None:
        """Project one trace's hops onto the columns (the only per-hop
        Python in the columnar life cycle -- paid once per batch)."""
        top = self.top
        depth = self.depth
        truth_asn = self.truth_asn
        addresses = self.addresses
        elig = self.elig
        in_range = self.in_range
        eq_next = self.eq_next
        sfx_next = self.sfx_next
        single = self.single
        vendor_id = self.vendor_id
        start = len(top)
        prev_top = -1
        for hop in trace.hops:
            hop_top = -1
            hop_depth = 0
            lses = hop.lses
            if lses:
                labels = [e.label for e in lses]
                n = len(labels)
                i = 0
                while i < n:
                    value = labels[i]
                    if value == _ELI:
                        i += 2  # skip the ELI and its entropy value
                        continue
                    if value < _FIRST_UNRESERVED:
                        i += 1  # other reserved labels: signalling only
                        continue
                    if hop_top < 0:
                        hop_top = value
                    hop_depth += 1
                    i += 1
            address = hop.address
            ok = hop_top >= 0 and address is not None and not hop.tnt_revealed
            ranged = 0
            vid = 0
            if ok:
                fp = lookup(address)
                if fp.method is not FingerprintMethod.NONE:
                    ranged = int(
                        any(r.low <= hop_top <= r.high for r in ranges_for_fingerprint(fp))
                    )
                    vid = self._vendor_token(fp)
            top.append(hop_top)
            depth.append(hop_depth)
            t_asn = hop.truth_asn
            truth_asn.append(-1 if t_asn is None else t_asn)
            addresses.append(address)
            elig.append(1 if ok else 0)
            in_range.append(ranged)
            single.append(1 if (hop_depth >= 2 or ranged) else 0)
            eq_next.append(0)
            sfx_next.append(0)
            vendor_id.append(vid)
            if prev_top >= 0 and hop_top >= 0:
                here = len(top) - 1
                if prev_top == hop_top:
                    eq_next[here - 1] = 1
                elif prev_top % _SUFFIX_MODULUS == hop_top % _SUFFIX_MODULUS:
                    sfx_next[here - 1] = 1
            prev_top = hop_top
        self.traces.append(trace)
        self.offsets.append(len(top))
        assert len(top) - start == len(trace.hops)

    def _vendor_token(self, fp: Fingerprint) -> int:
        """Intern the fingerprint's vendor evidence as a small id."""
        if fp.exact_vendor is not None:
            token = fp.exact_vendor.value
        elif fp.vendor_class:
            token = "|".join(sorted(v.value for v in fp.vendor_class))
        else:
            return 0
        try:
            return self.vendor_names.index(token)
        except ValueError:
            self.vendor_names.append(token)
            if len(self.vendor_names) > 255:
                raise ValueError("too many distinct vendor tokens") from None
            return len(self.vendor_names) - 1

    def _seal(self) -> None:
        """Cache the big-int projections of the bit columns.

        ``int.from_bytes`` turns a bytearray of 0/1 flags into one
        arbitrary-precision integer whose byte *i* is hop *i*
        (little-endian), so whole-batch boolean algebra becomes a
        handful of big-int ``&``/``|``/``>>`` ops instead of a Python
        loop per hop.
        """
        self._elig_int = int.from_bytes(self.elig, "little")
        self._eq_int = int.from_bytes(self.eq_next, "little")
        self._sfx_int = int.from_bytes(self.sfx_next, "little")
        self._single_int = int.from_bytes(self.single, "little")
        self._asn_masks = {}

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def n_hops(self) -> int:
        """Total hops across all traces."""
        return len(self.top)

    def trace(self, k: int) -> Trace:
        """The original trace object behind row ``k``."""
        return self.traces[k]

    def row(self, k: int) -> RowView:
        """Trace-relative view of row ``k``'s columns."""
        lo, hi = self.offsets[k], self.offsets[k + 1]
        return RowView(
            trace=self.traces[k],
            tops=[t if t >= 0 else None for t in self.top[lo:hi]],
            depths=list(self.depth[lo:hi]),
            eligible=[bool(b) for b in self.elig[lo:hi]],
            in_range=[bool(b) for b in self.in_range[lo:hi]],
        )

    def iter_traces(self) -> Iterator[Trace]:
        return iter(self.traces)

    def asn_mask(self, asn: int) -> int:
        """Big-int eligibility mask selecting hops owned by ``asn``.

        The columnar equivalent of the pipeline's per-trace
        in-AS ``hop_mask`` under the default (ground-truth) annotator;
        computed once per (batch, asn) and cached.
        """
        mask = self._asn_masks.get(asn)
        if mask is None:
            member = bytes(
                1 if t == asn else 0 for t in self.truth_asn
            )
            mask = int.from_bytes(member, "little")
            self._asn_masks[asn] = mask
        return mask

    def global_index(self, k: int, hop_index: int) -> int:
        """Map a (trace, trace-relative hop) pair to its column index."""
        return self.offsets[k] + hop_index


def _as_lookup(
    fingerprints: Mapping[IPv4Address, Fingerprint]
    | FingerprintLookup
    | None,
) -> FingerprintLookup:
    if fingerprints is None:
        fingerprints = {}
    if callable(fingerprints):
        return fingerprints
    return _lookup_from_mapping(fingerprints)


class ColumnarDetector:
    """Batch flag evaluation over :class:`TraceBatch` columns.

    Drop-in for :class:`~repro.core.detector.ArestDetector`: the
    :meth:`detect` method has the identical signature and byte-identical
    output, implemented as a one-row batch.  The throughput win comes
    from :meth:`detect_batch`, which amortizes every pass over a whole
    campaign.
    """

    def __init__(
        self,
        min_run_length: int = 2,
        suffix_matching: bool = True,
    ) -> None:
        if min_run_length < 2:
            raise ValueError("consecutive flags need runs of >= 2 hops")
        self._min_run = min_run_length
        self._suffix_matching = suffix_matching
        # a maximal stretch of k match bits covers k+1 hops, so a
        # >=min_run-hop run is >=min_run-1 consecutive set bytes
        self._run_re = re.compile(
            b"\x01{%d,}" % (min_run_length - 1)
        )

    # -- object-API bridge ---------------------------------------------------

    def detect(
        self,
        trace: Trace,
        fingerprints: Mapping[IPv4Address, Fingerprint] | FingerprintLookup,
        hop_filter: Callable[[TraceHop], bool] | None = None,
        hop_mask: frozenset[int] | set[int] | None = None,
    ) -> list[DetectedSegment]:
        """Detect SR-MPLS segments in one trace (one-row column view).

        Same contract as :meth:`ArestDetector.detect` -- this is what
        :class:`~repro.core.pipeline.ArestPipeline` and the streaming
        service call per trace, keeping every object-API consumer
        working unchanged on the columnar core.  Runs the same passes
        as :meth:`detect_batch` but over plain per-trace lists: for a
        single row the batch container's column/bigint bookkeeping
        costs more than it amortizes, so the one-row view projects and
        scans in two tight loops instead.  The differential suite pins
        both entry points to the object path independently.
        """
        lookup = _as_lookup(fingerprints)
        hops = trace.hops
        n = len(hops)
        tops = [0] * n
        depths = [0] * n
        ranged = [0] * n
        #: eligible top label per hop, -1 where the hop cannot detect
        labels_seq = [-1] * n
        none_method = FingerprintMethod.NONE
        for idx in range(n):
            hop = hops[idx]
            hop_top = -1
            hop_depth = 0
            lses = hop.lses
            if lses:
                skip_next = False
                for entry in lses:
                    if skip_next:
                        skip_next = False
                        continue
                    value = entry.label
                    if value == _ELI:
                        skip_next = True  # entropy value rides along
                        continue
                    if value < _FIRST_UNRESERVED:
                        continue  # other reserved: signalling only
                    if hop_top < 0:
                        hop_top = value
                    hop_depth += 1
            tops[idx] = hop_top
            depths[idx] = hop_depth
            address = hop.address
            ok = (
                hop_top >= 0
                and address is not None
                and not hop.tnt_revealed
            )
            if ok:
                if hop_mask is not None:
                    ok = idx in hop_mask
                elif hop_filter is not None:
                    ok = bool(hop_filter(hop))
            if ok:
                labels_seq[idx] = hop_top
                fp = lookup(address)
                if fp.method is not none_method:
                    for r in ranges_for_fingerprint(fp):
                        if r.low <= hop_top <= r.high:
                            ranged[idx] = 1
                            break
        # maximal run discovery: a chain extends while adjacent eligible
        # tops sequence-match, exactly the pair-match bits of the batch
        suffix = self._suffix_matching
        min_run = self._min_run
        runs: list[tuple[int, int]] = []  # (start, last) inclusive
        run_start = 0
        prev_label = -1
        for idx, label in enumerate(labels_seq):
            if (
                label >= 0
                and prev_label >= 0
                and (
                    label == prev_label
                    or (
                        suffix
                        and label % _SUFFIX_MODULUS
                        == prev_label % _SUFFIX_MODULUS
                    )
                )
            ):
                prev_label = label
                continue
            if prev_label >= 0 and idx - run_start >= min_run:
                runs.append((run_start, idx - 1))
            run_start = idx
            prev_label = label
        if prev_label >= 0 and n - run_start >= min_run:
            runs.append((run_start, n - 1))
        # emission walks the hops once, so output order (runs and
        # singles interleaved by first hop) matches the object path
        segments: list[DetectedSegment] = []
        trusted = DetectedSegment.trusted
        ri = 0
        n_runs = len(runs)
        idx = 0
        while idx < n:
            if ri < n_runs and runs[ri][0] == idx:
                start, last = runs[ri]
                ri += 1
                stop = last + 1
                run_tops = tops[start:stop]
                segments.append(
                    trusted(
                        Flag.CVR if 1 in ranged[start:stop] else Flag.CO,
                        tuple(range(start, stop)),
                        tuple(hops[j].address for j in range(start, stop)),
                        tuple(run_tops),
                        tuple(depths[start:stop]),
                        any(
                            run_tops[j] != run_tops[j + 1]
                            for j in range(len(run_tops) - 1)
                        ),
                    )
                )
                idx = stop
                continue
            if labels_seq[idx] >= 0:
                hop_depth = depths[idx]
                hop_ranged = ranged[idx]
                if hop_depth >= 2:
                    segments.append(
                        trusted(
                            Flag.LSVR if hop_ranged else Flag.LSO,
                            (idx,),
                            (hops[idx].address,),
                            (tops[idx],),
                            (hop_depth,),
                        )
                    )
                elif hop_ranged:
                    segments.append(
                        trusted(
                            Flag.LVR,
                            (idx,),
                            (hops[idx].address,),
                            (tops[idx],),
                            (hop_depth,),
                        )
                    )
            idx += 1
        return segments

    # -- batch passes --------------------------------------------------------

    def detect_batch(
        self,
        batch: TraceBatch,
        hop_masks: list[frozenset[int] | set[int] | None] | None = None,
        asn: int | None = None,
    ) -> list[list[DetectedSegment]]:
        """Per-trace detected segments for the whole batch.

        ``asn`` restricts eligibility to hops whose ground-truth owner
        is that AS (the columnar analogue of the pipeline's in-AS
        ``hop_mask``); ``hop_masks`` gives one explicit trace-relative
        index set per trace (None entries leave that trace unmasked).
        When both are given the explicit masks win, like the object
        path's mask-beats-filter rule.
        """
        n_traces = len(batch.traces)
        out: list[list[DetectedSegment]] = [[] for _ in range(n_traces)]
        n_hops = batch.n_hops
        if n_hops == 0:
            return out
        elig_int = batch._elig_int
        if hop_masks is not None:
            if len(hop_masks) != n_traces:
                raise ValueError("one hop mask (or None) per trace")
            elig_int &= _masks_to_int(batch, hop_masks)
        elif asn is not None:
            elig_int &= batch.asn_mask(asn)

        # pair (i, i+1) continues a run iff both hops are eligible and
        # their top labels sequence-match; eq/sfx bits are already zero
        # across trace boundaries, so runs can never span traces
        if self._suffix_matching:
            link = batch._eq_int | batch._sfx_int
        else:
            link = batch._eq_int
        match_int = elig_int & (elig_int >> 8) & link
        found: list[tuple[int, int, bool]] = []  # (start, end incl, is_run)
        if match_int:
            match = match_int.to_bytes(n_hops, "little")
            singles_int = elig_int & batch._single_int
            if singles_int:
                cand = bytearray(singles_int.to_bytes(n_hops, "little"))
            else:
                cand = None
            zeros: bytes | None = None
            for m in self._run_re.finditer(match):
                start, last = m.start(), m.end()  # hops start..last incl.
                found.append((start, last, True))
                if cand is not None:
                    width = last + 1 - start
                    if zeros is None or len(zeros) < width:
                        zeros = bytes(width)
                    cand[start : last + 1] = zeros[:width]
        else:
            singles_int = elig_int & batch._single_int
            cand = (
                bytearray(singles_int.to_bytes(n_hops, "little"))
                if singles_int
                else None
            )
        if cand is not None:
            find = cand.find
            pos = find(1)
            while pos != -1:
                found.append((pos, pos, False))
                pos = find(1, pos + 1)
        if not found:
            return out
        found.sort(key=_found_start)

        offsets = batch.offsets
        top = batch.top
        depth = batch.depth
        addresses = batch.addresses
        in_range = batch.in_range
        eq_next = batch.eq_next
        in_range_find = in_range.find
        eq_find = eq_next.find
        trusted = DetectedSegment.trusted
        k = 0
        base = 0
        nxt = offsets[1]
        for start, last, is_run in found:
            while start >= nxt:
                k += 1
                nxt = offsets[k + 1]
            base = offsets[k]
            if is_run:
                stop = last + 1
                vendor_confirmed = in_range_find(1, start, stop) != -1
                segment = trusted(
                    Flag.CVR if vendor_confirmed else Flag.CO,
                    tuple(range(start - base, stop - base)),
                    tuple(addresses[start:stop]),
                    tuple(top[start:stop]),
                    tuple(depth[start:stop]),
                    # any adjacent pair that is not label-equal relied
                    # on suffix matching (footnote 4)
                    eq_find(0, start, last) != -1,
                )
            else:
                ranged = in_range[start]
                hop_depth = depth[start]
                if hop_depth >= 2:
                    flag = Flag.LSVR if ranged else Flag.LSO
                else:  # single label; candidates guarantee in-range
                    flag = Flag.LVR
                segment = trusted(
                    flag,
                    (start - base,),
                    (addresses[start],),
                    (top[start],),
                    (hop_depth,),
                    False,
                )
            out[k].append(segment)
        return out

    def count_batch(
        self,
        batch: TraceBatch,
        hop_masks: list | None = None,
        asn: int | None = None,
    ) -> tuple[int, list[list[DetectedSegment]]]:
        """Segment occurrences plus the per-trace lists (benchmark aid)."""
        detections = self.detect_batch(batch, hop_masks=hop_masks, asn=asn)
        return sum(len(d) for d in detections), detections


def _found_start(item: tuple[int, int, bool]) -> int:
    return item[0]


def _masks_to_int(batch: TraceBatch, hop_masks: list) -> int:
    """Big-int eligibility mask from per-trace index sets.

    ``None`` entries leave every hop of that trace selected.
    """
    member = bytearray(b"\x01" * batch.n_hops)
    offsets = batch.offsets
    for k, mask in enumerate(hop_masks):
        if mask is None:
            continue
        lo, hi = offsets[k], offsets[k + 1]
        for i in range(lo, hi):
            if (i - lo) not in mask:
                member[i] = 0
    return int.from_bytes(member, "little")
