"""Durability of the JSONL telemetry sink.

Mirrors the checkpoint's crash-safety suite (:mod:`tests.test_atomicio`):
the headline test SIGKILLs a child that appends batches in a tight loop
and asserts the survivors parse -- at most the final line may be lost.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.sink import EVENTS_FILENAME, TelemetryWriter, load_events


class TestWriterRoundtrip:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        writer = TelemetryWriter(path)
        written = writer.append_batch(
            46,
            spans=[{"stage": "probe", "path": "as/probe", "seconds": 1.5}],
            counters={"traces": 4},
            gauges={"depth": 2.0},
        )
        assert written == 4  # span + counter + gauge + flush marker
        records, dropped = load_events(path)
        assert dropped == 0
        assert [r["kind"] for r in records] == [
            "span",
            "counter",
            "gauge",
            "flush",
        ]
        assert all(r["scope"] == 46 for r in records)

    def test_batches_end_with_flush_markers(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        writer = TelemetryWriter(path)
        writer.append_batch(1, counters={"x": 1})
        writer.append_batch("portfolio", counters={"y": 2})
        records, _ = load_events(path)
        flushes = [r["scope"] for r in records if r["kind"] == "flush"]
        assert flushes == [1, "portfolio"]

    def test_missing_file_is_empty_stream(self, tmp_path):
        assert load_events(tmp_path / "absent.jsonl") == ([], 0)

    def test_torn_tail_is_salvaged(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        TelemetryWriter(path).append_batch(1, counters={"x": 1})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "counter", "scope": 2, "na')  # torn write
        records, dropped = load_events(path)
        assert dropped == 1
        assert [r["kind"] for r in records] == ["counter", "flush"]

    def test_non_object_lines_are_dropped(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        path.write_text('[1, 2]\n{"no_kind": true}\n')
        records, dropped = load_events(path)
        assert records == []
        assert dropped == 2


_CRASH_LOOP = """
import sys
from repro.obs.sink import TelemetryWriter

writer = TelemetryWriter(sys.argv[1])
batch = 0
print("ready", flush=True)
while True:
    batch += 1
    writer.append_batch(
        batch,
        spans=[{"stage": "probe", "path": "as/probe", "seconds": 0.5}],
        counters={"traces": 4, "probes": 36},
    )
"""


class TestKillNineInjection:
    """SIGKILL mid-append loses at most the torn tail, never the stream."""

    @pytest.mark.parametrize("delay_ms", [2, 5, 11, 23, 47])
    def test_stream_salvages_after_sigkill(self, tmp_path, delay_ms):
        path = tmp_path / EVENTS_FILENAME
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CRASH_LOOP, str(path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            time.sleep(delay_ms / 1000)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()
        # Loading never raises, whatever instant the kill landed on.
        records, dropped = load_events(path)
        assert dropped <= 1  # at most the torn final line
        # Every flush-marked batch before the damage is fully intact:
        # batches are written atomically-in-order, so scopes covered by
        # a flush marker carry all three of their records.
        flushed = {r["scope"] for r in records if r["kind"] == "flush"}
        for scope in flushed:
            kinds = sorted(
                r["kind"] for r in records if r["scope"] == scope
            )
            assert kinds == ["counter", "counter", "flush", "span"]
        # And the stream is valid JSONL line-by-line up to the tail.
        lines = path.read_text().splitlines() if path.exists() else []
        for line in lines[:-1]:
            json.loads(line)
