"""Ablation -- bdrmapIT annotation accuracy vs. AReST coverage.

The pipeline scopes detection to the AS of interest using interface
ownership annotations.  Injecting bdrmapIT-style border misattributions
shrinks (never grows) the in-AS view, quantifying how much AReST's
recall depends on ownership accuracy.
"""

from repro.campaign import CampaignRunner
from repro.util.tables import format_table

from benchmarks.conftest import emit

AS_ID = 28  # Bell Canada: strongly detected baseline


def _detected(error_rate: float) -> tuple[int, int]:
    runner = CampaignRunner(
        seed=1,
        bdrmap_error_rate=error_rate,
        vps_per_as=3,
        targets_per_as=18,
    )
    result = runner.run_as(AS_ID)
    return (
        len(result.analysis.sr_addresses),
        result.analysis.total_distinct_segments(),
    )


def test_bench_ablation_bdrmapit(benchmark):
    perfect = benchmark.pedantic(
        lambda: _detected(0.0), rounds=1, iterations=1
    )
    mild = _detected(0.1)
    severe = _detected(0.5)

    emit(
        format_table(
            ["bdrmapIT error rate", "SR interfaces", "distinct segments"],
            [
                ("0.0 (perfect)", *perfect),
                ("0.1", *mild),
                ("0.5", *severe),
            ],
            title="Ablation -- ownership annotation errors (AS#28)",
        )
    )

    # Shape: errors only remove hops from the AS view; coverage decays
    # monotonically and the perfect annotator detects the most.
    assert perfect[0] >= mild[0] >= severe[0]
    assert perfect[1] >= severe[1]
    assert perfect[0] > 0
