"""Controlled validation environment (the paper's Fig. 6 in code).

The authors note that "code developed to test AReST on a controlled
environment" accompanies the paper.  This module is that environment:
five minimal, fully-inspectable network scenarios, one per detection
flag, each engineered so that exactly its flag fires -- the executable
version of Fig. 6's walkthrough.

>>> from repro.testbed import run_all_scenarios
>>> for outcome in run_all_scenarios():
...     assert outcome.flags_raised == [outcome.scenario.expected_flag]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.detector import ArestDetector
from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.fingerprint.combined import CombinedFingerprinter
from repro.fingerprint.records import Fingerprint
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.addressing import IPv4Address
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, Router, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import LabelRange, Vendor
from repro.probing.records import Trace
from repro.probing.tnt import TntProber

ASN = 65_000


@dataclass(slots=True)
class ControlledScenario:
    """One engineered network plus the flag it must raise."""

    name: str
    description: str
    expected_flag: Flag
    network: Network
    engine: ForwardingEngine
    vp: Router
    target: IPv4Address
    #: whether fingerprinting is available in this scenario
    fingerprinted: bool


@dataclass(slots=True)
class ScenarioOutcome:
    """What running one scenario produced."""

    scenario: ControlledScenario
    trace: Trace
    segments: list[DetectedSegment] = field(default_factory=list)

    @property
    def flags_raised(self) -> list[Flag]:
        """Flags detected in the scenario's trace, path order."""
        return [s.flag for s in self.segments]

    @property
    def as_expected(self) -> bool:
        """True when exactly the expected flag fired."""
        return self.flags_raised == [self.scenario.expected_flag]


def _chain(
    n: int,
    vendor: Vendor = Vendor.CISCO,
    snmp: bool = False,
    srgb: LabelRange | None = None,
    srlb: LabelRange | None = None,
    sr: bool = True,
    policy: TunnelPolicy | None = None,
    php: bool = True,
):
    """Shared scaffolding: VP -> n-router AS -> announced /24."""
    net = Network()
    vp = net.add_router("vp", asn=64_900, role=RouterRole.VANTAGE)
    routers: list[Router] = []
    prev: Router = vp
    for i in range(n):
        router = net.add_router(
            f"p{i}", asn=ASN, vendor=vendor, snmp_responsive=snmp
        )
        net.add_link(prev, router)
        routers.append(router)
        prev = router
    prefix = net.announce_prefix(routers[-1], 24)
    igp = ShortestPaths(net)
    ldp = LdpState(net, seed=6)
    domains = {}
    if sr:
        domain = SegmentRoutingDomain(net, asn=ASN, seed=6, php=php)
        for router in routers:
            domain.enroll(router, srgb=srgb, srlb=srlb)
        domains[ASN] = domain
    else:
        for router in routers:
            router.ldp_enabled = True
    controller = TunnelController(net, igp, ldp, domains)
    controller.set_policy(policy or TunnelPolicy(asn=ASN))
    engine = ForwardingEngine(net, igp, controller)
    return net, vp, prefix.address_at(7), engine, routers


def cvr_scenario() -> ControlledScenario:
    """Fig. 6, green path: a persistent in-range label plus a Cisco
    fingerprint on at least one hop."""
    net, vp, target, engine, _ = _chain(5, snmp=True)
    return ControlledScenario(
        name="CVR",
        description=(
            "Cisco SR chain, default SRGB, SNMPv3 answers: the same "
            "16,0xx label repeats and range-matches"
        ),
        expected_flag=Flag.CVR,
        network=net,
        engine=engine,
        vp=vp,
        target=target,
        fingerprinted=True,
    )


def co_scenario() -> ControlledScenario:
    """Fig. 6, gray path: a persistent label, nobody fingerprintable."""
    net, vp, target, engine, routers = _chain(
        5, srgb=LabelRange(17_000, 24_999)
    )
    for router in routers:
        router.responds_to_ping = False  # no TTL fingerprint either
    return ControlledScenario(
        name="CO",
        description=(
            "SR chain on a custom SRGB with no fingerprint coverage: "
            "the sequence alone carries the signal"
        ),
        expected_flag=Flag.CO,
        network=net,
        engine=engine,
        vp=vp,
        target=target,
        fingerprinted=False,
    )


def lsvr_scenario() -> ControlledScenario:
    """Fig. 6, purple path: a lone hop quoting a deep stack whose top
    label falls in the fingerprinted vendor's range."""
    # an operator-custom SRLB keeps the bottom label out of Table 1,
    # reproducing Fig. 6's exact [20,000; 37,000]-style stack
    net, vp, target, engine, _ = _chain(
        3,
        snmp=True,
        srlb=LabelRange(37_000, 37_999),
        policy=TunnelPolicy(
            asn=ASN, service_sid_share=1.0, second_service_share=0.0
        ),
    )
    return ControlledScenario(
        name="LSVR",
        description=(
            "one transit LSR quoting [node SID; service SID]: depth 2 "
            "with the top label inside Cisco's SRGB"
        ),
        expected_flag=Flag.LSVR,
        network=net,
        engine=engine,
        vp=vp,
        target=target,
        fingerprinted=True,
    )


def lvr_scenario() -> ControlledScenario:
    """Fig. 6, blue path: a lone in-range single-label hop."""
    net, vp, target, engine, _ = _chain(3, snmp=True)
    return ControlledScenario(
        name="LVR",
        description=(
            "a single labeled hop (the rest PHP'd away) whose label "
            "sits in Cisco's SRGB"
        ),
        expected_flag=Flag.LVR,
        network=net,
        engine=engine,
        vp=vp,
        target=target,
        fingerprinted=True,
    )


def lso_scenario() -> ControlledScenario:
    """Fig. 6, orange path: a lone deep stack, no vendor mapping."""
    net, vp, target, engine, routers = _chain(
        3,
        srgb=LabelRange(400_000, 407_999),
        policy=TunnelPolicy(
            asn=ASN, service_sid_share=1.0, second_service_share=0.0
        ),
    )
    for router in routers:
        router.responds_to_ping = False
    return ControlledScenario(
        name="LSO",
        description=(
            "a depth-2 stack on a custom 400k SRGB with no fingerprint "
            "coverage: only the stack itself signals"
        ),
        expected_flag=Flag.LSO,
        network=net,
        engine=engine,
        vp=vp,
        target=target,
        fingerprinted=False,
    )


SCENARIO_BUILDERS: tuple[Callable[[], ControlledScenario], ...] = (
    cvr_scenario,
    co_scenario,
    lsvr_scenario,
    lvr_scenario,
    lso_scenario,
)


def run_scenario(scenario: ControlledScenario) -> ScenarioOutcome:
    """Probe the scenario, fingerprint, detect."""
    prober = TntProber(scenario.engine, seed=6)
    trace = prober.trace(
        scenario.vp.router_id, scenario.target, vp_name=scenario.name
    )
    fingerprints: dict[IPv4Address, Fingerprint] = {}
    if scenario.fingerprinted:
        combined = CombinedFingerprinter(
            scenario.engine,
            SnmpOracle(scenario.network, coverage=1.0, seed=6),
        )
        for hop in trace.hops:
            if hop.address is not None:
                fingerprints[hop.address] = combined.fingerprint(
                    hop.address, hop.reply_ip_ttl, scenario.vp.router_id
                )
    segments = ArestDetector().detect(trace, fingerprints)
    return ScenarioOutcome(scenario=scenario, trace=trace, segments=segments)


def run_all_scenarios() -> list[ScenarioOutcome]:
    """Run the five controlled scenarios, Fig. 6 order."""
    return [run_scenario(build()) for build in SCENARIO_BUILDERS]
