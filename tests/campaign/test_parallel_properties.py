"""Property: parallel execution is invisible in the results.

For any portfolio and any ``jobs`` setting, the canonical report JSON
and the checkpoint bytes must be identical to the serial run.  This is
the acceptance criterion for the supervised executor: concurrency is
purely an execution-plane concern.
"""

import json
import multiprocessing
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignRunner

from tests.conftest import scaled_examples

# One AS per flavour keeps each campaign tiny while still exercising
# heterogeneous results (includes 9999: unknown AS -> banked failure).
_AS_POOL = (7, 15, 27, 31, 46, 59, 9999)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for the supervised pool",
)

_serial_cache: dict[tuple, tuple[str, bytes]] = {}


def _run(as_ids, seed, jobs) -> tuple[str, bytes]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.ckpt"
        runner = CampaignRunner(seed=seed, vps_per_as=1, targets_per_as=4)
        report = runner.run_portfolio(
            as_ids=as_ids, checkpoint=path, jobs=jobs, timeout_per_as=120
        )
        return (
            json.dumps(report.as_dict(), sort_keys=True),
            path.read_bytes(),
        )


def _serial_reference(as_ids, seed) -> tuple[str, bytes]:
    key = (tuple(as_ids), seed)
    if key not in _serial_cache:
        _serial_cache[key] = _run(as_ids, seed, jobs=1)
    return _serial_cache[key]


@settings(max_examples=scaled_examples(4), deadline=None)
@given(
    as_ids=st.lists(
        st.sampled_from(_AS_POOL), min_size=1, max_size=4, unique=True
    ),
    seed=st.sampled_from((1, 3)),
    jobs=st.sampled_from((2, 4)),
)
def test_parallel_report_and_checkpoint_match_serial(as_ids, seed, jobs):
    serial_report, serial_bytes = _serial_reference(as_ids, seed)
    parallel_report, parallel_bytes = _run(as_ids, seed, jobs)
    assert parallel_report == serial_report
    assert parallel_bytes == serial_bytes
