"""Tests for the LDP control plane: local bindings, PHP, pools."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.ldp import Fec, LdpState
from repro.netsim.mpls import ReservedLabel
from repro.netsim.topology import Network
from repro.netsim.vendors import VENDOR_PROFILES, Vendor


def build(n: int = 4, vendor: Vendor = Vendor.CISCO):
    net = Network()
    routers = []
    for i in range(n):
        r = net.add_router(f"r{i}", asn=1, vendor=vendor, ldp_enabled=True)
        routers.append(r)
    ldp = LdpState(net, seed=7)
    prefix = IPv4Prefix.from_string("203.0.113.0/24")
    fec = ldp.register_fec(prefix, routers[-1].router_id)
    return net, routers, ldp, fec


class TestFecs:
    def test_register_idempotent(self):
        net, routers, ldp, fec = build()
        again = ldp.register_fec(fec.prefix, fec.egress)
        assert again is fec

    def test_conflicting_egress_rejected(self):
        net, routers, ldp, fec = build()
        with pytest.raises(ValueError):
            ldp.register_fec(fec.prefix, routers[0].router_id)

    def test_fec_lookup(self):
        net, routers, ldp, fec = build()
        assert ldp.fec_for_prefix(fec.prefix) is fec
        assert (
            ldp.fec_for_prefix(IPv4Prefix.from_string("198.51.100.0/24"))
            is None
        )


class TestBindings:
    def test_egress_advertises_implicit_null(self):
        net, routers, ldp, fec = build()
        assert ldp.binding(routers[-1].router_id, fec) == int(
            ReservedLabel.IMPLICIT_NULL
        )

    def test_bindings_are_stable(self):
        net, routers, ldp, fec = build()
        r = routers[0].router_id
        assert ldp.binding(r, fec) == ldp.binding(r, fec)

    def test_bindings_differ_across_routers(self):
        # The heart of classic MPLS (Sec. 2.1): labels have *local*
        # significance; two routers (almost) never pick the same label.
        net, routers, ldp, fec = build(n=6)
        labels = {
            ldp.binding(r.router_id, fec)
            for r in routers[:-1]
        }
        assert len(labels) == 5

    def test_labels_drawn_from_vendor_pool(self):
        for vendor in (Vendor.CISCO, Vendor.JUNIPER, Vendor.HUAWEI):
            net, routers, ldp, fec = build(vendor=vendor)
            label = ldp.binding(routers[0].router_id, fec)
            assert label in VENDOR_PROFILES[vendor].dynamic_pool

    def test_non_ldp_router_rejected(self):
        net, routers, ldp, fec = build()
        routers[1].ldp_enabled = False
        with pytest.raises(ValueError):
            ldp.binding(routers[1].router_id, fec)

    def test_reverse_lookup(self):
        net, routers, ldp, fec = build()
        r = routers[0].router_id
        label = ldp.binding(r, fec)
        assert ldp.fec_for_label(r, label) is fec
        assert ldp.fec_for_label(r, label + 1) is None

    def test_per_router_labels_unique_across_fecs(self):
        net, routers, ldp, _fec = build()
        r = routers[0].router_id
        prefixes = [
            IPv4Prefix.from_string(f"198.51.{i}.0/24") for i in range(30)
        ]
        labels = set()
        for prefix in prefixes:
            fec = ldp.register_fec(prefix, routers[-1].router_id)
            labels.add(ldp.binding(r, fec))
        assert len(labels) == len(prefixes)

    def test_advertised_labels_view(self):
        net, routers, ldp, fec = build()
        r = routers[0].router_id
        label = ldp.binding(r, fec)
        assert ldp.advertised_labels(r) == {label: fec}


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    n_fecs=st.integers(min_value=1, max_value=40),
)
def test_binding_uniqueness_property(seed, n_fecs):
    """Property: a router's labels are unique per FEC and in-pool."""
    net = Network()
    a = net.add_router("a", asn=1, vendor=Vendor.CISCO, ldp_enabled=True)
    egress = net.add_router(
        "e", asn=1, vendor=Vendor.CISCO, ldp_enabled=True
    )
    ldp = LdpState(net, seed=seed)
    pool = VENDOR_PROFILES[Vendor.CISCO].dynamic_pool
    labels = set()
    for i in range(n_fecs):
        prefix = IPv4Prefix.from_string(f"10.{i}.0.0/24")
        fec = ldp.register_fec(prefix, egress.router_id)
        label = ldp.binding(a.router_id, fec)
        assert label in pool
        labels.add(label)
    assert len(labels) == n_fecs


def test_fec_str():
    fec = Fec(prefix=IPv4Prefix.from_string("10.0.0.0/24"), egress=3)
    assert "10.0.0.0/24" in str(fec)
