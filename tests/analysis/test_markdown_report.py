"""Tests for the markdown campaign report."""

import pytest

from repro.analysis.markdown_report import render_markdown_report


class TestMarkdownReport:
    def test_all_sections_present(self, small_portfolio_results):
        text = render_markdown_report(small_portfolio_results)
        for heading in (
            "# AReST campaign report",
            "## Headline",
            "## Detection flags per AS",
            "## Deployment view",
            "## Interworking",
            "## Tunnel taxonomy",
            "## Fingerprinting",
            "## Ground-truth validation",
        ):
            assert heading in text

    def test_tables_are_markdown(self, small_portfolio_results):
        text = render_markdown_report(small_portfolio_results)
        assert "|---|" in text
        assert "| AS#46 | ESnet |" in text

    def test_headline_counts(self, small_portfolio_results):
        text = render_markdown_report(small_portfolio_results)
        assert f"{len(small_portfolio_results)} ASes analyzed" in text

    def test_custom_title(self, small_portfolio_results):
        text = render_markdown_report(
            small_portfolio_results, title="Custom"
        )
        assert text.startswith("# Custom")

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_report({})

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.md"
        assert main(
            [
                "report",
                "--targets",
                "6",
                "--vps",
                "2",
                "-o",
                str(out_file),
            ]
        ) == 0
        assert "written to" in capsys.readouterr().out
        assert out_file.read_text().startswith("# AReST campaign report")
