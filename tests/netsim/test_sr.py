"""Tests for the SR-MPLS control plane: SIDs, SRGBs, label arithmetic."""

import pytest

from repro.netsim.sr import (
    SegmentRoutingDomain,
    SrConfigError,
    default_srgb,
    default_srlb,
)
from repro.netsim.topology import Network
from repro.netsim.vendors import LabelRange, VENDOR_PROFILES, Vendor


def build(n: int = 4, vendor: Vendor = Vendor.CISCO, **domain_kwargs):
    net = Network()
    routers = [
        net.add_router(f"r{i}", asn=1, vendor=vendor) for i in range(n)
    ]
    for a, b in zip(routers, routers[1:]):
        net.add_link(a, b)
    domain = SegmentRoutingDomain(net, asn=1, seed=3, **domain_kwargs)
    return net, routers, domain


class TestEnrolment:
    def test_enroll_assigns_unique_indexes(self):
        net, routers, domain = build()
        configs = [domain.enroll(r) for r in routers]
        indexes = [c.sid_index for c in configs]
        assert len(set(indexes)) == len(routers)

    def test_enroll_marks_router(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        assert routers[0].sr_enabled
        assert domain.is_enrolled(routers[0].router_id)

    def test_double_enroll_rejected(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        with pytest.raises(SrConfigError):
            domain.enroll(routers[0])

    def test_wrong_as_rejected(self):
        net, routers, domain = build()
        alien = net.add_router("alien", asn=2)
        with pytest.raises(SrConfigError):
            domain.enroll(alien)

    def test_explicit_index(self):
        net, routers, domain = build()
        config = domain.enroll(routers[0], sid_index=104)
        assert config.sid_index == 104
        assert domain.router_for_index(104) == routers[0].router_id

    def test_duplicate_index_rejected(self):
        net, routers, domain = build()
        domain.enroll(routers[0], sid_index=7)
        with pytest.raises(SrConfigError):
            domain.enroll(routers[1], sid_index=7)

    def test_default_srgb_from_vendor(self):
        net, routers, domain = build(vendor=Vendor.CISCO)
        config = domain.enroll(routers[0])
        assert config.srgb == VENDOR_PROFILES[Vendor.CISCO].default_srgb

    def test_custom_srgb(self):
        net, routers, domain = build()
        custom = LabelRange(400_000, 407_999)
        config = domain.enroll(routers[0], srgb=custom)
        assert config.srgb == custom

    def test_index_outside_srgb_rejected(self):
        net, routers, domain = build()
        tiny = LabelRange(16_000, 16_003)
        with pytest.raises(SrConfigError):
            domain.enroll(routers[0], srgb=tiny, sid_index=10)


class TestLabelArithmetic:
    def test_label_on_wire_uses_downstream_srgb(self):
        # Fig. 4 of the paper: the label is srgb_base(next hop) + index.
        net, routers, domain = build()
        domain.enroll(routers[0], srgb=LabelRange(16_000, 23_999), sid_index=5)
        domain.enroll(routers[1], srgb=LabelRange(13_000, 20_999), sid_index=7)
        assert domain.label_on_wire(routers[0].router_id, 7) == 16_007
        assert domain.label_on_wire(routers[1].router_id, 7) == 13_007

    def test_homogeneous_srgb_keeps_label(self):
        net, routers, domain = build()
        for r in routers:
            domain.enroll(r)
        index = domain.node_index(routers[-1].router_id)
        labels = {
            domain.label_on_wire(r.router_id, index) for r in routers
        }
        assert len(labels) == 1  # the CVR/CO signal

    def test_resolve_label(self):
        net, routers, domain = build()
        for r in routers:
            domain.enroll(r)
        target = routers[2].router_id
        index = domain.node_index(target)
        label = domain.label_on_wire(routers[0].router_id, index)
        assert domain.resolve_label(routers[0].router_id, label) == target

    def test_resolve_label_outside_srgb(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        assert domain.resolve_label(routers[0].router_id, 500_000) is None

    def test_resolve_on_unenrolled_router(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        assert domain.resolve_label(routers[1].router_id, 16_001) is None

    def test_srgbs_homogeneous_flag(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        domain.enroll(routers[1])
        assert domain.srgbs_homogeneous()
        domain.enroll(routers[2], srgb=LabelRange(13_000, 20_999))
        assert not domain.srgbs_homogeneous()


class TestAdjacencySids:
    def test_one_sid_per_adjacency(self):
        net, routers, domain = build()
        domain.enroll(routers[1])
        sid_a = domain.adjacency_sid(
            routers[1].router_id, routers[0].router_id
        )
        sid_b = domain.adjacency_sid(
            routers[1].router_id, routers[2].router_id
        )
        assert sid_a != sid_b

    def test_sid_stable(self):
        net, routers, domain = build()
        domain.enroll(routers[1])
        first = domain.adjacency_sid(routers[1].router_id, routers[0].router_id)
        again = domain.adjacency_sid(routers[1].router_id, routers[0].router_id)
        assert first == again

    def test_cisco_sids_from_srlb(self):
        net, routers, domain = build(vendor=Vendor.CISCO)
        domain.enroll(routers[1])
        sid = domain.adjacency_sid(routers[1].router_id, routers[0].router_id)
        assert sid in VENDOR_PROFILES[Vendor.CISCO].default_srlb

    def test_juniper_sids_from_dynamic_pool(self):
        # Sec. 2.3: Juniper has no SRLB; adjacency SIDs come from the
        # dynamic label pool.
        net, routers, domain = build(vendor=Vendor.JUNIPER)
        domain.enroll(routers[1])
        sid = domain.adjacency_sid(routers[1].router_id, routers[0].router_id)
        assert sid in VENDOR_PROFILES[Vendor.JUNIPER].dynamic_pool

    def test_adjacency_target_reverse_lookup(self):
        net, routers, domain = build()
        domain.enroll(routers[1])
        sid = domain.adjacency_sid(routers[1].router_id, routers[2].router_id)
        assert (
            domain.adjacency_target(routers[1].router_id, sid)
            == routers[2].router_id
        )
        assert domain.adjacency_target(routers[1].router_id, sid + 1) is None

    def test_no_adjacency_rejected(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        with pytest.raises(SrConfigError):
            domain.adjacency_sid(routers[0].router_id, routers[3].router_id)


class TestMappingServer:
    def test_entry_for_ldp_router(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        index = domain.add_mapping_server_entry(routers[3])
        assert domain.node_index(routers[3].router_id) == index
        assert domain.has_mapping_entry(routers[3].router_id)
        assert not domain.is_enrolled(routers[3].router_id)

    def test_entry_idempotent(self):
        net, routers, domain = build()
        first = domain.add_mapping_server_entry(routers[3])
        again = domain.add_mapping_server_entry(routers[3])
        assert first == again

    def test_entry_for_sr_router_rejected(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        with pytest.raises(SrConfigError):
            domain.add_mapping_server_entry(routers[0])

    def test_indexes_shared_namespace(self):
        net, routers, domain = build()
        domain.enroll(routers[0])
        index = domain.add_mapping_server_entry(routers[3])
        config = domain.enroll(routers[1])
        assert config.sid_index != index


class TestDefaults:
    def test_default_srgb_fallback(self):
        # vendors without a shipped default get the Cisco-compatible range
        assert default_srgb(Vendor.JUNIPER) == LabelRange(16_000, 23_999)
        assert default_srgb(Vendor.CISCO) == LabelRange(16_000, 23_999)
        assert default_srgb(Vendor.HUAWEI) == LabelRange(16_000, 47_999)

    def test_default_srlb(self):
        assert default_srlb(Vendor.JUNIPER) is None
        assert default_srlb(Vendor.CISCO) == LabelRange(15_000, 15_999)

    def test_php_flag(self):
        net, routers, domain = build(php=False)
        assert not domain.php
