"""Full campaign report generation (markdown).

Bundles every per-AS analysis into one self-describing document: the
deliverable a measurement team would circulate after a campaign run,
and the artifact ``arest report`` writes.
"""

from __future__ import annotations

import statistics
from collections import Counter
from typing import TYPE_CHECKING, Mapping

from repro.analysis.deployment import deployment_rows
from repro.analysis.fingerprint_stats import (
    fingerprint_share_rows,
    overall_method_split,
    vendor_heatmap,
    vendor_totals,
)
from repro.analysis.stack_stats import (
    aggregate_share_at_least,
    stack_size_rows,
)
from repro.analysis.tunnel_stats import tunnel_type_rows
from repro.analysis.validation import (
    headline_detection,
    validate_against_truth,
)
from repro.campaign.runner import AsCampaignResult
from repro.core.flags import Flag
from repro.core.interworking import InterworkingMode
from repro.probing.tunnels import TunnelType

if TYPE_CHECKING:  # avoid a hard runtime dependency on the obs package
    from repro.obs.summary import TelemetrySummary


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_markdown_report(
    results: Mapping[int, AsCampaignResult],
    title: str = "AReST campaign report",
    telemetry: "TelemetrySummary | None" = None,
) -> str:
    """One markdown document covering the whole campaign.

    ``telemetry`` (a :class:`~repro.obs.summary.TelemetrySummary`)
    appends a Performance section with per-stage wall-clock totals;
    without it the document is exactly the deterministic core.
    """
    if not results:
        raise ValueError("no campaign results to report on")
    sections = [f"# {title}", ""]
    sections += _headline_section(results)
    sections += _execution_section(results)
    sections += _flags_section(results)
    sections += _deployment_section(results)
    sections += _interworking_section(results)
    sections += _tunnels_section(results)
    sections += _fingerprint_section(results)
    sections += _vendor_breakdown_section(results)
    sections += _data_quality_section(results)
    sections += _validation_section(results)
    if telemetry is not None:
        from repro.obs.summary import performance_section

        sections += performance_section(telemetry)
    return "\n".join(sections) + "\n"


def _headline_section(results) -> list[str]:
    headline = headline_detection(results)
    traces = sum(r.analysis.traces_total for r in results.values())
    addresses = sum(
        len(r.dataset.distinct_addresses()) for r in results.values()
    )
    return [
        "## Headline",
        "",
        f"- {len(results)} ASes analyzed, {traces:,} traces, "
        f"{addresses:,} distinct addresses",
        f"- SR-MPLS detected in {headline.confirmed_detected}/"
        f"{headline.confirmed_total} confirmed ASes "
        f"({headline.confirmed_rate:.0%})",
        f"- evidence in {headline.unconfirmed_detected}/"
        f"{headline.unconfirmed_total} unconfirmed ASes "
        f"({headline.unconfirmed_rate:.0%}), "
        f"{headline.unconfirmed_lso_dominated} of them LSO-dominated",
        "",
    ]


def _execution_section(results) -> list[str]:
    """Execution-plane incidents: failures, quarantines, interrupts.

    Rendered only for a :class:`~repro.campaign.runner.CampaignReport`
    that actually recorded incidents, so reports over clean runs (or
    plain result dicts) are unchanged.
    """
    failures = getattr(results, "failures", {})
    quarantined = getattr(results, "quarantined", {})
    interrupted = getattr(results, "interrupted", False)
    if not failures and not quarantined and not interrupted:
        return []
    lines = ["## Execution incidents", ""]
    if interrupted:
        lines.append(
            "- **run interrupted** (SIGINT/SIGTERM): partial report; "
            "resume from the checkpoint to complete it"
        )
    for failure in failures.values():
        lines.append(
            f"- AS#{failure.as_id} failed during {failure.stage}: "
            f"{failure.error}"
        )
    for quarantine in quarantined.values():
        line = (
            f"- AS#{quarantine.as_id} quarantined ({quarantine.reason} "
            f"after {quarantine.attempts} attempts): {quarantine.detail}"
        )
        last_stage = getattr(quarantine, "last_stage", None)
        if last_stage:
            line += f"; last stage: {last_stage}"
        stage_seconds = getattr(quarantine, "stage_seconds", None)
        if stage_seconds:
            spent = ", ".join(
                f"{stage} {seconds:.1f}s"
                for stage, seconds in sorted(stage_seconds.items())
            )
            line += f" (time per stage: {spent})"
        lines.append(line)
    lines.append("")
    return lines


def _flags_section(results) -> list[str]:
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        counts = result.analysis.flag_counts()
        rows.append(
            [
                result.spec.label,
                result.spec.name,
                str(result.spec.confirmation),
                *(counts[f] for f in Flag),
            ]
        )
    return [
        "## Detection flags per AS (Fig. 8)",
        "",
        _md_table(
            ["AS", "Name", "Confirmed", *(f.name for f in Flag)], rows
        ),
        "",
    ]


def _deployment_section(results) -> list[str]:
    rows = [
        [
            f"AS#{r.as_id}",
            r.name,
            f"{r.share_hitting_sr:.2f}",
            f"{r.share_hitting_mpls:.2f}",
            r.sr_interfaces,
            r.mpls_interfaces,
            r.ip_interfaces,
        ]
        for r in deployment_rows(results)
    ]
    return [
        "## Deployment view (Fig. 10)",
        "",
        _md_table(
            ["AS", "Name", "hit-SR", "hit-MPLS", "SR if.", "MPLS if.",
             "IP if."],
            rows,
        ),
        "",
    ]


def _interworking_section(results) -> list[str]:
    modes: Counter = Counter()
    sr_sizes: list[int] = []
    ldp_sizes: list[int] = []
    for result in results.values():
        modes.update(result.analysis.interworking_modes)
        sr_sizes.extend(result.analysis.sr_cloud_sizes)
        ldp_sizes.extend(result.analysis.ldp_cloud_sizes)
    hybrid = sum(
        c
        for m, c in modes.items()
        if m not in (InterworkingMode.FULL_SR, InterworkingMode.FULL_LDP)
    )
    lines = [
        "## Interworking (Figs. 11-12)",
        "",
        f"- full-SR tunnels: {modes[InterworkingMode.FULL_SR]}, "
        f"hybrid: {hybrid}",
    ]
    if hybrid:
        for mode in (
            InterworkingMode.SR_TO_LDP,
            InterworkingMode.LDP_TO_SR,
            InterworkingMode.LDP_SR_LDP,
            InterworkingMode.SR_LDP_SR,
            InterworkingMode.OTHER,
        ):
            if modes[mode]:
                lines.append(
                    f"- {mode}: {modes[mode]} "
                    f"({modes[mode] / hybrid:.0%} of hybrids)"
                )
    if sr_sizes and ldp_sizes:
        lines.append(
            f"- cloud sizes: SR mean {statistics.mean(sr_sizes):.2f}, "
            f"LDP mean {statistics.mean(ldp_sizes):.2f}"
        )
    lines.append("")
    return lines


def _tunnels_section(results) -> list[str]:
    totals: Counter = Counter()
    for row in tunnel_type_rows(results):
        for tunnel_type, count in row.counts:
            totals[tunnel_type] += count
    total = sum(totals.values()) or 1
    stack_rows = stack_size_rows(results)
    return [
        "## Tunnel taxonomy (Fig. 13) and stack sizes (Fig. 9)",
        "",
        *(
            f"- {t.value}: {totals[t]} ({totals[t] / total:.0%})"
            for t in TunnelType
            if totals[t]
        ),
        f"- stacks >= 2: {aggregate_share_at_least(stack_rows, 'strong-sr', 2):.0%}"
        f" in strong-SR contexts vs "
        f"{aggregate_share_at_least(stack_rows, 'mpls-lso', 2):.0%} in "
        "MPLS/LSO contexts",
        "",
    ]


def _fingerprint_section(results) -> list[str]:
    rows = fingerprint_share_rows(results)
    ttl_share, snmp_share = overall_method_split(rows)
    totals = vendor_totals(vendor_heatmap(results))
    vendor_bits = ", ".join(
        f"{vendor.value}: {count}" for vendor, count in totals.most_common()
    )
    return [
        "## Fingerprinting (Figs. 14-15)",
        "",
        f"- method split among identified interfaces: TTL {ttl_share:.0%}, "
        f"SNMPv3 {snmp_share:.0%}",
        f"- SNMPv3 vendor totals: {vendor_bits or 'none'}",
        "",
    ]


def _vendor_breakdown_section(results) -> list[str]:
    """Per-vendor segment/flag tallies (Table 1 evidence applied).

    Computed from the columnar batch over the segments the campaign
    already detected; rendered only when any segment exists, so empty
    campaigns are unchanged.
    """
    from repro.analysis.vendor_breakdown import campaign_vendor_breakdown

    doc = campaign_vendor_breakdown(results)
    if not doc["vendors"]:
        return []
    rows = [
        [
            # vendor-class tokens contain "|", which would split the
            # markdown table cell
            vendor.replace("|", "\\|"),
            entry["distinct_segments"],
            entry["occurrences"],
            ", ".join(
                f"{flag} {count}" for flag, count in entry["flags"].items()
            ),
        ]
        for vendor, entry in doc["vendors"].items()
    ]
    return [
        "## Vendor breakdown (Table 1 evidence per segment)",
        "",
        _md_table(
            ["Vendor evidence", "Distinct segments", "Occurrences",
             "Flags"],
            rows,
        ),
        "",
        "- `range:` rows are label-range inference only (overlapping "
        "Table 1 ranges give a vendor class, not an identification)",
        "",
    ]


def _data_quality_section(results) -> list[str]:
    """Sanitizer outcome: anomalies and quarantines, per AS.

    Rendered only when the sanitizer found something, so reports over
    clean campaigns are unchanged.
    """
    rows = []
    kind_totals: Counter = Counter()
    for as_id in sorted(results):
        analysis = results[as_id].analysis
        if not analysis.anomalies and not analysis.traces_quarantined:
            continue
        counts = analysis.anomaly_counts()
        kind_totals.update(counts)
        rows.append(
            [
                f"AS#{as_id}",
                analysis.traces_total,
                analysis.traces_analyzed,
                analysis.traces_quarantined,
                len(analysis.anomalies),
                sum(1 for a in analysis.anomalies if a.repaired),
            ]
        )
    if not rows:
        return []
    kinds = ", ".join(
        f"{kind}: {count}" for kind, count in kind_totals.most_common()
    )
    return [
        "## Data quality (sanitization & quarantine)",
        "",
        _md_table(
            ["AS", "Collected", "Analyzed", "Quarantined", "Anomalies",
             "Repaired"],
            rows,
        ),
        "",
        f"- anomaly kinds: {kinds}",
        "",
    ]


def _validation_section(results) -> list[str]:
    rows = []
    for as_id in sorted(results):
        report = validate_against_truth(results[as_id])
        total = report.total_segments()
        if total == 0:
            continue
        fps = sum(v.false_positives for v in report.per_flag.values())
        rows.append(
            [
                f"AS#{as_id}",
                total,
                fps,
                f"{report.interface_precision:.2f}",
                f"{report.interface_recall:.2f}",
            ]
        )
    return [
        "## Ground-truth validation (Table 3 generalized)",
        "",
        _md_table(
            ["AS", "Distinct segments", "Seg. FPs", "If. precision",
             "If. recall"],
            rows,
        ),
        "",
    ]
