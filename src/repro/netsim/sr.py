"""SR-MPLS control plane (RFC 8402 / RFC 8660).

Models, per autonomous system, a converged Segment Routing domain:

- every SR-enabled router carries an **SRGB** (Segment Routing Global
  Block) -- by default the vendor's range from Table 1, optionally a
  custom operator-chosen one (the paper's survey: ~70% keep the default);
- **node SIDs** are indexes into the SRGB; the on-wire label between a
  router and its next hop ``N`` is ``srgb_base(N) + index`` (Sec. 2.3 and
  Fig. 4 of the paper), which is why identical labels persist across hops
  when SRGBs are homogeneous -- the signal behind the CVR/CO flags;
- **adjacency SIDs** are local labels allocated from the SRLB (Cisco,
  Huawei, Arista) or the dynamic pool (Juniper);
- a **mapping server** (RFC 8661) may advertise prefix-SID indexes on
  behalf of LDP-only routers, enabling SR-to-LDP interworking.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.netsim.topology import Network, Router
from repro.netsim.vendors import LabelRange, Vendor, VENDOR_PROFILES

_FALLBACK_SRGB = LabelRange(16_000, 23_999)
_FALLBACK_SRLB = LabelRange(15_000, 15_999)


class SrConfigError(Exception):
    """Raised on inconsistent Segment Routing configuration."""


def default_srgb(vendor: Vendor) -> LabelRange:
    """The SRGB a router uses out of the box.

    Vendors without a shipped default (Juniper, Nokia, ...) are modelled
    as configured with the Cisco-compatible range, the common operator
    practice in multi-vendor domains per RFC 8402's recommendation of a
    consistent SRGB.
    """
    profile = VENDOR_PROFILES.get(vendor)
    if profile is not None and profile.default_srgb is not None:
        return profile.default_srgb
    return _FALLBACK_SRGB


def default_srlb(vendor: Vendor) -> LabelRange | None:
    """The SRLB a router uses out of the box; ``None`` means adjacency
    SIDs come from the dynamic pool (Juniper behaviour, Sec. 2.3)."""
    profile = VENDOR_PROFILES.get(vendor)
    if profile is None:
        return _FALLBACK_SRLB
    return profile.default_srlb


@dataclass(slots=True)
class SrNodeConfig:
    """Per-router Segment Routing configuration."""

    router_id: int
    srgb: LabelRange
    srlb: LabelRange | None
    sid_index: int


@dataclass(slots=True)
class _AdjacencyAllocation:
    cursor: int = 0
    sids: dict[int, int] = field(default_factory=dict)  # neighbour -> label


class SegmentRoutingDomain:
    """One AS's converged SR-MPLS control plane.

    The domain assigns node-SID indexes (unique per domain), resolves
    label values per-next-hop SRGB, allocates adjacency SIDs, and hosts
    the optional mapping server entries for LDP-only routers.
    """

    def __init__(
        self,
        network: Network,
        asn: int,
        seed: int = 0,
        php: bool = True,
        explicit_null: bool = False,
    ) -> None:
        self._network = network
        self._asn = asn
        self._seed = seed
        #: penultimate-hop popping for node SIDs; False = UHP, the stack
        #: stays intact until the segment endpoint (unshrinking stacks)
        self.php = php
        #: signal explicit-null instead of popping: the penultimate hop
        #: swaps the node SID to label 0 so the endpoint still sees an
        #: MPLS header (QoS marking survives); implies no PHP strip
        self.explicit_null = explicit_null
        self._configs: dict[int, SrNodeConfig] = {}
        #: sid index -> router id (SR routers and mapping-server entries)
        self._index_to_router: dict[int, int] = {}
        self._mapping_server: dict[int, int] = {}  # router id -> index
        self._adjacency: dict[int, _AdjacencyAllocation] = {}
        self._next_index = 1

    @property
    def asn(self) -> int:
        """The AS this domain serves."""
        return self._asn

    # -- enrolment ------------------------------------------------------------

    def enroll(
        self,
        router: Router | int,
        srgb: LabelRange | None = None,
        srlb: LabelRange | None = None,
        sid_index: int | None = None,
    ) -> SrNodeConfig:
        """Enable SR on a router, assigning its node-SID index.

        Defaults follow the router's vendor profile.  Explicit ``srgb``
        models the ~30% of operators who customize the range (Sec. 3).
        """
        rid = router.router_id if isinstance(router, Router) else router
        box = self._network.router(rid)
        if box.asn != self._asn:
            raise SrConfigError(
                f"router {box.name} is in AS{box.asn}, not AS{self._asn}"
            )
        if rid in self._configs:
            raise SrConfigError(f"router {box.name} already SR-enrolled")
        if sid_index is None:
            sid_index = self._next_index
        if sid_index in self._index_to_router:
            raise SrConfigError(f"SID index {sid_index} already in use")
        self._next_index = max(self._next_index, sid_index) + 1
        config = SrNodeConfig(
            router_id=rid,
            srgb=srgb if srgb is not None else default_srgb(box.vendor),
            srlb=srlb if srlb is not None else default_srlb(box.vendor),
            sid_index=sid_index,
        )
        if config.sid_index >= config.srgb.size():
            raise SrConfigError(
                f"SID index {config.sid_index} outside SRGB {config.srgb}"
            )
        self._configs[rid] = config
        self._index_to_router[sid_index] = rid
        box.sr_enabled = True
        return config

    def add_mapping_server_entry(
        self, router: Router | int, sid_index: int | None = None
    ) -> int:
        """Advertise a prefix-SID index on behalf of an LDP-only router.

        This is the RFC 8661 Mapping Server: SR routers learn to reach
        the (non-SR) router through a globally significant index, which
        enables SR-over-the-first-part interworking tunnels (Sec. 7.2).
        """
        rid = router.router_id if isinstance(router, Router) else router
        box = self._network.router(rid)
        if rid in self._configs:
            raise SrConfigError(
                f"{box.name} is SR-enabled; mapping entries are for "
                "LDP-only routers"
            )
        if rid in self._mapping_server:
            return self._mapping_server[rid]
        if sid_index is None:
            sid_index = self._next_index
        if sid_index in self._index_to_router:
            raise SrConfigError(f"SID index {sid_index} already in use")
        self._next_index = max(self._next_index, sid_index) + 1
        self._mapping_server[rid] = sid_index
        self._index_to_router[sid_index] = rid
        return sid_index

    def promote_mapping_entry(
        self,
        router: Router | int,
        srgb: LabelRange | None = None,
        srlb: LabelRange | None = None,
    ) -> SrNodeConfig:
        """Migrate a mapping-served LDP router to native SR enrolment.

        One step of an SR migration wave: the LDP island shrinks by one
        router and the RFC 8661 mapping-server boundary moves.  The
        router keeps the prefix-SID index the mapping server advertised
        on its behalf, so label arithmetic across the domain is
        unchanged -- exactly how operators stage migrations without
        renumbering.
        """
        rid = router.router_id if isinstance(router, Router) else router
        if rid not in self._mapping_server:
            raise SrConfigError(
                f"router #{rid} has no mapping-server entry to promote"
            )
        index = self._mapping_server.pop(rid)
        del self._index_to_router[index]
        next_index = self._next_index
        try:
            config = self.enroll(rid, srgb=srgb, srlb=srlb, sid_index=index)
        except SrConfigError:
            self._mapping_server[rid] = index
            self._index_to_router[index] = rid
            raise
        # The index was reused, not newly allocated: keep the cursor.
        self._next_index = next_index
        return config

    def demote_to_mapping_entry(self, router: Router | int) -> int:
        """Reverse of :meth:`promote_mapping_entry`.

        Retires the router's native SR configuration and restores its
        mapping-server entry under the same index (the churn scheduler
        uses this to quiesce a network back to its nominal state).
        """
        rid = router.router_id if isinstance(router, Router) else router
        config = self._configs.pop(rid, None)
        if config is None:
            raise SrConfigError(f"router #{rid} not SR-enrolled")
        del self._index_to_router[config.sid_index]
        self._mapping_server[rid] = config.sid_index
        self._index_to_router[config.sid_index] = rid
        self._adjacency.pop(rid, None)
        self._network.router(rid).sr_enabled = False
        return config.sid_index

    # -- queries ---------------------------------------------------------------

    def is_enrolled(self, router_id: int) -> bool:
        """True when the router carries SR configuration here."""
        return router_id in self._configs

    def config(self, router_id: int) -> SrNodeConfig:
        """The router's SR configuration (raises if not enrolled)."""
        try:
            return self._configs[router_id]
        except KeyError:
            raise SrConfigError(f"router #{router_id} not SR-enrolled") from None

    def enrolled_routers(self) -> list[int]:
        """Router ids of every SR member, sorted."""
        return sorted(self._configs)

    def node_index(self, router_id: int) -> int | None:
        """Node-SID index of a router (SR or mapping-server), or None."""
        config = self._configs.get(router_id)
        if config is not None:
            return config.sid_index
        return self._mapping_server.get(router_id)

    def router_for_index(self, sid_index: int) -> int | None:
        """The router a SID index belongs to, or None."""
        return self._index_to_router.get(sid_index)

    def has_mapping_entry(self, router_id: int) -> bool:
        """True when the mapping server covers this router."""
        return router_id in self._mapping_server

    # -- label arithmetic -------------------------------------------------------

    def label_on_wire(self, next_hop: int, sid_index: int) -> int:
        """Label value carried toward ``next_hop`` for a node SID.

        RFC 8660: the upstream router maps the SID index into the
        *downstream* neighbour's SRGB (Fig. 4 of the paper).
        """
        config = self.config(next_hop)
        label = config.srgb.low + sid_index
        if label not in config.srgb:
            raise SrConfigError(
                f"index {sid_index} does not fit SRGB {config.srgb} "
                f"of router #{next_hop}"
            )
        return label

    def resolve_label(self, at_router: int, label: int) -> int | None:
        """Which router does ``label`` steer toward, from the point of
        view of ``at_router``?  Returns the target router id if the label
        falls inside ``at_router``'s SRGB and maps to a known index."""
        config = self._configs.get(at_router)
        if config is None or label not in config.srgb:
            return None
        return self._index_to_router.get(label - config.srgb.low)

    # -- adjacency SIDs ----------------------------------------------------------

    def adjacency_sid(self, router_id: int, neighbor_id: int) -> int:
        """Adjacency SID of ``router_id`` for its link to ``neighbor_id``.

        Allocated lazily, one per IGP adjacency (Sec. 2.3), from the SRLB
        when the vendor has one, otherwise from the dynamic pool at a
        router-specific pseudo-random offset (Juniper behaviour).
        """
        config = self.config(router_id)
        if neighbor_id not in self._network.neighbors(router_id):
            raise SrConfigError(
                f"#{router_id} has no adjacency to #{neighbor_id}"
            )
        allocation = self._adjacency.setdefault(router_id, _AdjacencyAllocation())
        sid = allocation.sids.get(neighbor_id)
        if sid is not None:
            return sid
        pool = config.srlb
        if pool is None:
            vendor = self._network.router(router_id).vendor
            profile = VENDOR_PROFILES.get(vendor)
            pool = profile.dynamic_pool if profile else LabelRange(24_000, 1_048_575)
            base_offset = int.from_bytes(
                hashlib.sha256(
                    f"adj:{self._seed}:{router_id}".encode("ascii")
                ).digest()[:8],
                "big",
            ) % max(1, pool.size() - 1024)
        else:
            base_offset = 0
        sid = pool.low + base_offset + allocation.cursor
        if sid not in pool:
            raise SrConfigError(
                f"SRLB {pool} exhausted on router #{router_id}"
            )
        allocation.cursor += 1
        allocation.sids[neighbor_id] = sid
        return sid

    def adjacency_target(self, router_id: int, label: int) -> int | None:
        """Neighbour reached by ``label`` if it is one of ``router_id``'s
        adjacency SIDs, else None."""
        allocation = self._adjacency.get(router_id)
        if allocation is None:
            return None
        for neighbor, sid in allocation.sids.items():
            if sid == label:
                return neighbor
        return None

    # -- domain-wide facts ---------------------------------------------------------

    def srgbs_homogeneous(self) -> bool:
        """True when every enrolled router shares one SRGB (the RFC 8402
        recommendation; heterogeneity forces per-hop label re-mapping and
        is what AReST's suffix matching compensates for)."""
        ranges = {
            (c.srgb.low, c.srgb.high) for c in self._configs.values()
        }
        return len(ranges) <= 1
