"""Generative precision guarantee.

Hypothesis drives random deployment scenarios through the full stack
(topology build, control planes, probing, fingerprinting, detection,
validation) and asserts the paper's central claim on every one of them:
**strong flags never fire on traditional MPLS**.  This generalizes the
portfolio-level zero-FP check to deployment configurations no human
picked.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.analysis.validation import validate_against_truth
from repro.campaign import CampaignRunner
from repro.core.flags import STRONG_FLAGS
from repro.topogen.deployment import DeploymentScenario
from repro.topogen.portfolio import Portfolio, default_portfolio
from repro.netsim.vendors import Vendor

scenario_strategy = st.builds(
    DeploymentScenario,
    deploys_sr=st.just(True),
    mpls=st.just(True),
    sr_share=st.sampled_from([0.0, 0.6, 0.8, 1.0]),
    propagate_share=st.sampled_from([0.0, 0.5, 1.0]),
    rfc4950_share=st.sampled_from([0.0, 1.0]),
    vendor_weights=st.sampled_from(
        [
            ((Vendor.CISCO, 1.0),),
            ((Vendor.JUNIPER, 0.5), (Vendor.CISCO, 0.5)),
            ((Vendor.ARISTA, 0.4), (Vendor.NOKIA, 0.6)),
        ]
    ),
    snmp_share=st.sampled_from([0.0, 0.5, 1.0]),
    ping_share=st.sampled_from([0.0, 1.0]),
    te_share=st.sampled_from([0.0, 0.5]),
    service_share=st.sampled_from([0.0, 0.7]),
    sr_policy_share=st.sampled_from([0.0, 0.5]),
    entropy_share=st.sampled_from([0.0, 0.5]),
    rsvp_te_share=st.sampled_from([0.0, 0.5]),
    n_core=st.sampled_from([4, 8]),
    n_edge=st.just(2),
    n_border=st.just(2),
    n_customers=st.just(1),
    uhp=st.booleans(),
    heterogeneous_srgb=st.booleans(),
)


def _fix(scenario: DeploymentScenario) -> DeploymentScenario:
    # deploys_sr requires a positive share to mean anything; normalize
    if scenario.sr_share == 0.0:
        return replace(
            scenario, deploys_sr=False, sr_policy_share=0.0, uhp=False,
            heterogeneous_srgb=False,
        )
    return scenario


@settings(max_examples=25, deadline=None)
@given(scenario=scenario_strategy, seed=st.integers(min_value=0, max_value=20))
def test_no_strong_flag_false_positives_ever(scenario, seed):
    scenario = _fix(scenario)
    base = default_portfolio()
    spec = replace(base.spec(28), scenario=scenario)
    portfolio = Portfolio(
        tuple(spec if s.as_id == 28 else s for s in base)
    )
    runner = CampaignRunner(
        portfolio=portfolio,
        seed=seed,
        vps_per_as=2,
        targets_per_as=8,
    )
    result = runner.run_as(28)
    report = validate_against_truth(result)
    for flag in STRONG_FLAGS:
        assert report.per_flag[flag].false_positives == 0, flag
    # and recall sanity: whatever was flagged SR at interface level is SR
    assert report.interface_fp == 0
