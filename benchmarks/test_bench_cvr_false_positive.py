"""Sec. 4.1 -- the CVR false-positive probability, analytically and by
Monte-Carlo against the actual LDP allocator.

The paper argues that k consecutive LSRs independently choosing the
same label happens with probability 1/N^(k-1) (N ~ 1e6 for Cisco), so
CVR earns five stars.  The benchmark verifies the simulator's LDP
allocator lives up to that: across many FECs, consecutive routers
essentially never bind the same label.
"""

import pytest

from repro.core.flags import cvr_false_positive_probability
from repro.netsim.addressing import IPv4Prefix
from repro.netsim.ldp import LdpState
from repro.netsim.topology import Network
from repro.netsim.vendors import Vendor
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_cvr_false_positive(benchmark):
    rows = [
        (k, f"{cvr_false_positive_probability(k):.3e}")
        for k in range(2, 7)
    ]
    emit(
        format_table(
            ["consecutive hops k", "P(coincidence)"],
            rows,
            title="Sec. 4.1 -- CVR false-positive model (Cisco pool)",
        )
    )
    assert cvr_false_positive_probability(2) < 1e-5

    # Monte-Carlo over the real allocator: 2 routers, many FECs.
    net = Network()
    a = net.add_router("a", 1, vendor=Vendor.CISCO, ldp_enabled=True)
    b = net.add_router("b", 1, vendor=Vendor.CISCO, ldp_enabled=True)
    egress = net.add_router("e", 1, vendor=Vendor.CISCO, ldp_enabled=True)

    def collisions() -> int:
        ldp = LdpState(net, seed=17)
        count = 0
        for i in range(2_000):
            prefix = IPv4Prefix.from_string(
                f"{10 + (i >> 16)}.{(i >> 8) & 0xFF}.{i & 0xFF}.0/24"
            )
            fec = ldp.register_fec(prefix, egress.router_id)
            if ldp.binding(a.router_id, fec) == ldp.binding(
                b.router_id, fec
            ):
                count += 1
        return count

    observed = benchmark.pedantic(collisions, rounds=1, iterations=1)
    emit(f"observed collisions over 2,000 FECs: {observed}")
    # With N ~ 1e6, the expected count over 2,000 trials is ~0.002.
    assert observed <= 1
