"""Wire codec: total decoding, header skipping, canonical JSON."""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.service.wire import (
    REASON_BAD_JSON,
    REASON_BAD_TRACE,
    REASON_NOT_A_TRACE,
    WireRejection,
    canonical_json,
    decode_body,
    decode_trace_line,
    trace_to_json,
)
from tests.conftest import scaled_examples
from tests.service.conftest import corpus


def _line(trace) -> str:
    return json.dumps(trace_to_json(trace))


class TestDecodeTraceLine:
    def test_round_trip(self):
        for trace in corpus():
            assert decode_trace_line(_line(trace)) == trace

    def test_header_lines_are_skipped_not_rejected(self):
        line = json.dumps({"kind": "header", "target_asn": 65001})
        assert decode_trace_line(line) is None

    def test_bad_json(self):
        outcome = decode_trace_line("{not json", lineno=7)
        assert isinstance(outcome, WireRejection)
        assert outcome.reason == REASON_BAD_JSON
        assert outcome.lineno == 7

    def test_non_object(self):
        outcome = decode_trace_line("[1, 2, 3]")
        assert isinstance(outcome, WireRejection)
        assert outcome.reason == REASON_NOT_A_TRACE

    def test_wrong_kind(self):
        outcome = decode_trace_line(json.dumps({"kind": "checkpoint"}))
        assert isinstance(outcome, WireRejection)
        assert outcome.reason == REASON_NOT_A_TRACE

    def test_trace_kind_with_broken_fields(self):
        outcome = decode_trace_line(json.dumps({"kind": "trace"}))
        assert isinstance(outcome, WireRejection)
        assert outcome.reason == REASON_BAD_TRACE

    @settings(max_examples=scaled_examples(50))
    @given(st.text(max_size=80))
    def test_decoding_is_total(self, text):
        # any input lands in a bucket; nothing raises
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.strip():
                decode_trace_line(line, lineno)
        decode_body(text)


class TestDecodeBody:
    def test_batch_with_every_bucket(self):
        traces = corpus(3)
        body = "\n".join(
            [
                json.dumps({"kind": "header", "target_asn": 65001}),
                _line(traces[0]),
                "",
                "garbage",
                _line(traces[1]),
                json.dumps({"kind": "trace"}),
                _line(traces[2]),
            ]
        )
        decoded = decode_body(body)
        assert decoded.traces == traces
        assert decoded.skipped_headers == 1
        assert [r.reason for r in decoded.rejections] == [
            REASON_BAD_JSON,
            REASON_BAD_TRACE,
        ]
        # linenos point at the offending body lines
        assert [r.lineno for r in decoded.rejections] == [4, 6]

    def test_single_object_is_a_one_line_batch(self):
        trace = corpus(1)[0]
        decoded = decode_body(_line(trace))
        assert decoded.traces == [trace]
        assert not decoded.rejections


class TestCanonicalJson:
    def test_sorted_tight_newline_terminated(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}\n'

    def test_key_order_never_leaks(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )
