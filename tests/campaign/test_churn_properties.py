"""Properties: churn determinism and the disabled-churn identity.

Two contracts gate the dynamics engine into the campaign layer:

- **off means off**: a runner handed ``ChurnPlan.none()`` (or no plan
  at all -- the default) must produce report JSON and checkpoint bytes
  identical to a churn-free runner's.  Churn is strictly opt-in; the
  default path keeps the exact bytes it had before dynamics existed.
- **on means deterministic**: with a fixed seed and an active plan, the
  report and checkpoint must be byte-identical whatever the ``jobs``
  setting, and a run resumed from a partial checkpoint must land on the
  same bytes as an uninterrupted one.  The churn schedule ticks on the
  virtual probe clock, so execution-plane choices cannot skew it.
"""

import json
import multiprocessing
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignRunner
from repro.netsim.dynamics import ChurnPlan

from tests.conftest import scaled_examples

_AS_POOL = (7, 27, 46, 59)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for the supervised pool",
)

_KNOBS = dict(vps_per_as=1, targets_per_as=4)


def _run(as_ids, seed, jobs=1, churn_plan=None, **kwargs) -> tuple[str, bytes]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.ckpt"
        runner = CampaignRunner(seed=seed, churn_plan=churn_plan, **_KNOBS)
        report = runner.run_portfolio(
            as_ids=as_ids, checkpoint=path, jobs=jobs, timeout_per_as=120
        )
        return (
            json.dumps(report.as_dict(), sort_keys=True),
            path.read_bytes(),
        )


_reference_cache: dict[tuple, tuple[str, bytes]] = {}


def _reference(as_ids, seed, churn_plan=None) -> tuple[str, bytes]:
    key = (tuple(as_ids), seed, churn_plan)
    if key not in _reference_cache:
        _reference_cache[key] = _run(as_ids, seed, churn_plan=churn_plan)
    return _reference_cache[key]


@settings(max_examples=scaled_examples(4), deadline=None)
@given(
    as_ids=st.lists(
        st.sampled_from(_AS_POOL), min_size=1, max_size=3, unique=True
    ),
    seed=st.sampled_from((1, 3)),
)
def test_none_plan_is_byte_identical_to_default(as_ids, seed):
    """``ChurnPlan.none()`` must be indistinguishable -- report bytes,
    checkpoint bytes, config signature -- from passing no plan."""
    default_report, default_bytes = _reference(as_ids, seed)
    none_report, none_bytes = _run(
        as_ids, seed, churn_plan=ChurnPlan.none()
    )
    assert none_report == default_report
    assert none_bytes == default_bytes


def test_none_plan_keeps_config_signature():
    """An inactive plan must not perturb the checkpoint signature, so
    churn-free checkpoints stay resumable across the feature boundary."""
    plain = CampaignRunner(seed=1, **_KNOBS)._config_signature()
    with_none = CampaignRunner(
        seed=1, churn_plan=ChurnPlan.none(), **_KNOBS
    )._config_signature()
    assert with_none == plain
    assert "churn_plan" not in plain
    active = CampaignRunner(
        seed=1, churn_plan=ChurnPlan.intensity(0.3, seed=1), **_KNOBS
    )._config_signature()
    assert "churn_plan" in active


@settings(max_examples=scaled_examples(3), deadline=None)
@given(
    as_ids=st.lists(
        st.sampled_from(_AS_POOL), min_size=2, max_size=3, unique=True
    ),
    seed=st.sampled_from((1, 3)),
    jobs=st.sampled_from((2, 4)),
)
def test_churn_is_deterministic_across_jobs(as_ids, seed, jobs):
    """Fixed seed, active churn: the parallel run's report and
    checkpoint must match the serial run byte for byte."""
    plan = ChurnPlan.intensity(0.5, seed=seed)
    serial_report, serial_bytes = _reference(as_ids, seed, churn_plan=plan)
    parallel_report, parallel_bytes = _run(
        as_ids, seed, jobs=jobs, churn_plan=plan
    )
    assert parallel_report == serial_report
    assert parallel_bytes == serial_bytes


def test_churn_changes_results(tmp_path):
    """Sanity that the knob is live: an aggressive plan must actually
    move the report relative to the static baseline."""
    static_report, _ = _reference([46], 1)
    churned_report, _ = _run(
        [46], 1, churn_plan=ChurnPlan.intensity(0.8, seed=1)
    )
    assert churned_report != static_report


def test_churn_resume_matches_uninterrupted(tmp_path):
    """A churned portfolio finished in two sittings must land on the
    same bytes as one uninterrupted run."""
    as_ids = [7, 27, 46]
    plan = ChurnPlan.intensity(0.5, seed=1)
    reference_report, reference_bytes = _reference(
        as_ids, 1, churn_plan=plan
    )

    path = tmp_path / "campaign.ckpt"
    first = CampaignRunner(seed=1, churn_plan=plan, **_KNOBS)
    first.run_portfolio(as_ids=as_ids[:2], checkpoint=path)
    resumed = CampaignRunner(seed=1, churn_plan=plan, **_KNOBS)
    report = resumed.run_portfolio(
        as_ids=as_ids, checkpoint=path, resume=True
    )
    assert sorted(report.resumed_as_ids) == sorted(as_ids[:2])
    assert json.dumps(report.as_dict(), sort_keys=True) == reference_report
    assert path.read_bytes() == reference_bytes
