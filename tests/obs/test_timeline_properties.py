"""Property tests for timeline reconstruction invariants.

The tracing acceptance criteria are structural: whatever mix of
processes, clocks, nesting depths and batch interleavings produced the
event stream, the reconstructed timeline must satisfy

- child-within-parent interval nesting (after skew normalization);
- no orphan parent references in the trace-event JSON export;
- a well-formed (round-trippable) trace-event document.

Hypothesis drives randomized "campaigns": a supervisor plus N worker
recorders, each with its own monotonic clock zero and its own wall
anchor, each recording a random span tree, with batches interleaved in
arbitrary completion order -- exactly the degrees of freedom a real
serial / ``--jobs N`` / killed-and-resumed run exercises (the
end-to-end variants of those runs live in
``tests/campaign/test_observability.py``).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    TraceContext,
    timeline_from_records,
    trace_event_json,
)

from tests.conftest import scaled_examples
from tests.obs.test_telemetry import FakeClock

#: one worker's random recording plan: (clock zero, wall anchor offset,
#: span tree as a nesting-depth walk)
worker_plans = st.lists(
    st.tuples(
        st.floats(-1e6, 1e6, allow_nan=False),  # monotonic clock zero
        st.floats(0.0, 3600.0, allow_nan=False),  # wall start offset
        st.lists(st.integers(0, 2), min_size=1, max_size=8),  # walk
    ),
    min_size=1,
    max_size=5,
)


def _record_worker(scope, ctx, clock_zero, walk):
    """Drive one recorder through a random open/close span walk."""
    clock = FakeClock(tick=0.125)
    clock.now = clock_zero
    tel = Telemetry(clock=clock, trace=ctx)
    open_spans = []
    for step in walk:
        if step and len(open_spans) < 4:
            cm = tel.span(f"stage{len(open_spans)}")
            cm.__enter__()
            open_spans.append(cm)
        elif open_spans:
            open_spans.pop().__exit__(None, None, None)
    while open_spans:
        open_spans.pop().__exit__(None, None, None)
    return tel


def _batches(plans):
    """Interleave worker exports into one plausible event stream."""
    ctx = TraceContext.new()
    records = [
        {"kind": "anchor", "scope": "portfolio", "unix": 0.0, "clock": 0.0},
        {
            "kind": "span", "scope": "portfolio", "stage": "portfolio",
            "path": "portfolio", "seconds": 1e9, "start": 0.0,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_span_id": None,
        },
    ]
    for index, (clock_zero, wall_offset, walk) in enumerate(plans):
        tel = _record_worker(index, ctx, clock_zero, walk)
        export = tel.export()
        anchor = dict(export["anchor"])
        # each process claims its own wall-clock story for its batch
        anchor["unix"] = wall_offset
        records.append({"kind": "anchor", "scope": index, **anchor})
        for span in export["spans"]:
            records.append({"kind": "span", "scope": index, **span})
    return ctx, records


@given(plans=worker_plans)
@settings(max_examples=scaled_examples(50), deadline=None)
def test_children_always_nest_within_parents(plans):
    _, records = _batches(plans)
    timeline = timeline_from_records(records)
    by_id = {span.span_id: span for span in timeline.spans}
    for parent_id, kids in timeline.children.items():
        parent = by_id[parent_id]
        for child in kids:
            assert parent.start <= child.start <= child.end <= parent.end


@given(plans=worker_plans)
@settings(max_examples=scaled_examples(50), deadline=None)
def test_trace_event_json_is_well_formed_with_no_orphans(plans):
    _, records = _batches(plans)
    doc = trace_event_json(timeline_from_records(records))
    parsed = json.loads(json.dumps(doc))
    assert set(parsed) == {"traceEvents", "displayTimeUnit"}
    span_ids = set()
    for event in parsed["traceEvents"]:
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            span_ids.add(event["args"]["span_id"])
    for event in parsed["traceEvents"]:
        if event["ph"] != "X":
            continue
        parent = event["args"].get("parent_span_id")
        assert parent is None or parent in span_ids


@given(plans=worker_plans)
@settings(max_examples=scaled_examples(50), deadline=None)
def test_every_span_carries_the_campaign_trace_id(plans):
    ctx, records = _batches(plans)
    timeline = timeline_from_records(records)
    assert timeline.trace_ids == {ctx.trace_id}
    for span in timeline.spans:
        assert span.trace_id == ctx.trace_id
