"""RSVP-TE signaled label-switched paths (RFC 3209).

The paper's footnote 2: "Labels might also be distributed with RSVP-TE
for traffic engineering purposes."  Unlike LDP (labels follow the IGP)
or SR (the source encodes the path in the stack), RSVP-TE *signals* an
explicitly routed LSP hop by hop: every transit LSR reserves state and
hands its upstream neighbour a label from its local pool.

For AReST the observable signature is classic-MPLS-like -- one label
per hop, all different -- but the *path* may deviate from the IGP
shortest path, and no signaling artefact betrays SR.  RSVP-TE tunnels
are therefore pure negatives for every AReST flag: the simulator uses
them to stress the detector with traffic-engineered-but-not-SR paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.netsim.topology import Network
from repro.netsim.vendors import LabelRange, VENDOR_PROFILES

_FALLBACK_POOL = LabelRange(16, 1_048_575)


@dataclass(frozen=True, slots=True)
class RsvpLsp:
    """One signaled LSP: an explicit route and per-hop labels.

    ``labels[i]`` is the label *advertised by* ``path[i]`` -- the value
    the packet carries on the wire while travelling toward ``path[i]``.
    The head-end (``path[0]``) advertises no label; the tail end uses
    implicit-null semantics (its predecessor pops, PHP).
    """

    lsp_id: int
    path: tuple[int, ...]
    labels: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("an LSP needs a head and a tail")
        if len(self.labels) != len(self.path):
            raise ValueError("one label slot per hop required")
        if len(set(self.path)) != len(self.path):
            raise ValueError("explicit routes must be loop-free")

    @property
    def head(self) -> int:
        """The LSP's head-end router."""
        return self.path[0]

    @property
    def tail(self) -> int:
        """The LSP's tail-end router."""
        return self.path[-1]

    def position_of(self, router_id: int) -> int | None:
        """The router's index on the explicit route, or None."""
        try:
            return self.path.index(router_id)
        except ValueError:
            return None


class RsvpTeState:
    """Converged RSVP-TE state: signaled LSPs and per-router label maps."""

    def __init__(self, network: Network, seed: int = 0) -> None:
        self._network = network
        self._seed = seed
        self._lsps: list[RsvpLsp] = []
        #: (router, in-label) -> (lsp, position of router on the path)
        self._label_map: dict[tuple[int, int], tuple[RsvpLsp, int]] = {}
        self._cursors: dict[int, int] = {}

    def signal_lsp(self, path: list[int]) -> RsvpLsp:
        """Signal an explicitly routed LSP along ``path``.

        Every consecutive pair must share a link (the PATH message walks
        real adjacencies); transit hops and the tail allocate labels, the
        tail's slot stays None (PHP: the penultimate hop pops).
        """
        for a, b in zip(path, path[1:]):
            if self._network.link_between(a, b) is None:
                raise ValueError(
                    f"explicit route hop #{a} -> #{b} is not a link"
                )
        labels: list[int | None] = [None]
        for position, router_id in enumerate(path[1:-1], start=1):
            labels.append(self._allocate(router_id))
        labels.append(None)  # PHP at the tail
        lsp = RsvpLsp(
            lsp_id=len(self._lsps) + 1,
            path=tuple(path),
            labels=tuple(labels),
        )
        self._lsps.append(lsp)
        for position, (router_id, label) in enumerate(
            zip(lsp.path, lsp.labels)
        ):
            if label is not None:
                self._label_map[(router_id, label)] = (lsp, position)
        return lsp

    def _allocate(self, router_id: int) -> int:
        vendor = self._network.router(router_id).vendor
        profile = VENDOR_PROFILES.get(vendor)
        pool = profile.dynamic_pool if profile else _FALLBACK_POOL
        spread = min(pool.size(), 40_000)
        base = (
            int.from_bytes(
                hashlib.sha256(
                    f"rsvp:{self._seed}:{router_id}".encode()
                ).digest()[:6],
                "big",
            )
            % spread
        )
        cursor = self._cursors.get(router_id, 0)
        while True:
            label = pool.low + (base + cursor) % pool.size()
            cursor += 1
            if (router_id, label) not in self._label_map:
                self._cursors[router_id] = cursor
                return label

    # -- forwarding-plane lookups ------------------------------------------------

    def lookup(self, router_id: int, label: int) -> tuple[RsvpLsp, int] | None:
        """The LSP and path position bound to this (router, in-label)."""
        return self._label_map.get((router_id, label))

    def next_step(
        self, router_id: int, label: int
    ) -> tuple[int, int | None] | None:
        """Forwarding decision for an RSVP label at ``router_id``.

        Returns (next-hop router, outgoing label or None for a PHP pop),
        or None when the label is unknown here.
        """
        entry = self.lookup(router_id, label)
        if entry is None:
            return None
        lsp, position = entry
        next_position = position + 1
        next_hop = lsp.path[next_position]
        return (next_hop, lsp.labels[next_position])

    def head_label(self, lsp: RsvpLsp) -> int | None:
        """The label the head-end pushes (None for a 2-hop PHP'd LSP)."""
        return lsp.labels[1]

    def lsps(self) -> list[RsvpLsp]:
        """Every signaled LSP."""
        return list(self._lsps)

    def lsps_through(self, router_id: int) -> list[RsvpLsp]:
        """LSPs whose explicit route visits one router."""
        return [
            lsp for lsp in self._lsps if lsp.position_of(router_id) is not None
        ]
