#!/usr/bin/env python3
"""Quickstart: build a tiny SR-MPLS network, traceroute it, run AReST.

Reproduces the paper's core loop on five routers:

1. build a VP -> AS chain where the AS runs SR-MPLS (Cisco SRGB);
2. run a TNT traceroute toward an announced prefix;
3. fingerprint the responding interfaces;
4. feed everything to the AReST detector and print the flags.

Run:  python examples/quickstart.py
"""

from repro.core.detector import ArestDetector
from repro.fingerprint.combined import CombinedFingerprinter
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.tnt import TntProber

ASN = 65_001


def build_network():
    """A vantage point in front of a 5-router SR-MPLS autonomous system."""
    net = Network()
    vp = net.add_router("vp", asn=64_900, role=RouterRole.VANTAGE)
    routers, prev = [], vp
    for i, name in enumerate(["asbr", "p1", "p2", "p3", "pe"]):
        router = net.add_router(
            name,
            asn=ASN,
            vendor=Vendor.CISCO,
            role=RouterRole.EDGE if name == "pe" else RouterRole.CORE,
            snmp_responsive=True,  # let SNMPv3 fingerprinting work
        )
        net.add_link(prev, router)
        routers.append(router)
        prev = router
    prefix = net.announce_prefix(routers[-1], 24)

    igp = ShortestPaths(net)
    ldp = LdpState(net, seed=1)
    sr = SegmentRoutingDomain(net, asn=ASN, seed=1)
    for router in routers:
        sr.enroll(router)  # default Cisco SRGB: 16,000-23,999
    controller = TunnelController(net, igp, ldp, {ASN: sr})
    controller.set_policy(TunnelPolicy(asn=ASN))
    engine = ForwardingEngine(net, igp, controller)
    return net, vp, prefix.address_at(10), engine


def main() -> None:
    net, vp, target, engine = build_network()

    print("=== 1. TNT traceroute ===")
    prober = TntProber(engine, seed=1)
    trace = prober.trace(vp.router_id, target, vp_name="quickstart-vp")
    print(trace)

    print("\n=== 2. fingerprinting ===")
    fingerprinter = CombinedFingerprinter(
        engine, SnmpOracle(net, coverage=1.0)
    )
    fingerprints = {}
    for hop in trace.hops:
        if hop.address is None:
            continue
        fp = fingerprinter.fingerprint(
            hop.address, hop.reply_ip_ttl, vp.router_id
        )
        fingerprints[hop.address] = fp
        if fp.identified:
            who = fp.exact_vendor or "/".join(
                sorted(v.value for v in fp.vendor_class)
            )
            print(f"  {hop.address}  ->  {who}  (via {fp.method})")

    print("\n=== 3. AReST detection ===")
    segments = ArestDetector().detect(trace, fingerprints)
    if not segments:
        print("  no SR-MPLS evidence found")
    for segment in segments:
        stars = "*" * segment.signal_strength
        hops = ", ".join(str(a) for a in segment.addresses)
        print(
            f"  {segment.flag.name:<4} {stars:<5} "
            f"labels={segment.top_labels}  hops=[{hops}]"
        )
        print(
            "        -> the same 20-bit label persisted across "
            f"{segment.length} hop(s): Segment Routing, not LDP"
        )


if __name__ == "__main__":
    main()
