"""Fig. 15 -- vendor distribution per AS from SNMPv3 fingerprints.

The paper: Cisco devices by far the most common, then Juniper and
Huawei, small Nokia/Linux contributions, and no Arista at all (absent
from the public SNMPv3 dataset).
"""

from repro.analysis.fingerprint_stats import (
    arista_absent,
    vendor_heatmap,
    vendor_totals,
)
from repro.netsim.vendors import Vendor
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig15_vendor_heatmap(benchmark, portfolio_results):
    heatmap = benchmark(lambda: vendor_heatmap(portfolio_results))
    totals = vendor_totals(heatmap)
    vendors = [v for v, _c in totals.most_common()]
    rows = []
    for as_id, counter in heatmap.items():
        if not counter:
            continue
        rows.append(
            (
                f"AS#{as_id}",
                *(counter.get(v, 0) for v in vendors),
            )
        )
    emit(
        format_table(
            ["AS", *(v.value for v in vendors)],
            rows,
            title="Fig. 15 -- SNMPv3-identified vendors per AS",
        )
    )
    emit(
        "totals: "
        + ", ".join(f"{v.value}={c}" for v, c in totals.most_common())
    )

    # Shape: Cisco first; Juniper present; Arista structurally absent.
    assert totals
    assert totals.most_common(1)[0][0] is Vendor.CISCO
    assert totals[Vendor.JUNIPER] > 0
    assert arista_absent(heatmap)
