"""Tunnel-type distribution (Fig. 13, Appendix C).

Fig. 13a: the explicit / implicit / opaque / invisible split per AS --
explicit dominates overall, while stub ASes are almost entirely covered
by invisible and implicit tunnels (which is why AReST detects nothing
there).  Fig. 13b: the share of paths showing at least one explicit
tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.campaign.runner import AsCampaignResult
from repro.probing.tunnels import TunnelType
from repro.topogen.as_types import AsRole


@dataclass(frozen=True, slots=True)
class TunnelTypeRow:
    """One AS's Fig. 13 numbers."""

    as_id: int
    name: str
    role: AsRole
    counts: tuple[tuple[TunnelType, int], ...]
    share_paths_with_explicit: float

    def total(self) -> int:
        """All tunnel observations in this AS."""
        return sum(c for _t, c in self.counts)

    def share(self, tunnel_type: TunnelType) -> float:
        """Fraction of observations of one tunnel type."""
        total = self.total()
        if total == 0:
            return 0.0
        for t, c in self.counts:
            if t is tunnel_type:
                return c / total
        return 0.0


def tunnel_type_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[TunnelTypeRow]:
    """One Fig. 13 row per AS, ordered by id."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        analysis = result.analysis
        n = analysis.traces_in_as or 1
        rows.append(
            TunnelTypeRow(
                as_id=as_id,
                name=result.spec.name,
                role=result.spec.role,
                counts=tuple(sorted(
                    analysis.tunnel_types.items(), key=lambda kv: kv[0].value
                )),
                share_paths_with_explicit=analysis.traces_with_explicit / n,
            )
        )
    return rows


def explicit_share_by_role(
    rows: list[TunnelTypeRow], role: AsRole
) -> float:
    """Aggregate explicit-tunnel share across one AS role."""
    total = explicit = 0
    for row in rows:
        if row.role is not role:
            continue
        total += row.total()
        explicit += sum(
            c for t, c in row.counts if t is TunnelType.EXPLICIT
        )
    return explicit / total if total else 0.0
