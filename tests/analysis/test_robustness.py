"""Tests for the degradation study (robustness analysis)."""

import pytest

from repro.analysis.robustness import (
    DegradationLevel,
    FlagDegradation,
    degradation_study,
    render_degradation_table,
)
from repro.core.flags import Flag


@pytest.fixture(scope="module")
def small_study():
    return degradation_study(
        loss_levels=(0.0, 0.10),
        as_ids=(15, 46),
        seed=1,
        vps_per_as=2,
        targets_per_as=10,
    )


class TestFlagDegradation:
    def test_recall_of_empty_baseline_is_one(self):
        deg = FlagDegradation(
            flag=Flag.LVR,
            baseline_segments=0,
            detected_segments=0,
            retained_segments=0,
            true_positives=0,
            false_positives=0,
        )
        assert deg.recall == 1.0
        assert deg.precision == 1.0

    def test_ratios(self):
        deg = FlagDegradation(
            flag=Flag.CO,
            baseline_segments=10,
            detected_segments=9,
            retained_segments=8,
            true_positives=9,
            false_positives=1,
        )
        assert deg.recall == 0.8
        assert deg.precision == 0.9


class TestDegradationStudy:
    def test_levels_match_the_sweep(self, small_study):
        assert [lvl.probe_loss for lvl in small_study.levels] == [0.0, 0.10]
        assert small_study.level(0.10).probe_loss == 0.10
        with pytest.raises(KeyError):
            small_study.level(0.5)

    def test_zero_loss_level_is_the_baseline(self, small_study):
        baseline = small_study.level(0.0)
        for flag, deg in baseline.per_flag.items():
            assert deg.recall == 1.0, flag
            assert deg.detected_segments == deg.baseline_segments
        assert baseline.counters.total_faults() == 0
        assert baseline.failed_ases == 0

    def test_loss_injects_faults_without_sinking_ases(self, small_study):
        lossy = small_study.level(0.10)
        assert lossy.counters.probes_lost > 0
        assert lossy.failed_ases == 0

    def test_cvr_never_hallucinates(self, small_study):
        """The acceptance criterion: zero CVR false positives at <= 10%
        probe loss, while recall is still being reported per flag."""
        for level in small_study.levels:
            assert level.cvr_false_positives == 0
            assert level.strong_false_positives == 0
            for deg in level.per_flag.values():
                assert 0.0 <= deg.recall <= 1.0

    def test_degradation_is_graceful_not_total(self, small_study):
        lossy = small_study.level(0.10)
        co = lossy.per_flag[Flag.CO]
        assert co.baseline_segments > 0
        assert co.recall > 0.5  # degraded, not destroyed
        assert co.precision == 1.0

    def test_deterministic(self, small_study):
        again = degradation_study(
            loss_levels=(0.0, 0.10),
            as_ids=(15, 46),
            seed=1,
            vps_per_as=2,
            targets_per_as=10,
        )
        for a, b in zip(small_study.levels, again.levels):
            assert a.per_flag == b.per_flag
            assert a.counters == b.counters


class TestRenderTable:
    def test_table_shape(self, small_study):
        table = render_degradation_table(small_study)
        assert "Degradation curves" in table
        assert "CVR FPs" in table
        assert "0%" in table and "10%" in table
        for flag in Flag:
            assert f"{flag.name} R/P" in table
