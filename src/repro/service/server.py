"""The always-on detection service: HTTP front-end + lifecycle.

A deliberately small HTTP/1.1 server on :mod:`asyncio` streams (the
toolchain constraint is stdlib-only), wired around the three robustness
pieces the other modules provide:

- :class:`~repro.service.ingest.IngestQueue` -- the bounded buffer and
  backpressure policy (202 vs 429 + ``Retry-After`` vs 503);
- :class:`~repro.service.state.ServiceState` -- the crash-safe journal
  + snapshot store (a trace is 202'd only *after* its journal line is
  fsynced);
- :class:`~repro.service.workers.WorkerPool` -- queue consumers with
  per-request deadlines and poison containment.

Routes::

    POST /trace     one trace object, or a JSONL batch (dataset lines)
    GET  /segments  canonical aggregate -- byte-identical to the batch
                    pipeline over the same traces, in any order
    GET  /report    /segments plus area/tunnel aggregates and
                    operational state (queue, recovery, workers)
    GET  /healthz   liveness (503 once draining, for load balancers)
    GET  /metrics   Prometheus exposition (live ingest families + the
                    recorder's stage seconds)

Shutdown mirrors ``campaign.executor``'s two-strike contract: the first
SIGINT/SIGTERM stops intake and drains (flush queue, final checkpoint,
manifest ``ok``, exit 0); a second strike abandons the drain (queued
traces stay journaled for the next start, manifest ``interrupted``,
exit 130).  A bind failure exits 2 before the first stdout line.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
from dataclasses import dataclass
from pathlib import Path

from repro.obs.prometheus import (
    escape_label_value,
    render_ingest_metrics,
    render_latency_histograms,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import TraceContext
from repro.service.ingest import (
    REASON_DISK_FULL,
    REASON_DRAINING,
    IngestQueue,
)
from repro.service.state import RecoveryInfo, ServiceState
from repro.service.wire import canonical_json, decode_body
from repro.service.workers import WorkerPool
from repro.util.atomicio import DiskFullError

logger = logging.getLogger(__name__)

#: manifest exit statuses a service run can settle on
STATUS_OK = "ok"
STATUS_INTERRUPTED = "interrupted"

#: process exit codes ``arest serve`` maps outcomes to
EXIT_OK = 0
EXIT_BIND_FAILURE = 2
EXIT_INTERRUPTED = 130

#: request-line + headers must fit the stream buffer
_HEADER_LIMIT = 64 * 1024
#: refuse bodies past this (the queue bound is the real memory story;
#: this only stops one request from ballooning the parser)
_MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(slots=True)
class ServiceConfig:
    """Everything one service instance needs to run."""

    state_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 0
    asn: int | None = None
    queue_capacity: int = 1024
    low_watermark: int | None = None
    fair_share: int | None = None
    workers: int = 1
    detect_timeout: float | None = 5.0
    snapshot_every: int = 256
    retry_after: float = 1.0
    read_timeout: float = 10.0
    telemetry_dir: str | Path | None = None

    def as_manifest_config(self) -> dict:
        return {
            "state_dir": str(self.state_dir),
            "asn": self.asn,
            "queue_capacity": self.queue_capacity,
            "workers": self.workers,
            "detect_timeout": self.detect_timeout,
            "snapshot_every": self.snapshot_every,
        }


@dataclass(slots=True)
class _Request:
    method: str
    path: str
    headers: dict
    body: bytes


class ArestService:
    """One streaming detection service instance, start to drain."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state = ServiceState(
            config.state_dir,
            asn=config.asn,
            snapshot_every=config.snapshot_every,
        )
        self.queue = IngestQueue(
            config.queue_capacity,
            low_watermark=config.low_watermark,
            fair_share=config.fair_share,
            retry_after=config.retry_after,
        )
        #: always-on in-memory recorder (feeds /metrics; results are
        #: byte-identical whether or not a telemetry dir persists it).
        #: Trace-context-carrying from birth: the service is one
        #: long-lived trace, and the session (when a telemetry dir is
        #: configured) adopts this same context so worker spans parent
        #: under the run's root span.
        self.recorder = Telemetry(trace=TraceContext.new())
        self.pool = WorkerPool(
            self.queue,
            self.state,
            workers=config.workers,
            detect_timeout=config.detect_timeout,
            telemetry=self.recorder,
        )
        self.recovery = RecoveryInfo()
        self.session = None
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._abort = asyncio.Event()
        self._strikes = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Recover state, bind, spawn workers; returns the bound address.

        A bind failure (``OSError``) propagates *before* any worker or
        session side effect, so ``arest serve`` can exit 2 cleanly.
        """
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_HEADER_LIMIT,
        )
        with self.recorder.span("recover"):
            self.recovery = self.state.recover()
        if self.recovery.replayed or self.recovery.snapshot_seq:
            logger.info(
                "recovered state: snapshot seq=%d, %d trace(s) replayed, "
                "%d damaged line(s) discarded",
                self.recovery.snapshot_seq,
                self.recovery.replayed,
                self.recovery.damaged_lines,
            )
        if self.config.telemetry_dir is not None:
            from repro.obs.session import TelemetrySession

            self.session = TelemetrySession(
                self.config.telemetry_dir,
                config=self.config.as_manifest_config(),
                seed=0,
                command="serve",
                jobs=self.config.workers,
                trace=self.recorder.trace,
            )
        self.pool.start()
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def handle_signal(self, sig: int) -> None:
        """The two-strike contract (mirrors ``campaign.executor``)."""
        self._strikes += 1
        name = signal.Signals(sig).name
        if self._strikes == 1:
            logger.info(
                "received %s: draining (signal again to abort)", name
            )
            self.request_drain()
        else:
            logger.warning("received second %s: aborting drain", name)
            self.request_abort()

    def request_drain(self) -> None:
        """Stop accepting; flush the queue; then shut down cleanly."""
        self.queue.start_draining()
        self._stop.set()

    def request_abort(self) -> None:
        """Abandon the drain (queued traces stay journaled on disk)."""
        self.queue.start_draining()
        self._abort.set()
        self._stop.set()

    async def serve_until_shutdown(self) -> str:
        """Serve until a drain or abort completes; returns the status."""
        await self._stop.wait()
        try:
            status = await self._shutdown()
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
        self._finalize_telemetry(status)
        return status

    async def _shutdown(self) -> str:
        drain = asyncio.create_task(self._drain(), name="arest-drain")
        abort = asyncio.create_task(self._abort.wait(), name="arest-abort")
        done, _ = await asyncio.wait(
            {drain, abort}, return_when=asyncio.FIRST_COMPLETED
        )
        if drain in done:
            abort.cancel()
            drain.result()
            return STATUS_OK
        drain.cancel()
        logger.debug("abort: waiting for the drain task to unwind")
        await asyncio.gather(drain, return_exceptions=True)
        dropped = self.queue.drain_now()
        logger.debug("abort: stopping workers")
        await self.pool.stop()
        logger.debug("abort: final checkpoint")
        self.state.final_checkpoint()
        logger.warning(
            "drain aborted: %d queued trace(s) left journaled for the "
            "next start",
            dropped,
        )
        return STATUS_INTERRUPTED

    async def _drain(self) -> None:
        """First-strike shutdown: flush everything already accepted."""
        with self.recorder.span("drain"):
            await self.queue.join()
            await self.pool.stop()
            self.state.final_checkpoint()

    def _finalize_telemetry(self, status: str) -> None:
        if self.session is None:
            return
        export = self.recorder.export()
        counters = dict(export["counters"])
        counters["ingest_accepted"] = self.queue.accepted_total
        for reason, n in sorted(self.queue.rejected.items()):
            counters[f"ingest_rejected_{reason}"] = n
        counters["traces_quarantined"] = (
            self.state.aggregate.traces_quarantined
        )
        gauges = dict(export["gauges"])
        gauges["queue_peak_depth"] = float(self.queue.peak_depth)
        gauges["replayed_at_recovery"] = float(self.recovery.replayed)
        self.session.record_scope(
            "service",
            spans=export["spans"],
            counters=counters,
            gauges=gauges,
            anchor=export.get("anchor"),
            histograms=export.get("histograms"),
        )
        self.session.finalize(status)

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except asyncio.TimeoutError:
                self._respond(writer, 408, {"error": "request timed out"})
                return
            except asyncio.LimitOverrunError:
                self._respond(writer, 431, {"error": "headers too large"})
                return
            except _BodyTooLarge:
                self._respond(writer, 413, {"error": "body too large"})
                return
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                # client went away or sent garbage before the routes
                return
            try:
                self._route(request, writer)
            except Exception:
                logger.exception(
                    "unhandled error serving %s %s",
                    request.method,
                    request.path,
                )
                self._respond(writer, 500, {"error": "internal error"})
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.TimeoutError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request:
        timeout = self.config.read_timeout
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout
        )
        request_line, *header_lines = head.decode(
            "latin-1"
        ).rstrip("\r\n").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
        headers: dict = {}
        for line in header_lines:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _BodyTooLarge()
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout
            )
        path = target.split("?", 1)[0]
        return _Request(
            method=method.upper(), path=path, headers=headers, body=body
        )

    def _route(self, request: _Request, writer) -> None:
        if request.path == "/trace":
            if request.method != "POST":
                self._respond(writer, 405, {"error": "POST /trace"})
                return
            self._post_trace(request, writer)
        elif request.method != "GET":
            self._respond(writer, 405, {"error": "GET only"})
        elif request.path == "/segments":
            self._respond_raw(
                writer,
                200,
                self.state.aggregate.segments_json(self.state.asn),
                "application/json",
            )
        elif request.path == "/report":
            self._respond(writer, 200, self._report())
        elif request.path == "/healthz":
            if self.queue.draining:
                self._respond(writer, 503, {"status": "draining"})
            else:
                self._respond(
                    writer,
                    200,
                    {"status": "ok", "queue_depth": self.queue.depth},
                )
        elif request.path == "/metrics":
            self._respond_raw(
                writer,
                200,
                self._metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._respond(writer, 404, {"error": f"no route {request.path}"})

    def _post_trace(self, request: _Request, writer) -> None:
        decoded = decode_body(request.body.decode("utf-8", "replace"))
        for rejection in decoded.rejections:
            self.queue.count_rejected(rejection.reason)
        rejected = [r.as_dict() for r in decoded.rejections]
        if not decoded.traces:
            self._respond(
                writer,
                400,
                {
                    "error": "no decodable trace in request body",
                    "rejected": rejected,
                    "skipped_headers": decoded.skipped_headers,
                },
            )
            return
        submitter = request.headers.get("x-arest-submitter")
        if not submitter:
            peer = writer.get_extra_info("peername")
            submitter = str(peer[0]) if peer else "unknown"
        admission = self.queue.admit(len(decoded.traces), submitter)
        if not admission.accepted:
            status = 503 if admission.reason == REASON_DRAINING else 429
            self._respond(
                writer,
                status,
                {
                    "error": "not admitted",
                    "reason": admission.reason,
                    "retry_after": admission.retry_after,
                },
                extra_headers=(
                    ("Retry-After", _format_retry(admission.retry_after)),
                ),
            )
            return
        # journal durably (write+flush+fsync) BEFORE enqueue + 202: the
        # acknowledgement is the crash-safety promise
        try:
            tick = self.recorder.clock()
            seqs = self.state.accept(decoded.traces)
            self.recorder.observe("bank", self.recorder.clock() - tick)
        except DiskFullError as exc:
            # ENOSPC/EDQUOT is environmental, not terminal: the batch
            # was NOT acknowledged (nothing enqueued), the journal is
            # intact, and the client should retry once space frees up.
            self.queue.count_rejected(
                REASON_DISK_FULL, len(decoded.traces)
            )
            self._respond(
                writer,
                503,
                {
                    "error": "journal volume out of space",
                    "reason": REASON_DISK_FULL,
                    "detail": str(exc),
                    "retry_after": self.queue.retry_after,
                },
                extra_headers=(
                    ("Retry-After", _format_retry(self.queue.retry_after)),
                ),
            )
            return
        self.queue.enqueue(
            list(zip(seqs, decoded.traces)), submitter
        )
        self._respond(
            writer,
            202,
            {
                "status": "accepted",
                "accepted": len(seqs),
                "seq_first": seqs[0],
                "seq_last": seqs[-1],
                "rejected": rejected,
                "skipped_headers": decoded.skipped_headers,
            },
        )

    def _report(self) -> dict:
        report = self.state.aggregate.report_dict(self.state.asn)
        report["service"] = {
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "peak_depth": self.queue.peak_depth,
                "accepted_total": self.queue.accepted_total,
                "rejected": dict(sorted(self.queue.rejected.items())),
                "saturated": self.queue.saturated,
                "draining": self.queue.draining,
            },
            "recovery": self.recovery.as_dict(),
            "workers": {
                "count": self.pool.workers,
                "poisoned": self.pool.poisoned,
                "timeouts": self.pool.timeouts,
            },
            "fed_watermark": self.state.fed_watermark,
        }
        return report

    def _metrics_text(self) -> str:
        text = render_ingest_metrics(
            accepted_total=self.queue.accepted_total,
            rejected=dict(self.queue.rejected),
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.capacity,
            traces_quarantined=self.state.aggregate.traces_quarantined,
            draining=self.queue.draining,
        )
        totals: dict = {}
        for span in self.recorder.spans:
            stage = str(span.get("stage"))
            totals[stage] = totals.get(stage, 0.0) + float(
                span.get("seconds", 0.0)
            )
        if totals:
            lines = [
                "# HELP arest_stage_seconds_total Wall-clock seconds per "
                "scope and stage.",
                "# TYPE arest_stage_seconds_total counter",
            ]
            for stage, seconds in sorted(totals.items()):
                lines.append(
                    f'arest_stage_seconds_total{{scope="service",'
                    f'stage="{escape_label_value(stage)}"}} {seconds:.6f}'
                )
            text += "\n".join(lines) + "\n"
        if self.recorder.histograms:
            text += render_latency_histograms(
                {
                    stage: hist.as_dict()
                    for stage, hist in self.recorder.histograms.items()
                }
            )
        return text

    # -- response plumbing ---------------------------------------------------

    def _respond(
        self,
        writer,
        status: int,
        obj: dict,
        *,
        extra_headers: tuple = (),
    ) -> None:
        self._respond_raw(
            writer,
            status,
            canonical_json(obj),
            "application/json",
            extra_headers=extra_headers,
        )

    def _respond_raw(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str,
        *,
        extra_headers: tuple = (),
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines += [f"{name}: {value}" for name, value in extra_headers]
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)


class _BodyTooLarge(Exception):
    pass


def _format_retry(retry_after: float | None) -> str:
    if retry_after is None:
        return "1"
    return str(max(1, int(round(retry_after))))


async def run_service(config: ServiceConfig, *, ready=None) -> str:
    """Run one service to completion; returns its manifest status.

    ``ready(host, port)`` fires after the bind succeeds (``arest
    serve`` prints the machine-parseable address line from it).  A bind
    failure raises ``OSError`` before ``ready``.
    """
    service = ArestService(config)
    host, port = await service.start()
    if ready is not None:
        ready(host, port)
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, service.handle_signal, sig)
        except (NotImplementedError, RuntimeError):
            continue
        installed.append(sig)
    try:
        return await service.serve_until_shutdown()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def exit_code_for(status: str) -> int:
    """Map a manifest status to the documented process exit code."""
    return EXIT_OK if status == STATUS_OK else EXIT_INTERRUPTED
