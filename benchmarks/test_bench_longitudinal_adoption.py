"""Extension -- longitudinal SR-MPLS adoption tracking.

The paper's stated future work (Sec. 9): "longitudinal analyses to
track the evolution of SR-MPLS adoption patterns over time."  Run the
yearly campaign over an evolving portfolio and regenerate the adoption
curve AReST would have measured between 2019 and 2025.
"""

from repro.analysis.longitudinal import AdoptionTracker
from repro.util.tables import format_table

from benchmarks.conftest import emit

#: a representative slice of the portfolio: full-SR, hybrid, classic,
#: hidden-SR and fingerprint-rich ASes
AS_IDS = [7, 15, 19, 27, 31, 46, 53, 58]


def test_bench_longitudinal_adoption(benchmark):
    tracker = AdoptionTracker(
        first_year=2019,
        last_year=2025,
        as_ids=AS_IDS,
        seed=1,
        targets_per_as=10,
        vps_per_as=2,
    )
    snapshots = benchmark.pedantic(tracker.run, rounds=1, iterations=1)

    emit(
        format_table(
            ["Year", "ASes w/ strong SR", "SR ifaces", "MPLS ifaces",
             "SR iface share"],
            [
                (
                    s.year,
                    f"{s.ases_with_sr_evidence}/{s.ases_analyzed}",
                    s.sr_interfaces,
                    s.mpls_interfaces,
                    f"{s.sr_interface_share:.0%}",
                )
                for s in snapshots
            ],
            title="Extension -- SR-MPLS adoption, 2019-2025",
        )
    )

    # Shape: adoption only grows; by the reference year the curve is
    # near the 2025 portfolio level; never-adopters (Proximus) keep it
    # strictly below 100%.
    detections = [s.ases_with_sr_evidence for s in snapshots]
    assert detections[-1] > detections[0]
    interfaces = [s.sr_interfaces for s in snapshots]
    assert interfaces[-1] > interfaces[0]
    assert all(
        s.ases_with_sr_evidence < s.ases_analyzed for s in snapshots
    )
    # late-window adoption exceeds the midpoint (deployment accelerated
    # through the window, matching Fig. 1's publication-count intuition)
    assert detections[-1] >= detections[len(detections) // 2]
