"""Intra-AS router-level topology generation.

Generates the classic ISP shape: a meshed core of P routers, PE (edge)
routers hanging off the core and announcing customer prefixes, and ASBRs
(border routers) peering with the outside.  Randomness is deterministic
per (seed, asn).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.topology import Network, Router, RouterRole
from repro.util.determinism import DeterministicRng


@dataclass(slots=True)
class IntraAsTopology:
    """Handles to the routers created for one AS."""

    asn: int
    core: list[Router] = field(default_factory=list)
    edges: list[Router] = field(default_factory=list)
    borders: list[Router] = field(default_factory=list)
    #: target prefixes announced by the PE routers
    prefixes: list[IPv4Prefix] = field(default_factory=list)

    def all_routers(self) -> list[Router]:
        """Every router of this AS, cores first."""
        return [*self.core, *self.edges, *self.borders]


def build_intra_as(
    network: Network,
    asn: int,
    n_core: int,
    n_edge: int,
    n_border: int,
    seed: int = 0,
    name_prefix: str = "",
    announce: bool = True,
) -> IntraAsTopology:
    """Create one AS's routers and internal links.

    The core is a ring plus random chords (2-connected for n >= 3, so
    ECMP and TE waypoints have real path diversity); each border router
    attaches to two distinct core routers, each PE to one or two.
    """
    if n_core < 1:
        raise ValueError("an AS needs at least one core router")
    rng = DeterministicRng("intra", seed, asn)
    prefix = name_prefix or f"as{asn}"
    topo = IntraAsTopology(asn=asn)

    for i in range(n_core):
        topo.core.append(
            network.add_router(f"{prefix}-p{i}", asn, role=RouterRole.CORE)
        )
    # Ring + chords.
    if n_core > 1:
        for i in range(n_core):
            a, b = topo.core[i], topo.core[(i + 1) % n_core]
            if network.link_between(a.router_id, b.router_id) is None:
                network.add_link(a, b, cost=10)
        for i in range(n_core):
            if n_core > 5 and rng.random() < 0.2:
                j = (i + 2 + rng.randrange(max(1, n_core - 3))) % n_core
                a, b = topo.core[i], topo.core[j]
                if (
                    a.router_id != b.router_id
                    and network.link_between(a.router_id, b.router_id) is None
                ):
                    network.add_link(a, b, cost=10 + rng.randrange(3) * 5)

    # Borders cluster near ring position 0 and PEs near the opposite
    # side, so LSPs cross several core hops -- real ISP cores give
    # traceroute label runs of 3+ hops, which is what the consecutive
    # flags feed on.
    near = topo.core[: max(1, n_core // 3)]
    far = topo.core[n_core // 2 :] or topo.core
    for i in range(n_border):
        border = network.add_router(
            f"{prefix}-br{i}", asn, role=RouterRole.BORDER
        )
        topo.borders.append(border)
        for attach in _pick_attachments(rng, near, 2):
            network.add_link(border, attach, cost=10)

    for i in range(n_edge):
        edge = network.add_router(f"{prefix}-pe{i}", asn, role=RouterRole.EDGE)
        topo.edges.append(edge)
        count = 1 if len(far) == 1 or rng.random() < 0.5 else 2
        for attach in _pick_attachments(rng, far, count):
            network.add_link(edge, attach, cost=10)
        if announce:
            topo.prefixes.append(network.announce_prefix(edge, 24))

    return topo


def _pick_attachments(
    rng: DeterministicRng, core: list[Router], count: int
) -> list[Router]:
    count = min(count, len(core))
    return rng.sample(core, count)


def build_pop_intra_as(
    network: Network,
    asn: int,
    n_core: int,
    n_edge: int,
    n_border: int,
    seed: int = 0,
    name_prefix: str = "",
    announce: bool = True,
    cores_per_pop: int = 2,
) -> IntraAsTopology:
    """Two-tier PoP-based ISP topology.

    Cores are grouped into points of presence (redundant pairs linked
    internally); PoPs form a ring with occasional express links.  Border
    routers home onto the first PoP, PEs onto the far PoPs -- the same
    border/edge separation as the flat generator, with the redundancy
    structure real ISP backbones exhibit.
    """
    if n_core < 1:
        raise ValueError("an AS needs at least one core router")
    cores_per_pop = max(1, cores_per_pop)
    rng = DeterministicRng("pop-intra", seed, asn)
    prefix = name_prefix or f"as{asn}"
    topo = IntraAsTopology(asn=asn)

    n_pops = max(1, (n_core + cores_per_pop - 1) // cores_per_pop)
    pops: list[list[Router]] = []
    created = 0
    for p in range(n_pops):
        pop: list[Router] = []
        for c in range(cores_per_pop):
            if created >= n_core:
                break
            router = network.add_router(
                f"{prefix}-pop{p}-p{c}", asn, role=RouterRole.CORE
            )
            topo.core.append(router)
            pop.append(router)
            created += 1
        # intra-PoP redundancy pair(s)
        for a, b in zip(pop, pop[1:]):
            network.add_link(a, b, cost=5)
        pops.append(pop)

    # inter-PoP ring (one link per adjacent PoP pair, varied endpoints)
    if len(pops) > 1:
        for p in range(len(pops)):
            a = rng.choice(pops[p])
            b = rng.choice(pops[(p + 1) % len(pops)])
            if network.link_between(a.router_id, b.router_id) is None:
                network.add_link(a, b, cost=10)
        # express links across the ring
        for p in range(len(pops)):
            if len(pops) > 3 and rng.random() < 0.3:
                q = (p + 2) % len(pops)
                a, b = rng.choice(pops[p]), rng.choice(pops[q])
                if (
                    a.router_id != b.router_id
                    and network.link_between(a.router_id, b.router_id)
                    is None
                ):
                    network.add_link(a, b, cost=15)

    near = pops[0]
    far = pops[len(pops) // 2 :]
    far_cores = [r for pop in far for r in pop] or topo.core
    for i in range(n_border):
        border = network.add_router(
            f"{prefix}-br{i}", asn, role=RouterRole.BORDER
        )
        topo.borders.append(border)
        for attach in _pick_attachments(rng, near, min(2, len(near))):
            network.add_link(border, attach, cost=10)

    for i in range(n_edge):
        edge = network.add_router(f"{prefix}-pe{i}", asn, role=RouterRole.EDGE)
        topo.edges.append(edge)
        count = 1 if len(far_cores) == 1 or rng.random() < 0.5 else 2
        for attach in _pick_attachments(rng, far_cores, count):
            network.add_link(edge, attach, cost=10)
        if announce:
            topo.prefixes.append(network.announce_prefix(edge, 24))

    return topo
