"""Crash-safe state store: journal, snapshot, recovery, invariant."""

from __future__ import annotations

import json

import pytest

from repro.service.state import (
    INGEST_FILENAME,
    SNAPSHOT_FILENAME,
    SegmentAggregate,
    ServiceState,
    StateMismatchError,
    analyze_trace,
    batch_aggregate,
)
from tests.service.conftest import corpus


def _feed_all(state: ServiceState, traces) -> None:
    seqs = state.accept(list(traces))
    for seq, trace in zip(seqs, traces):
        state.ingest(seq, analyze_trace(trace, asn=state.asn))


class TestJournalRoundTrip:
    def test_recovery_rebuilds_the_exact_aggregate(self, tmp_path):
        traces = corpus(5)
        state = ServiceState(tmp_path)
        assert state.recover().replayed == 0
        _feed_all(state, traces)

        fresh = ServiceState(tmp_path)
        info = fresh.recover()
        assert info.replayed == 5
        assert fresh.aggregate.segments_json() == (
            batch_aggregate(traces).segments_json()
        )

    def test_accept_is_durable_before_return(self, tmp_path):
        # the journal line is on disk when accept() returns -- that is
        # the whole 202 contract
        state = ServiceState(tmp_path)
        state.accept(corpus(1))
        lines = (tmp_path / INGEST_FILENAME).read_text().splitlines()
        assert len(lines) == 2  # header + one trace
        assert json.loads(lines[1])["seq"] == 1


class TestTornTail:
    def test_torn_final_line_is_salvaged(self, tmp_path):
        traces = corpus(4)
        state = ServiceState(tmp_path)
        state.accept(traces)
        journal = tmp_path / INGEST_FILENAME
        text = journal.read_text()
        # tear the last line mid-record, as a kill -9 mid-append would
        journal.write_text(text[: len(text) - 25])

        fresh = ServiceState(tmp_path)
        info = fresh.recover()
        assert info.replayed == 3
        assert info.damaged_lines == 1
        assert fresh.aggregate.segments_json() == (
            batch_aggregate(traces[:3]).segments_json()
        )
        # the tail was compacted away: next recovery is clean
        again = ServiceState(tmp_path)
        assert again.recover().damaged_lines == 0

    def test_sequence_numbering_resumes_after_salvage(self, tmp_path):
        traces = corpus(3)
        state = ServiceState(tmp_path)
        state.accept(traces)
        journal = tmp_path / INGEST_FILENAME
        journal.write_text(journal.read_text()[:-20])

        fresh = ServiceState(tmp_path)
        fresh.recover()
        # the torn seq 3 was never acknowledged; reusing it is fine
        assert fresh.accept(corpus(1)) == [3]


class TestSnapshotCompaction:
    def test_compaction_truncates_the_journal(self, tmp_path):
        traces = corpus(6)
        state = ServiceState(tmp_path, snapshot_every=4)
        _feed_all(state, traces)
        assert state.compaction_due
        state.compact()
        assert (tmp_path / SNAPSHOT_FILENAME).exists()
        lines = (tmp_path / INGEST_FILENAME).read_text().splitlines()
        assert len(lines) == 1  # header only: everything is covered

        fresh = ServiceState(tmp_path, snapshot_every=4)
        info = fresh.recover()
        assert info.snapshot_seq == 6
        assert info.replayed == 0
        assert fresh.aggregate.segments_json() == (
            batch_aggregate(traces).segments_json()
        )

    def test_crash_between_snapshot_and_truncate_double_counts_nothing(
        self, tmp_path
    ):
        traces = corpus(5)
        state = ServiceState(tmp_path)
        _feed_all(state, traces)
        journal_before = (tmp_path / INGEST_FILENAME).read_bytes()
        state.compact()
        # simulate the crash window: snapshot landed, truncate did not
        (tmp_path / INGEST_FILENAME).write_bytes(journal_before)

        fresh = ServiceState(tmp_path)
        info = fresh.recover()
        assert info.replayed == 0  # every line is covered by seq
        assert fresh.aggregate.segments_json() == (
            batch_aggregate(traces).segments_json()
        )

    def test_compaction_waits_for_the_watermark(self, tmp_path):
        traces = corpus(3)
        state = ServiceState(tmp_path, snapshot_every=1)
        seqs = state.accept(traces)
        # fold seq 2 ahead of seq 1: compaction must refuse
        state.ingest(seqs[1], analyze_trace(traces[1]))
        assert not state.compaction_due
        with pytest.raises(RuntimeError):
            state.compact()
        state.ingest(seqs[0], analyze_trace(traces[0]))
        state.ingest(seqs[2], analyze_trace(traces[2]))
        assert state.fed_watermark == 3
        assert state.compaction_due

    def test_garbled_snapshot_falls_back_to_the_journal(self, tmp_path):
        traces = corpus(3)
        state = ServiceState(tmp_path)
        _feed_all(state, traces)
        (tmp_path / SNAPSHOT_FILENAME).write_text("{torn")

        fresh = ServiceState(tmp_path)
        info = fresh.recover()
        assert info.replayed == 3
        assert fresh.aggregate.segments_json() == (
            batch_aggregate(traces).segments_json()
        )


class TestConfigGuards:
    def test_differently_configured_state_dir_is_refused(self, tmp_path):
        state = ServiceState(tmp_path, asn=65001)
        state.accept(corpus(1))
        with pytest.raises(StateMismatchError):
            ServiceState(tmp_path, asn=65002).recover()

    def test_foreign_file_is_not_a_journal(self, tmp_path):
        (tmp_path / INGEST_FILENAME).write_text("not a journal\n")
        with pytest.raises(StateMismatchError):
            ServiceState(tmp_path).recover()


class TestAggregateInvariant:
    def test_poison_delta_keeps_the_reconciliation_invariant(self):
        total = batch_aggregate(corpus(4))
        before = total.traces_collected
        total.merge(SegmentAggregate.poison())
        assert total.traces_collected == before + 1
        assert (
            total.traces_analyzed + total.traces_quarantined
            == total.traces_collected
        )
        assert total.anomaly_counts["poison-trace"] == 1

    def test_invariant_violations_are_loud(self):
        bad = SegmentAggregate(traces_collected=1, traces_quarantined=2)
        with pytest.raises(AssertionError):
            bad.check_invariant()

    def test_state_dict_round_trip(self):
        total = batch_aggregate(corpus(6))
        total.merge(SegmentAggregate.poison())
        clone = SegmentAggregate.from_state_dict(
            json.loads(json.dumps(total.as_state_dict()))
        )
        assert clone.segments_json(65001) == total.segments_json(65001)
        assert clone.report_dict() == total.report_dict()
