"""Performance -- AReST post-processing throughput.

"AReST is lightweight as it relies only on traceroute-like data" (Sec.
9).  The paper post-processed 7.7M traceroutes; this benchmark measures
the detector's single-core throughput on realistic traces so a reader
can estimate wall-clock for campaigns of any size.  Besides the printed
table the run drops ``BENCH_detector.json`` (throughput plus per-trace
latency percentiles) so CI can archive machine-readable numbers.
"""

import gc
import json
import time

from repro.core.columnar import ColumnarDetector, TraceBatch
from repro.core.detector import ArestDetector
from repro.core.labels import _suffix_match_default
from repro.core.vendor_ranges import ranges_for_fingerprint
from repro.probing.tnt import TntProber
from repro.util.atomicio import atomic_write_text

from benchmarks.conftest import emit

BENCH_FILENAME = "BENCH_detector.json"

#: CI regression gate: the columnar batch passes must stay at least
#: this many times faster than the object path measured in-process
MIN_COLUMNAR_SPEEDUP = 5.0


def _trace_corpus(portfolio_results, copies: int = 3):
    """(trace, fingerprints) pairs, as the pipeline feeds the detector.

    Each trace keeps its own campaign's fingerprint mapping: vendor-range
    lookups are part of the detector's real per-hop work and an empty
    mapping would let the benchmark skip them entirely.
    """
    pairs = []
    for result in portfolio_results.values():
        fingerprints = result.fingerprints
        pairs.extend(
            (trace, fingerprints) for trace in result.dataset.traces
        )
    return pairs * copies


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


_WARMUP_PASSES = 2


def test_bench_detector_throughput(benchmark, portfolio_results):
    corpus = _trace_corpus(portfolio_results)

    detector = ArestDetector()

    def detect_all() -> int:
        segments = 0
        for trace, fingerprints in corpus:
            segments += len(detector.detect(trace, fingerprints))
        return segments

    # Warm-up: pay first-call costs (lazy imports, memoized vendor-range
    # construction, branch-predictor/allocator warm-up) outside every
    # measured window, so they stop polluting the max/p95 trajectory.
    for _ in range(_WARMUP_PASSES):
        detect_all()

    segments = benchmark(detect_all)
    per_trace_us = benchmark.stats["mean"] / len(corpus) * 1e6
    emit(
        f"post-processed {len(corpus):,} traces -> {segments:,} segment "
        f"occurrences; {per_trace_us:.1f} us/trace "
        f"(~{1e6 / per_trace_us * 3600 / 1e6:.0f}M traces/hour/core)"
    )

    # Per-trace latency distribution (one extra pass; the benchmark
    # above measures aggregate throughput, this captures tail shape).
    for trace, fingerprints in corpus:  # warm the per-call timing path too
        detector.detect(trace, fingerprints)
    latencies_us = []
    for trace, fingerprints in corpus:
        tick = time.perf_counter_ns()
        detector.detect(trace, fingerprints)
        latencies_us.append((time.perf_counter_ns() - tick) / 1e3)
    latencies_us.sort()
    payload = {
        "benchmark": "detector_throughput",
        "traces": len(corpus),
        "segment_occurrences": segments,
        "ops_per_sec": round(len(corpus) / benchmark.stats["mean"], 1),
        "mean_us_per_trace": round(per_trace_us, 3),
        "p50_us_per_trace": round(_percentile(latencies_us, 0.50), 3),
        "p95_us_per_trace": round(_percentile(latencies_us, 0.95), 3),
        "max_us_per_trace": round(latencies_us[-1], 3),
    }
    # The vendor-range memoization delta, measured paired (alternating
    # legs in the same process) so runner clock drift multiplies both
    # legs equally and cancels in the ratio.  The uncached leg clears
    # the interval-list cache once per *trace*; the pre-caching code
    # rebuilt the list once per labeled *hop*, so the recorded delta is
    # a conservative floor on the real win.
    def detect_all_uncached() -> int:
        segments = 0
        for trace, fingerprints in corpus:
            ranges_for_fingerprint.cache_clear()
            segments += len(detector.detect(trace, fingerprints))
        return segments

    detect_all_uncached()  # warm the uncached leg's code path once
    cached_s: list[float] = []
    uncached_s: list[float] = []
    for _ in range(3):
        gc.disable()
        tick = time.perf_counter()
        detect_all()
        cached_s.append(time.perf_counter() - tick)
        tick = time.perf_counter()
        detect_all_uncached()
        uncached_s.append(time.perf_counter() - tick)
        gc.enable()
    ratios = sorted(u / c for c, u in zip(cached_s, uncached_s))
    payload["uncached_ops_per_sec"] = round(len(corpus) / min(uncached_s), 1)
    payload["range_cache_delta_pct"] = round((ratios[1] - 1) * 100, 1)

    # The sequence-match memoization delta, measured with the same
    # paired-leg protocol: the uncached leg clears the suffix-match
    # cache once per trace, so the delta is again a conservative floor.
    # Identical-label pairs (the overwhelmingly common case) bypass the
    # memo entirely, so expect a small number on homogeneous-SRGB
    # corpora -- the cache only covers the differing-label arithmetic.
    def detect_all_seq_uncached() -> int:
        total = 0
        for trace, fingerprints in corpus:
            _suffix_match_default.cache_clear()
            total += len(detector.detect(trace, fingerprints))
        return total

    detect_all_seq_uncached()
    seq_cached_s: list[float] = []
    seq_uncached_s: list[float] = []
    for _ in range(3):
        gc.disable()
        tick = time.perf_counter()
        detect_all()
        seq_cached_s.append(time.perf_counter() - tick)
        tick = time.perf_counter()
        detect_all_seq_uncached()
        seq_uncached_s.append(time.perf_counter() - tick)
        gc.enable()
    seq_ratios = sorted(
        u / c for c, u in zip(seq_cached_s, seq_uncached_s)
    )
    payload["seq_match_cache_delta_pct"] = round(
        (seq_ratios[1] - 1) * 100, 1
    )

    # -- columnar batch path ----------------------------------------------
    # Build once, detect many: the archived-campaign re-detection shape
    # (OPERATIONS.md).  Build throughput is reported separately so the
    # ops_per_sec numbers compare pure detection work on both paths.
    tick = time.perf_counter()
    batch = TraceBatch.from_pairs(corpus)
    build_s = time.perf_counter() - tick
    columnar = ColumnarDetector()
    # the differential contract, enforced on the bench corpus itself:
    # the speedup below is only meaningful for byte-identical output
    reference = [
        detector.detect(trace, fingerprints)
        for trace, fingerprints in corpus
    ]
    assert columnar.detect_batch(batch) == reference
    batch_s: list[float] = []
    for _ in range(5):
        gc.disable()
        tick = time.perf_counter()
        detections = columnar.detect_batch(batch)
        batch_s.append(time.perf_counter() - tick)
        gc.enable()
    columnar_ops = len(corpus) / min(batch_s)
    object_ops = len(corpus) / min(cached_s)
    payload["columnar_ops_per_sec"] = round(columnar_ops, 1)
    payload["columnar_build_traces_per_sec"] = round(
        len(corpus) / build_s, 1
    )
    payload["columnar_speedup"] = round(columnar_ops / object_ops, 2)
    emit(
        f"columnar: {columnar_ops:,.0f} traces/s over built batch "
        f"({payload['columnar_speedup']}x object path; build "
        f"{len(corpus) / build_s:,.0f} traces/s)"
    )
    assert sum(len(d) for d in detections) == segments
    assert payload["columnar_speedup"] >= MIN_COLUMNAR_SPEEDUP

    atomic_write_text(
        BENCH_FILENAME, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(f"machine-readable stats -> {BENCH_FILENAME}")

    assert segments > 0
    # "lightweight": the paper's 7.7M-trace campaign must post-process
    # in minutes on one core, i.e. well under 1 ms per trace.
    assert benchmark.stats["mean"] / len(corpus) < 1e-3
