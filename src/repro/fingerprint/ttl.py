"""TTL-based router fingerprinting (Vanaubel et al. 2013).

A router's OS picks a fixed initial TTL for the ICMP messages it
originates.  The vantage point observes the *remaining* TTL; rounding it
up to the next plausible initial value (32, 64, 128, 255) recovers the
initial, and the ``<time-exceeded, echo-reply>`` pair forms a signature.

The signature only narrows the router down to a *class* of vendors: the
paper leans on ``<255, 255>`` mapping to {Cisco, Huawei}, whose default
SRGBs intersect in [16,000; 23,999].
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.forwarding import ForwardingEngine, ReplyKind
from repro.fingerprint.records import Fingerprint
from repro.netsim.vendors import TTLSignature, ttl_signature_class

#: plausible initial TTLs, ascending (RFC 1700-era conventions)
_INITIAL_TTLS = (32, 64, 128, 255)


def infer_initial_ttl(observed_ttl: int) -> int | None:
    """Round a remaining TTL up to the router's likely initial value.

    Returns None for implausible observations (0 or > 255).
    """
    if not 1 <= observed_ttl <= 255:
        return None
    for initial in _INITIAL_TTLS:
        if observed_ttl <= initial:
            return initial
    return None  # pragma: no cover - unreachable given the guard


class TtlFingerprinter:
    """Builds TTL signatures by combining traceroute replies with pings.

    The time-exceeded half comes for free with every traceroute hop;
    the echo-reply half requires an extra ping to the interface, which
    real campaigns batch after the traceroute runs (TNT does this
    natively).
    """

    def __init__(self, engine: ForwardingEngine) -> None:
        self._engine = engine

    def fingerprint(
        self,
        address: IPv4Address,
        time_exceeded_ttl: int | None,
        vp_router_id: int,
    ) -> Fingerprint:
        """Fingerprint one interface.

        ``time_exceeded_ttl`` is the remaining reply TTL recorded on the
        traceroute hop (None when the hop never answered -- in which case
        no TTL fingerprint is possible, matching the paper's coverage
        limits).
        """
        if time_exceeded_ttl is None:
            return Fingerprint.none()
        te_initial = infer_initial_ttl(time_exceeded_ttl)
        if te_initial is None:
            return Fingerprint.none()
        echo = self._engine.ping(vp_router_id, address)
        if echo is None or echo.kind is not ReplyKind.ECHO_REPLY:
            return Fingerprint.none()
        echo_initial = infer_initial_ttl(echo.reply_ip_ttl)
        if echo_initial is None:
            return Fingerprint.none()
        try:
            signature = TTLSignature(te_initial, echo_initial)
        except ValueError:
            return Fingerprint.none()
        vendor_class = ttl_signature_class(signature)
        if not vendor_class:
            return Fingerprint.none()
        return Fingerprint.from_ttl(vendor_class)
