"""Fig. 8 -- proportion of SR segments per AReST detection flag, per AS.

Regenerates the per-AS flag mix over the full 41-AS campaign and checks
the paper's qualitative claims: LSO most frequent overall, CO the top
strong flag, CVR/LSVR/LVR concentrated in fingerprint-rich ASes, and
detections concentrated in Content/Transit/Tier-1 networks.
"""

from collections import Counter

from repro.analysis.report import render_flag_proportions
from repro.core.flags import Flag
from repro.topogen.as_types import AsRole

from benchmarks.conftest import emit


def test_bench_fig8_flag_proportions(benchmark, portfolio_results):
    def aggregate():
        totals = Counter()
        for result in portfolio_results.values():
            totals.update(result.analysis.flag_counts())
        return totals

    totals = benchmark(aggregate)
    emit(render_flag_proportions(portfolio_results))
    emit(f"portfolio flag totals: "
         + ", ".join(f"{f.name}={totals[f]}" for f in Flag))

    # Shape 1: LSO is the most frequently observed flag, CO the top
    # strong indicator (Sec. 6.2).
    assert totals[Flag.LSO] >= totals[Flag.CVR]
    assert totals[Flag.CO] > 0 and totals[Flag.CVR] > 0
    assert totals[Flag.LVR] > 0

    # Shape 2: detections live in Content/Transit/Tier-1, not stubs.
    stub_detections = sum(
        r.analysis.total_distinct_segments()
        for r in portfolio_results.values()
        if r.spec.role is AsRole.STUB
        and r.analysis.has_sr_evidence(strong_only=True)
    )
    big_detections = sum(
        r.analysis.total_distinct_segments()
        for r in portfolio_results.values()
        if r.spec.role is not AsRole.STUB
    )
    assert big_detections > stub_detections * 10

    # Shape 3: the fingerprint-rich ASes (#31, #38, #40, #55) carry the
    # bulk of the vendor-range flags (Sec. 6.2).
    rich = {31, 38, 40, 55}
    rich_range_flags = sum(
        portfolio_results[i].analysis.flag_counts()[f]
        for i in rich
        for f in (Flag.CVR, Flag.LSVR, Flag.LVR)
    )
    assert rich_range_flags > 0
    per_as_range_flags = {
        as_id: sum(
            r.analysis.flag_counts()[f]
            for f in (Flag.CVR, Flag.LSVR, Flag.LVR)
        )
        for as_id, r in portfolio_results.items()
    }
    top_contributors = sorted(
        per_as_range_flags, key=per_as_range_flags.get, reverse=True
    )[:8]
    assert rich & set(top_contributors)

    # Shape 4: suffix-based matches are rare (paper: 0.01%).
    suffix = sum(
        r.analysis.suffix_matched_runs for r in portfolio_results.values()
    )
    runs = sum(
        r.analysis.consecutive_runs for r in portfolio_results.values()
    )
    assert suffix / max(runs, 1) < 0.05
