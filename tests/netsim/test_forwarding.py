"""Tests for the forwarding engine: TTL semantics, tunnel visibility,
interworking, service SIDs, PHP/UHP, ECMP determinism."""

import pytest

from repro.netsim.forwarding import ReplyKind
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor

from tests.conftest import TARGET_ASN, ChainNetwork


def collect_hops(chain: ChainNetwork, max_ttl: int = 20):
    """(ttl, reply) pairs until the destination answers."""
    hops = []
    for ttl in range(1, max_ttl + 1):
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, ttl
        )
        hops.append((ttl, reply))
        if reply is not None and reply.kind is not ReplyKind.TIME_EXCEEDED:
            break
    return hops


class TestExplicitSrTunnel:
    def test_every_hop_answers(self, sr_chain):
        hops = collect_hops(sr_chain)
        # 5 routers + destination = 6 replies, no gaps
        assert len(hops) == 6
        assert all(reply is not None for _ttl, reply in hops)

    def test_interior_hops_quote_the_same_label(self, sr_chain):
        hops = collect_hops(sr_chain)
        quoted = [
            r.quoted_stack
            for _t, r in hops
            if r is not None and r.quoted_stack
        ]
        assert len(quoted) == 3  # r1, r2, r3 (r0 pushes, r4 after PHP)
        labels = {stack[0].label for stack in quoted}
        assert len(labels) == 1  # persistent SR label
        label = labels.pop()
        assert 16_000 <= label <= 23_999  # Cisco SRGB

    def test_destination_reply_kind(self, sr_chain):
        hops = collect_hops(sr_chain)
        last = hops[-1][1]
        assert last is not None
        assert last.kind is ReplyKind.DEST_UNREACHABLE
        assert last.source_ip == sr_chain.target

    def test_quoted_lse_ttl_is_one(self, sr_chain):
        # Uniform model: the stack arrives with TTL 1 at the expiring hop.
        hops = collect_hops(sr_chain)
        for _t, reply in hops:
            if reply is not None and reply.quoted_stack:
                assert reply.quoted_stack[0].ttl == 1


class TestExplicitLdpTunnel:
    def test_labels_change_hop_by_hop(self, ldp_chain):
        hops = collect_hops(ldp_chain)
        labels = [
            r.quoted_stack[0].label
            for _t, r in hops
            if r is not None and r.quoted_stack
        ]
        assert len(labels) == 3
        assert len(set(labels)) == 3  # local significance


class TestPipeModeTunnels:
    def test_opaque_single_quoted_hop(self):
        chain = ChainNetwork(propagate=False, rfc4950=True)
        hops = collect_hops(chain)
        quoted = [
            (t, r) for t, r in hops if r is not None and r.quoted_stack
        ]
        assert len(quoted) == 1
        _t, reply = quoted[0]
        # The quoted LSE-TTL betrays the hidden length (255 - k).
        assert reply.quoted_stack[0].ttl >= 250

    def test_opaque_hidden_length_inference(self):
        chain = ChainNetwork(length=6, propagate=False, rfc4950=True)
        hops = collect_hops(chain)
        quoted = [
            r for _t, r in hops if r is not None and r.quoted_stack
        ]
        assert len(quoted) == 1
        hidden = 255 - quoted[0].quoted_stack[0].ttl
        # chain of 6: push at r0 (TTL 255), decrements at r1..r3; the
        # quoting EH (r4, PHP) quotes the stack as received: 252
        assert hidden == 3

    def test_invisible_tunnel_shows_nothing(self):
        chain = ChainNetwork(propagate=False, rfc4950=False)
        hops = collect_hops(chain)
        assert all(
            r is None or not r.quoted_stack for _t, r in hops
        )
        # The tunnel collapses: far fewer visible hops than routers.
        answered = [r for _t, r in hops if r is not None]
        assert len(answered) < 6

    def test_implicit_tunnel_hops_visible_without_quotes(self):
        chain = ChainNetwork(propagate=True, rfc4950=False)
        hops = collect_hops(chain)
        assert len(hops) == 6
        assert all(
            r is not None and not r.quoted_stack for _t, r in hops
        )


class TestTtlAccounting:
    def test_hop_positions_consecutive_in_uniform_mode(self, sr_chain):
        hops = collect_hops(sr_chain)
        responders = [r.truth_router_id for _t, r in hops if r is not None]
        expected = [r.router_id for r in sr_chain.routers]
        assert responders[:-1] == expected

    def test_zero_ttl_rejected(self, sr_chain):
        with pytest.raises(ValueError):
            sr_chain.engine.forward_probe(sr_chain.vp.router_id, sr_chain.target, 0)

    def test_unroutable_destination_dropped(self, sr_chain):
        from repro.netsim.addressing import IPv4Address

        reply = sr_chain.engine.forward_probe(
            sr_chain.vp.router_id,
            IPv4Address.from_string("203.0.113.99"),
            5,
        )
        assert reply is None


class TestSilentRouters:
    def test_icmp_silent_router_is_a_star(self, sr_chain):
        sr_chain.routers[2].icmp_silent = True
        hops = collect_hops(sr_chain)
        silent = [
            r for _t, r in hops
            if r is not None
            and r.truth_router_id == sr_chain.routers[2].router_id
            and r.kind is ReplyKind.TIME_EXCEEDED
        ]
        assert silent == []
        assert hops[2][1] is None  # ttl 3 gets no answer


class TestServiceSids:
    def _chain(self, php=True):
        return ChainNetwork(
            php=php,
            policy=TunnelPolicy(
                asn=TARGET_ASN, service_sid_share=1.0, second_service_share=0.0
            ),
        )

    def test_php_tail_quotes_service_label_only(self):
        chain = self._chain(php=True)
        hops = collect_hops(chain)
        quoted = [
            r.quoted_stack for _t, r in hops
            if r is not None and r.quoted_stack
        ]
        # interior hops carry [transport, service]; the egress, after
        # PHP stripped the transport, quotes the lone service label
        assert all(len(q) == 2 for q in quoted[:-1])
        assert len(quoted[-1]) == 1
        assert chain.controller.services.is_service_label(
            chain.egress.router_id, quoted[-1][0].label
        )

    def test_uhp_keeps_unshrinking_stack(self):
        chain = self._chain(php=False)
        hops = collect_hops(chain)
        quoted = [
            r.quoted_stack for _t, r in hops
            if r is not None and r.quoted_stack
        ]
        # UHP: the stack never shrinks before the segment endpoint
        assert all(len(q) == 2 for q in quoted)

    def test_delivery_still_works(self):
        for php in (True, False):
            chain = self._chain(php=php)
            hops = collect_hops(chain)
            assert hops[-1][1].kind is ReplyKind.DEST_UNREACHABLE


class TestInterworking:
    def _hybrid(self, ldp_head: bool):
        """VP -> b0 -> c1 -> c2 -> c3 -> pe, half SR / half LDP."""
        net = Network()
        vp = net.add_router("vp", 64_900, role=RouterRole.VANTAGE)
        names = ["b0", "c1", "c2", "c3", "pe"]
        routers = []
        prev = vp
        for name in names:
            r = net.add_router(name, TARGET_ASN, vendor=Vendor.CISCO)
            net.add_link(prev, r)
            routers.append(r)
            prev = r
        prefix = net.announce_prefix(routers[-1], 24)
        igp = ShortestPaths(net)
        ldp = LdpState(net, seed=2)
        domain = SegmentRoutingDomain(net, asn=TARGET_ASN, seed=2)
        if ldp_head:
            sr_side, ldp_side = routers[2:], routers[:3]  # c2 is border
        else:
            sr_side, ldp_side = routers[:3], routers[2:]
        for r in sr_side:
            domain.enroll(r)
        for r in ldp_side:
            r.ldp_enabled = True
        for r in routers:
            if r not in sr_side:
                domain.add_mapping_server_entry(r)
        controller = TunnelController(net, igp, ldp, {TARGET_ASN: domain})
        controller.set_policy(TunnelPolicy(asn=TARGET_ASN))
        from repro.netsim.forwarding import ForwardingEngine

        engine = ForwardingEngine(net, igp, controller)
        return net, vp, prefix.address_at(9), engine, routers

    def test_sr_to_ldp_stitching(self):
        net, vp, target, engine, routers = self._hybrid(ldp_head=False)
        truth = engine.truth_walk(vp.router_id, target)
        planes = [
            t.received_planes[0] for t in truth if t.received_planes
        ]
        assert "sr" in planes and "ldp" in planes
        # SR first, LDP afterwards: no 'sr' after the first 'ldp'
        first_ldp = planes.index("ldp")
        assert all(p == "ldp" for p in planes[first_ldp:])

    def test_ldp_to_sr_stitching(self):
        net, vp, target, engine, routers = self._hybrid(ldp_head=True)
        truth = engine.truth_walk(vp.router_id, target)
        planes = [
            t.received_planes[0] for t in truth if t.received_planes
        ]
        assert "ldp" in planes and "sr" in planes
        first_sr = planes.index("sr")
        assert all(p == "sr" for p in planes[first_sr:])

    def test_delivery_across_both_directions(self):
        for head in (True, False):
            net, vp, target, engine, routers = self._hybrid(ldp_head=head)
            reply = engine.forward_probe(vp.router_id, target, 30)
            assert reply is not None
            assert reply.kind is ReplyKind.DEST_UNREACHABLE


class TestEcmp:
    def _diamond(self):
        net = Network()
        vp = net.add_router("vp", 64_900, role=RouterRole.VANTAGE)
        a = net.add_router("a", TARGET_ASN)
        top = net.add_router("top", TARGET_ASN)
        bottom = net.add_router("bottom", TARGET_ASN)
        z = net.add_router("z", TARGET_ASN)
        net.add_link(vp, a)
        net.add_link(a, top)
        net.add_link(a, bottom)
        net.add_link(top, z)
        net.add_link(bottom, z)
        prefix = net.announce_prefix(z, 24)
        igp = ShortestPaths(net)
        controller = TunnelController(net, igp, LdpState(net), {})
        from repro.netsim.forwarding import ForwardingEngine

        return (
            ForwardingEngine(net, igp, controller),
            vp,
            prefix.address_at(1),
            top,
            bottom,
        )

    def test_same_flow_same_path(self):
        engine, vp, target, top, bottom = self._diamond()
        first = engine.forward_probe(vp.router_id, target, 2, flow_id=9)
        second = engine.forward_probe(vp.router_id, target, 2, flow_id=9)
        assert first.truth_router_id == second.truth_router_id

    def test_flows_spread_over_ecmp(self):
        engine, vp, target, top, bottom = self._diamond()
        responders = {
            engine.forward_probe(vp.router_id, target, 2, flow_id=f).truth_router_id
            for f in range(32)
        }
        assert responders == {top.router_id, bottom.router_id}


class TestPing:
    def test_echo_reply(self, sr_chain):
        interface = sr_chain.routers[1].interfaces[
            sr_chain.routers[0].router_id
        ]
        reply = sr_chain.engine.ping(sr_chain.vp.router_id, interface)
        assert reply is not None
        assert reply.kind is ReplyKind.ECHO_REPLY
        assert reply.source_ip == interface

    def test_ping_unresponsive_router(self, sr_chain):
        sr_chain.routers[1].responds_to_ping = False
        interface = sr_chain.routers[1].interfaces[
            sr_chain.routers[0].router_id
        ]
        assert sr_chain.engine.ping(sr_chain.vp.router_id, interface) is None

    def test_ping_unknown_address(self, sr_chain):
        from repro.netsim.addressing import IPv4Address

        assert (
            sr_chain.engine.ping(
                sr_chain.vp.router_id,
                IPv4Address.from_string("203.0.113.80"),
            )
            is None
        )


class TestReplyTtls:
    def test_cisco_time_exceeded_initial_255(self, sr_chain):
        hops = collect_hops(sr_chain)
        first = hops[0][1]
        assert first is not None
        # responder is 1 hop from the VP: 255 - 1
        assert first.reply_ip_ttl == 254

    def test_reply_ttl_decreases_with_distance(self, sr_chain):
        hops = collect_hops(sr_chain)
        ttls = [
            r.reply_ip_ttl
            for _t, r in hops
            if r is not None and r.kind is ReplyKind.TIME_EXCEEDED
        ]
        assert ttls == sorted(ttls, reverse=True)


class TestTruthWalk:
    def test_truth_covers_full_path(self, sr_chain):
        truth = sr_chain.engine.truth_walk(
            sr_chain.vp.router_id, sr_chain.target
        )
        ids = [t.router_id for t in truth]
        assert ids == [r.router_id for r in sr_chain.routers]

    def test_push_flag_set_at_ingress(self, sr_chain):
        truth = sr_chain.engine.truth_walk(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert truth[0].pushed
        assert not any(t.pushed for t in truth[1:])

    def test_received_labels_recorded(self, sr_chain):
        truth = sr_chain.engine.truth_walk(
            sr_chain.vp.router_id, sr_chain.target
        )
        assert truth[0].received_labels == ()
        for t in truth[1:-1]:
            assert t.received_labels
            assert t.received_planes[0] == "sr"


class TestIcmpRateLimiting:
    def test_policed_flow_shows_stars(self, sr_chain):
        sr_chain.routers[2].icmp_response_rate = 0.0
        from repro.probing.traceroute import ParisTraceroute

        trace = ParisTraceroute(sr_chain.engine).trace(
            sr_chain.vp.router_id, sr_chain.target
        )
        starred = [h for h in trace.hops if h.address is None]
        assert len(starred) == 1
        assert trace.reached  # later hops still answer

    def test_policing_is_per_flow_deterministic(self, sr_chain):
        sr_chain.routers[2].icmp_response_rate = 0.5
        replies = set()
        for flow in range(20):
            reply = sr_chain.engine.forward_probe(
                sr_chain.vp.router_id, sr_chain.target, 3, flow_id=flow
            )
            replies.add(reply is not None)
            again = sr_chain.engine.forward_probe(
                sr_chain.vp.router_id, sr_chain.target, 3, flow_id=flow
            )
            assert (reply is None) == (again is None)  # stable per flow
        assert replies == {True, False}  # ...but varied across flows

    def test_full_rate_never_drops(self, sr_chain):
        for flow in range(10):
            assert (
                sr_chain.engine.forward_probe(
                    sr_chain.vp.router_id, sr_chain.target, 3, flow_id=flow
                )
                is not None
            )


class TestExplicitNull:
    def _chain(self):
        chain = ChainNetwork(length=5)
        chain.sr_domain.explicit_null = True
        return chain

    def test_endpoint_quotes_label_zero(self):
        chain = self._chain()
        from repro.probing.traceroute import ParisTraceroute

        trace = ParisTraceroute(chain.engine).trace(
            chain.vp.router_id, chain.target
        )
        egress_hop = trace.hops[-2]
        assert egress_hop.lses is not None
        assert egress_hop.lses[0].label == 0

    def test_delivery(self):
        chain = self._chain()
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_detector_ignores_the_null_hop(self):
        chain = self._chain()
        from repro.core.detector import ArestDetector
        from repro.core.flags import Flag
        from repro.probing.tnt import TntProber

        trace = TntProber(chain.engine, seed=2).trace(
            chain.vp.router_id, chain.target
        )
        segments = ArestDetector().detect(trace, {})
        assert [s.flag for s in segments] == [Flag.CO]
        assert 0 not in segments[0].top_labels
