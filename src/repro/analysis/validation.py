"""Ground-truth validation (Table 3) and the Sec. 6.2 headline metrics.

The simulator knows exactly which interfaces forwarded SR-labelled
packets, playing the role of the ESnet operator who manually reviewed
every AReST inference.  Scoring follows the paper's definitions: a true
positive is a segment (or interface) flagged SR that is actually SR; a
false positive is one that is only traditional MPLS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.campaign.runner import AsCampaignResult
from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.probing.records import Trace, truth_transport_is_sr

#: backwards-friendly alias used throughout the validation code
truth_hop_is_sr = truth_transport_is_sr


def segment_truth(trace: Trace, segment: DetectedSegment) -> bool:
    """A flagged segment is a true positive when every hop is SR."""
    return all(truth_hop_is_sr(trace, i) for i in segment.hop_indices)


@dataclass(slots=True)
class FlagValidation:
    """Table 3 row: per-flag distinct segment counts and TP/FP rates."""

    flag: Flag
    distinct_segments: int = 0
    true_positives: int = 0
    false_positives: int = 0

    @property
    def tp_rate(self) -> float:
        """True positives over all validated segments."""
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def fp_rate(self) -> float:
        """False positives over all validated segments."""
        total = self.true_positives + self.false_positives
        return self.false_positives / total if total else 0.0


@dataclass(slots=True)
class ValidationReport:
    """Full Table 3-style validation for one AS campaign."""

    as_id: int
    asn: int
    per_flag: dict[Flag, FlagValidation] = field(default_factory=dict)
    #: interface-level scoring
    detected_sr_addresses: int = 0
    interface_tp: int = 0
    interface_fp: int = 0
    interface_fn: int = 0

    def total_segments(self) -> int:
        """Distinct segments across all flags."""
        return sum(v.distinct_segments for v in self.per_flag.values())

    def flag_share(self, flag: Flag) -> float:
        """One flag's share of the distinct segments."""
        total = self.total_segments()
        if total == 0:
            return 0.0
        return self.per_flag[flag].distinct_segments / total

    @property
    def interface_precision(self) -> float:
        """TP / (TP + FP) over flagged interfaces."""
        denom = self.interface_tp + self.interface_fp
        return self.interface_tp / denom if denom else 1.0

    @property
    def interface_recall(self) -> float:
        """TP / (TP + FN) over truly-SR interfaces."""
        denom = self.interface_tp + self.interface_fn
        return self.interface_tp / denom if denom else 1.0


def validate_against_truth(result: AsCampaignResult) -> ValidationReport:
    """Score one AS campaign's detections against simulator truth."""
    report = ValidationReport(as_id=result.as_id, asn=result.spec.asn)
    for flag in Flag:
        report.per_flag[flag] = FlagValidation(flag=flag)
    seen: set[tuple] = set()
    for trace, segments in result.trace_segments:
        for segment in segments:
            key = segment.key()
            if key in seen:
                continue
            seen.add(key)
            validation = report.per_flag[segment.flag]
            validation.distinct_segments += 1
            if segment_truth(trace, segment):
                validation.true_positives += 1
            else:
                validation.false_positives += 1
    detected = result.analysis.sr_addresses
    truth_sr = result.truth.sr_addresses
    report.detected_sr_addresses = len(detected)
    report.interface_tp = len(detected & truth_sr)
    report.interface_fp = len(detected - truth_sr)
    report.interface_fn = len(truth_sr - detected)
    return report


@dataclass(slots=True)
class HeadlineDetection:
    """Sec. 6.2 headline: detection rates over the portfolio."""

    confirmed_total: int = 0
    confirmed_detected: int = 0
    confirmed_detected_strong: int = 0
    unconfirmed_total: int = 0
    unconfirmed_detected: int = 0
    unconfirmed_lso_dominated: int = 0

    @property
    def confirmed_rate(self) -> float:
        """Detected share of the confirmed ASes (paper: 75%)."""
        if self.confirmed_total == 0:
            return 0.0
        return self.confirmed_detected / self.confirmed_total

    @property
    def strong_share_of_detected(self) -> float:
        """Detections led by CVR/CO (paper: 60%)."""
        if self.confirmed_detected == 0:
            return 0.0
        return self.confirmed_detected_strong / self.confirmed_detected

    @property
    def unconfirmed_rate(self) -> float:
        """Evidence share among unconfirmed ASes (paper: 94%)."""
        if self.unconfirmed_total == 0:
            return 0.0
        return self.unconfirmed_detected / self.unconfirmed_total


def headline_detection(
    results: Mapping[int, AsCampaignResult] | Iterable[AsCampaignResult],
) -> HeadlineDetection:
    """Aggregate the Sec. 6.2 headline numbers over campaign results."""
    if isinstance(results, Mapping):
        results = results.values()
    headline = HeadlineDetection()
    for result in results:
        analysis = result.analysis
        detected = analysis.has_sr_evidence(strong_only=False)
        counts = analysis.flag_counts()
        lso = counts.get(Flag.LSO, 0)
        total = analysis.total_distinct_segments()
        if result.spec.confirmation.confirmed:
            headline.confirmed_total += 1
            if detected:
                headline.confirmed_detected += 1
                strong = sum(
                    counts.get(f, 0) for f in (Flag.CVR, Flag.CO)
                )
                if total and strong / total >= 0.5:
                    headline.confirmed_detected_strong += 1
        else:
            headline.unconfirmed_total += 1
            if detected:
                headline.unconfirmed_detected += 1
                if total and lso / total >= 0.9:
                    headline.unconfirmed_lso_dominated += 1
    return headline
