"""Tests for shared utilities: determinism and table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.util.determinism import DeterministicRng, int_hash, unit_hash
from repro.util.tables import format_table


class TestIntHash:
    def test_stable(self):
        assert int_hash("a", 1) == int_hash("a", 1)

    def test_distinct_keys(self):
        assert int_hash("a", 1) != int_hash("a", 2)
        assert int_hash("a", 1) != int_hash("b", 1)

    def test_order_matters(self):
        assert int_hash("a", "b") != int_hash("b", "a")

    def test_64_bit(self):
        assert 0 <= int_hash("x") < 2**64

    def test_no_separator_ambiguity(self):
        # "ab" + "c" must not hash like "a" + "bc"
        assert int_hash("ab", "c") != int_hash("a", "bc")


class TestUnitHash:
    @given(st.text(max_size=20), st.integers())
    def test_in_unit_interval(self, text, number):
        value = unit_hash(text, number)
        assert 0.0 <= value < 1.0

    def test_roughly_uniform(self):
        draws = [unit_hash("u", i) for i in range(2_000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55
        assert sum(1 for d in draws if d < 0.1) == pytest.approx(
            200, rel=0.35
        )


class TestDeterministicRng:
    def test_same_key_same_stream(self):
        a = DeterministicRng("k", 1)
        b = DeterministicRng("k", 1)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_keys_differ(self):
        a = DeterministicRng("k", 1)
        b = DeterministicRng("k", 2)
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_full_random_api(self):
        rng = DeterministicRng("api")
        assert rng.sample(range(10), 3)
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        items = list(range(5))
        rng.shuffle(items)
        assert sorted(items) == list(range(5))


class TestFormatTable:
    def test_column_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].index("x") == lines[2].index("1")

    def test_float_formatting(self):
        assert "0.333" in format_table(["v"], [[1 / 3]])

    def test_title_optional(self):
        untitled = format_table(["v"], [[1]])
        assert not untitled.startswith("\n")
        titled = format_table(["v"], [[1]], title="T")
        assert titled.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "-" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])
