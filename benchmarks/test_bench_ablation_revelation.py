"""Ablation -- TNT revelation rate vs. hidden-tunnel visibility.

Invisible tunnels expose nothing to plain traceroute; TNT's revelation
probes recover the hidden addresses.  Sweeping the success rate shows
how much of the MPLS footprint the paper's tooling owes to TNT.
"""

from repro.campaign import CampaignRunner
from repro.probing.tunnels import TunnelType
from repro.util.tables import format_table

from benchmarks.conftest import emit

#: AS#29 (China Telecom): a confirmed pipe-mode (hidden) deployment
AS_ID = 29


def _observed(reveal_rate: float):
    runner = CampaignRunner(
        seed=1,
        reveal_success_rate=reveal_rate,
        vps_per_as=3,
        targets_per_as=18,
    )
    result = runner.run_as(AS_ID)
    analysis = result.analysis
    addresses = (
        len(analysis.sr_addresses)
        + len(analysis.mpls_addresses)
        + len(analysis.ip_addresses)
    )
    invisible = analysis.tunnel_types.get(TunnelType.INVISIBLE, 0)
    return addresses, invisible


def test_bench_ablation_revelation(benchmark):
    full_addresses, full_invisible = benchmark.pedantic(
        lambda: _observed(1.0), rounds=1, iterations=1
    )
    half_addresses, half_invisible = _observed(0.5)
    none_addresses, none_invisible = _observed(0.0)

    emit(
        format_table(
            ["reveal rate", "observed addresses", "invisible tunnels seen"],
            [
                ("1.0", full_addresses, full_invisible),
                ("0.5", half_addresses, half_invisible),
                ("0.0", none_addresses, none_invisible),
            ],
            title="Ablation -- TNT revelation on a hidden deployment (AS#29)",
        )
    )

    # Shape: revelation monotonically grows the observable footprint,
    # and without it the hidden tunnels disappear from the census.
    assert full_addresses >= half_addresses >= none_addresses
    assert full_addresses > none_addresses
    assert full_invisible > 0
