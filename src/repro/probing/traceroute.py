"""Paris traceroute over the simulated data plane.

Sends TTL-increasing UDP probes with a *constant flow identifier* so
per-flow ECMP keeps the path stable (Augustin et al.), records the
responding address, RTT, reply TTL and any RFC 4950-quoted label stack.

RTTs are synthesized from hop counts with deterministic jitter -- enough
for TNT-style heuristics (RTT jumps at tunnel entrances) to have
something to look at without pretending to model queueing.
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.forwarding import ForwardingEngine, ProbeReply, ReplyKind
from repro.probing.records import QuotedLse, Trace, TraceHop
from repro.util.determinism import unit_hash
from repro.util.retry import RetryAccounting, RetryPolicy

#: per-hop one-way latency used to synthesize RTTs, in milliseconds
_HOP_LATENCY_MS = 0.42
_MAX_CONSECUTIVE_STARS = 4


def _quote(reply: ProbeReply) -> tuple[QuotedLse, ...] | None:
    if reply.quoted_stack is None:
        return None
    return tuple(
        QuotedLse(
            label=e.label,
            tc=e.tc,
            bottom_of_stack=e.bottom_of_stack,
            ttl=e.ttl,
        )
        for e in reply.quoted_stack
    )


class ParisTraceroute:
    """A traceroute client bound to one forwarding engine."""

    def __init__(
        self,
        engine: ForwardingEngine,
        max_ttl: int = 40,
        seed: int = 0,
        retry: RetryPolicy | None = None,
    ) -> None:
        if max_ttl <= 0:
            raise ValueError("max_ttl must be positive")
        self._engine = engine
        self._max_ttl = max_ttl
        self._seed = seed
        self._retry = retry or RetryPolicy.none()
        self.accounting = RetryAccounting()

    @property
    def retry(self) -> RetryPolicy:
        """The per-probe retry policy."""
        return self._retry

    def trace(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        vp_name: str = "",
        flow_id: int | None = None,
    ) -> Trace:
        """Run one traceroute; the flow id defaults to a stable hash of
        (vp, destination) as Paris traceroute derives it from the tuple."""
        if flow_id is None:
            flow_id = int(unit_hash("flow", vp_router_id, destination) * 2**16)
        hops: list[TraceHop] = []
        reached = False
        stars = 0
        for ttl in range(1, self._max_ttl + 1):
            reply = self._probe_with_retries(
                vp_router_id, destination, ttl, flow_id
            )
            if reply is None:
                hops.append(TraceHop(probe_ttl=ttl, address=None))
                stars += 1
                if stars >= _MAX_CONSECUTIVE_STARS:
                    break
                continue
            stars = 0
            is_destination = reply.kind is not ReplyKind.TIME_EXCEEDED
            hops.append(
                self._hop_from_reply(ttl, reply, flow_id, is_destination)
            )
            if is_destination:
                reached = True
                break
        return Trace(
            vp=vp_name or f"vp{vp_router_id}",
            vp_router_id=vp_router_id,
            destination=destination,
            flow_id=flow_id,
            hops=tuple(hops),
            reached=reached,
        )

    def _probe_with_retries(
        self,
        vp_router_id: int,
        destination: IPv4Address,
        ttl: int,
        flow_id: int,
    ) -> ProbeReply | None:
        """Fire one probe, re-firing per the retry policy while silent.

        Each attempt redraws its loss fate in the fault injector (the
        ``attempt`` index keys the draw), so retries genuinely recover
        lost probes; a router that is ICMP-silent by configuration stays
        silent on every attempt, exactly as in the wild.
        """
        self.accounting.probes += 1
        reply = self._engine.forward_probe(
            vp_router_id, destination, ttl, flow_id
        )
        attempt = 1
        while reply is None and attempt < self._retry.max_attempts:
            self.accounting.retries += 1
            self.accounting.backoff_ms += self._retry.backoff_ms(attempt)
            reply = self._engine.forward_probe(
                vp_router_id, destination, ttl, flow_id, attempt=attempt
            )
            attempt += 1
        if reply is None and self._retry.enabled:
            self.accounting.exhausted += 1
        return reply

    def _hop_from_reply(
        self,
        ttl: int,
        reply: ProbeReply,
        flow_id: int,
        is_destination: bool = False,
    ) -> TraceHop:
        round_trip_hops = ttl + reply.truth_forward_hops
        jitter = unit_hash(self._seed, "rtt", flow_id, ttl) * 0.3
        rtt = round_trip_hops * _HOP_LATENCY_MS + jitter
        return TraceHop(
            probe_ttl=ttl,
            address=reply.source_ip,
            rtt_ms=round(rtt, 3),
            reply_ip_ttl=reply.reply_ip_ttl,
            lses=_quote(reply),
            destination_reply=is_destination,
            truth_router_id=reply.truth_router_id,
        )
