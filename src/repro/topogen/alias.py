"""Alias resolution: MIDAR / APPLE stand-ins.

MIDAR groups interfaces sharing a router's monotonic IP-ID counter;
APPLE prunes candidate aliases by path-length consistency.  The paper
feeds both tools' output to bdrmapIT to improve router annotation.

The simulator models the *observable* behaviour: each router maintains
one shared IP-ID counter across its interfaces (velocity test), and the
resolver recovers alias sets with a per-router success probability
(MIDAR's coverage is high but not total -- routers with random or zero
IP-ID fields resist the technique).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addressing import IPv4Address
from repro.netsim.topology import Network
from repro.util.determinism import unit_hash


@dataclass(frozen=True, slots=True)
class AliasSet:
    """Interfaces resolved onto one router."""

    addresses: tuple[IPv4Address, ...]

    def __len__(self) -> int:
        return len(self.addresses)


class IpIdCounter:
    """A shared, monotonically increasing IP-ID counter per router.

    MIDAR's monotonic bounds test relies on samples from aliases
    interleaving into one increasing sequence; the simulator exposes the
    counter so tests can exercise the velocity inference directly.
    """

    def __init__(self, router_id: int, seed: int = 0) -> None:
        self._value = int(unit_hash("ipid", seed, router_id) * 65_536)
        self._stride = 1 + int(unit_hash("ipid-v", seed, router_id) * 7)

    def sample(self) -> int:
        """The next IP-ID value (monotone modulo 2^16)."""
        self._value = (self._value + self._stride) % 65_536
        return self._value


class AliasResolver:
    """MIDAR/APPLE-style alias resolution over observed addresses."""

    def __init__(
        self,
        network: Network,
        success_rate: float = 0.9,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= success_rate <= 1.0:
            raise ValueError("success_rate must be within [0, 1]")
        self._network = network
        self._success_rate = success_rate
        self._seed = seed

    def resolve(self, addresses: set[IPv4Address]) -> list[AliasSet]:
        """Group observed addresses into alias sets.

        Routers failing the per-router success draw contribute singleton
        sets (their interfaces stay unresolved, as with real MIDAR
        misses); unknown addresses are dropped.
        """
        by_router: dict[int, list[IPv4Address]] = {}
        singletons: list[AliasSet] = []
        for address in sorted(addresses):
            owner = self._network.owner_of(address)
            if owner is None:
                continue
            if (
                unit_hash(self._seed, "midar", owner)
                < self._success_rate
            ):
                by_router.setdefault(owner, []).append(address)
            else:
                singletons.append(AliasSet(addresses=(address,)))
        sets = [
            AliasSet(addresses=tuple(addrs))
            for addrs in by_router.values()
        ]
        return sorted(
            sets + singletons, key=lambda s: s.addresses[0].value
        )
