"""LSE stack-size distributions (Fig. 9).

Fig. 9a: stack sizes observed inside segments flagged by the strong
flags (CVR, CO, LSVR, LVR).  Fig. 9b: stack sizes on traditional-MPLS
hops and LSO-flagged hops.  The paper's finding: stacks of size >= 2
appear roughly 20% more often in SR contexts, with ESnet and Execulink
showing deep "unshrinking" stacks in both.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.campaign.runner import AsCampaignResult


@dataclass(frozen=True, slots=True)
class StackSizeRow:
    """Per-AS stack-size distribution for one context."""

    as_id: int
    name: str
    context: str  # "strong-sr" or "mpls-lso"
    depth_counts: tuple[tuple[int, int], ...]  # (depth, count), ascending

    def total(self) -> int:
        """Hops counted in this context."""
        return sum(c for _d, c in self.depth_counts)

    def share_at_least(self, depth: int) -> float:
        """Share of hops with stack depth >= ``depth``."""
        total = self.total()
        if total == 0:
            return 0.0
        deep = sum(c for d, c in self.depth_counts if d >= depth)
        return deep / total


def _row(
    as_id: int, name: str, context: str, counter: Counter
) -> StackSizeRow:
    return StackSizeRow(
        as_id=as_id,
        name=name,
        context=context,
        depth_counts=tuple(sorted(counter.items())),
    )


def stack_size_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[StackSizeRow]:
    """Both Fig. 9 panels, ordered by AS id then context."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        analysis = result.analysis
        rows.append(
            _row(as_id, result.spec.name, "strong-sr", analysis.stack_depths_strong)
        )
        rows.append(
            _row(as_id, result.spec.name, "mpls-lso", analysis.stack_depths_other)
        )
    return rows


def aggregate_share_at_least(
    rows: list[StackSizeRow], context: str, depth: int = 2
) -> float:
    """Portfolio-wide share of stacks with size >= ``depth`` in one
    context (the Fig. 9 headline comparison)."""
    total = deep = 0
    for row in rows:
        if row.context != context:
            continue
        total += row.total()
        deep += sum(c for d, c in row.depth_counts if d >= depth)
    return deep / total if total else 0.0
