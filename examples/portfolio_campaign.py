#!/usr/bin/env python3
"""The full 41-AS measurement campaign (the paper's Sec. 5-7 pipeline).

Probes every analyzed AS of the Table 5 portfolio from its vantage
points, runs AReST, and prints the headline results: the Fig. 8 flag
mix, the Sec. 6.2 detection rates, and the Fig. 10 deployment view.
Optionally dumps every per-AS trace dataset as JSONL (the format the
paper's published data plays in this repo).

Run:  python examples/portfolio_campaign.py [output-dir]
"""

import sys
from pathlib import Path

from repro.analysis.report import render_deployment, render_flag_proportions
from repro.analysis.validation import headline_detection
from repro.campaign import CampaignRunner


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    runner = CampaignRunner(seed=1)
    print("running the 41-AS campaign (a few seconds) ...")
    results = runner.run_portfolio()

    print()
    print(render_flag_proportions(results))
    print()
    print(render_deployment(results))

    headline = headline_detection(results)
    print(
        f"\nSec. 6.2 headline: SR-MPLS detected in "
        f"{headline.confirmed_detected}/{headline.confirmed_total} "
        f"({headline.confirmed_rate:.0%}) of the confirmed ASes "
        "(paper: 75%)"
    )
    print(
        f"evidence in {headline.unconfirmed_detected}/"
        f"{headline.unconfirmed_total} ({headline.unconfirmed_rate:.0%}) "
        "of the unconfirmed ones (paper: 94%)"
    )

    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        for as_id, result in sorted(results.items()):
            path = output_dir / f"as{as_id:02d}_{result.spec.asn}.jsonl"
            result.dataset.dump_jsonl(path)
        print(f"\n{len(results)} trace datasets written to {output_dir}/")


if __name__ == "__main__":
    main()
