"""Campaign execution: from portfolio spec to analyzed dataset.

For each AS of interest the runner mirrors the paper's Sec. 5 workflow:

1. build the measurement internetwork for the AS (topogen);
2. build the Anaximander target list;
3. run TNT traceroutes from every selected vantage point (each VP
   probes the same targets, shuffled per VP);
4. fingerprint every responding interface (SNMPv3 first, TTL fallback);
5. annotate ownership bdrmapIT-style and run the AReST pipeline;
6. extract simulator ground truth for evaluation.

The runner survives an imperfect measurement plane: a seeded
:class:`~repro.netsim.faults.FaultPlan` (default off) injects probe
loss, ICMP rate limiting, blackouts and SNMP timeouts; a seeded
:class:`~repro.netsim.dynamics.ChurnPlan` (default off) mutates the
network *under* the probes -- link flaps with IGP reconvergence
transients, RSVP-TE LSP churn, SR migration waves -- confined to the
probe stage and quiesced before analysis; a bounded
:class:`~repro.util.retry.RetryPolicy` re-fires unanswered probes; and
:meth:`CampaignRunner.run_portfolio` isolates per-AS errors, reports
partial results through a :class:`CampaignReport`, and can checkpoint
completed ASes to JSON so interrupted runs resume where they left off.

It also survives an imperfect *execution* plane: per-AS tasks run
under the supervised engine of :mod:`repro.campaign.executor`
(``jobs=N`` bounded process pool, per-AS wall-clock deadlines, hung /
SIGKILLed workers re-dispatched once then quarantined, SIGINT/SIGTERM
drained gracefully), with the guarantee that report and checkpoint are
byte-identical for any ``jobs`` value.
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.checkpoint import (
    CampaignCheckpoint,
    CheckpointEntry,
    FailureStub,
    QuarantineStub,
)
from repro.campaign.dataset import TraceDataset
from repro.campaign.executor import (
    GracefulShutdown,
    SupervisedExecutor,
    TaskOutcome,
    TaskStatus,
)
from repro.campaign.vantage_points import VantagePoint, default_vantage_points
from repro.core.pipeline import ArestPipeline, AsAnalysis
from repro.core.segments import DetectedSegment
from repro.fingerprint.combined import CombinedFingerprinter
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.addressing import IPv4Address
from repro.netsim.dynamics import ChurnPlan, NetworkDynamics
from repro.netsim.faults import FaultCounters, FaultInjector, FaultPlan
from repro.obs.session import TelemetrySession
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, merge_counters
from repro.obs.trace import TraceContext
from repro.probing.records import Trace, truth_transport_is_sr
from repro.probing.tnt import TntProber
from repro.topogen.alias import AliasResolver, AliasSet
from repro.topogen.anaximander import build_target_list
from repro.topogen.bdrmapit import BdrmapIt
from repro.topogen.internet import MeasurementNetwork, build_measurement_network
from repro.topogen.portfolio import AsSpec, Portfolio, default_portfolio
from repro.util.determinism import DeterministicRng
from repro.util.retry import RetryAccounting, RetryPolicy

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class GroundTruth:
    """What the simulator knows and the paper's operators confirmed."""

    deploys_sr: bool
    #: interface addresses that actually forwarded SR-labelled packets
    sr_addresses: set[IPv4Address] = field(default_factory=set)
    #: interface addresses that forwarded MPLS (LDP) without SR top label
    ldp_addresses: set[IPv4Address] = field(default_factory=set)


@dataclass(slots=True)
class AsCampaignResult:
    """Everything the campaign produced for one AS."""

    spec: AsSpec
    dataset: TraceDataset
    analysis: AsAnalysis
    fingerprints: dict[IPv4Address, Fingerprint]
    truth: GroundTruth
    #: (trace, detected segments) pairs for validation
    trace_segments: list[tuple[Trace, list[DetectedSegment]]] = field(
        default_factory=list
    )
    #: MIDAR/APPLE-style alias sets over the observed addresses
    alias_sets: list[AliasSet] = field(default_factory=list)
    #: faults injected while measuring this AS (all zero when fault-free)
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    #: retry cost of the probing stage
    retry_accounting: RetryAccounting = field(default_factory=RetryAccounting)

    @property
    def as_id(self) -> int:
        """The Table 5 identifier of the probed AS."""
        return self.spec.as_id

    @property
    def traces_quarantined(self) -> int:
        """Traces the sanitizer withheld from this AS's analysis."""
        return self.analysis.traces_quarantined

    @property
    def anomalies(self):
        """Structured sanitizer anomaly records for this AS."""
        return self.analysis.anomalies

    def router_count(self) -> int:
        """Distinct routers behind the observed interfaces, per the
        alias resolution (the paper reports both views: "103 distinct IP
        interfaces" aggregates to fewer boxes)."""
        return len(self.alias_sets)

    def sr_router_count(self) -> int:
        """Alias sets containing at least one SR-flagged interface."""
        sr = self.analysis.sr_addresses
        return sum(
            1
            for alias_set in self.alias_sets
            if any(a in sr for a in alias_set.addresses)
        )

    def fingerprint_method_counts(self) -> dict[FingerprintMethod, int]:
        """How many interfaces each fingerprint method resolved."""
        counts: dict[FingerprintMethod, int] = {}
        for fp in self.fingerprints.values():
            counts[fp.method] = counts.get(fp.method, 0) + 1
        return counts


@dataclass(slots=True)
class AsFailure:
    """One AS run that errored; the rest of the portfolio continued."""

    as_id: int
    stage: str
    error: str
    #: faults injected before the failure hit (partial tallies)
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    #: retry cost sunk before the failure hit (partial tallies)
    retry_accounting: RetryAccounting = field(default_factory=RetryAccounting)


@dataclass(slots=True)
class AsQuarantine:
    """One AS whose workers hung or crashed past the re-dispatch budget."""

    as_id: int
    #: "timeout", "hung" or "crash"
    reason: str
    #: dispatch attempts consumed before the circuit breaker opened
    attempts: int
    detail: str
    #: last stage heartbeat the final worker delivered before dying
    last_stage: str | None = None
    #: supervisor-observed seconds per heartbeat stage of the final
    #: attempt (the post-mortem of where the worker spent its life)
    stage_seconds: dict[str, float] = field(default_factory=dict)


class CampaignReport(Mapping):
    """Portfolio outcome: per-AS results, failures, fault/retry tallies.

    Behaves as a ``Mapping[int, AsCampaignResult]`` over the *successful*
    ASes, so every consumer of the former plain-dict return value (flag
    tables, headline detection, benchmarks) keeps working unchanged.
    """

    def __init__(self) -> None:
        self._results: dict[int, AsCampaignResult] = {}
        #: AS id -> recorded failure
        self.failures: dict[int, AsFailure] = {}
        #: AS id -> poison-task quarantine (deadline/crash circuit breaker)
        self.quarantined: dict[int, AsQuarantine] = {}
        #: True when a shutdown request (SIGINT/SIGTERM) cut the run short
        self.interrupted = False
        #: aggregated fault tallies across all completed ASes
        self.fault_counters = FaultCounters()
        #: aggregated retry cost across all completed ASes
        self.retry_accounting = RetryAccounting()
        #: ASes restored from a checkpoint instead of re-measured
        self.resumed_as_ids: list[int] = []
        #: traces the sanitizer quarantined across all completed ASes
        self.traces_quarantined = 0
        #: sanitizer anomaly tallies by kind across all completed ASes
        self.anomaly_counts: dict[str, int] = {}

    # -- Mapping protocol over the successful results --------------------------

    def __getitem__(self, as_id: int) -> AsCampaignResult:
        return self._results[as_id]

    def __iter__(self):
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    # -- assembly ---------------------------------------------------------------

    def add(self, result: AsCampaignResult, resumed: bool = False) -> None:
        """Record one completed AS and fold in its tallies."""
        self._results[result.as_id] = result
        self.fault_counters.merge(result.fault_counters)
        self.retry_accounting.merge(result.retry_accounting)
        self.traces_quarantined += result.analysis.traces_quarantined
        for kind, count in result.analysis.anomaly_counts().items():
            self.anomaly_counts[kind] = (
                self.anomaly_counts.get(kind, 0) + count
            )
        if resumed:
            self.resumed_as_ids.append(result.as_id)

    def record_failure(
        self,
        as_id: int,
        stage: str,
        error: Exception | str,
        fault_counters: FaultCounters | None = None,
        retry_accounting: RetryAccounting | None = None,
    ) -> None:
        """Record one failed AS without aborting the portfolio.

        The fault/retry cost the AS sank *before* failing is folded
        into the portfolio tallies, so partial work is accounted for
        rather than silently dropped.
        """
        if isinstance(error, BaseException):
            error = f"{type(error).__name__}: {error}"
        failure = AsFailure(
            as_id=as_id,
            stage=stage,
            error=error,
            fault_counters=fault_counters or FaultCounters(),
            retry_accounting=retry_accounting or RetryAccounting(),
        )
        self.failures[as_id] = failure
        self.fault_counters.merge(failure.fault_counters)
        self.retry_accounting.merge(failure.retry_accounting)

    def record_quarantine(
        self,
        as_id: int,
        reason: str,
        attempts: int,
        detail: str,
        last_stage: str | None = None,
        stage_seconds: dict[str, float] | None = None,
    ) -> None:
        """Record one poison AS the engine gave up re-dispatching."""
        self.quarantined[as_id] = AsQuarantine(
            as_id=as_id,
            reason=reason,
            attempts=attempts,
            detail=detail,
            last_stage=last_stage,
            stage_seconds=dict(stage_seconds or {}),
        )

    # -- views ------------------------------------------------------------------

    @property
    def results(self) -> dict[int, AsCampaignResult]:
        """The successful per-AS results (insertion-ordered)."""
        return dict(self._results)

    def summary(self) -> str:
        """One-line human summary of the portfolio outcome."""
        parts = [f"{len(self._results)} AS(es) completed"]
        if self.resumed_as_ids:
            parts.append(f"{len(self.resumed_as_ids)} from checkpoint")
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.fault_counters.total_faults():
            parts.append(
                f"{self.fault_counters.total_faults()} faults injected"
            )
        if self.retry_accounting.retries:
            parts.append(f"{self.retry_accounting.retries} retries")
        if self.traces_quarantined:
            parts.append(
                f"{self.traces_quarantined} trace(s) quarantined"
            )
        anomalies = sum(self.anomaly_counts.values())
        if anomalies:
            parts.append(f"{anomalies} trace anomalies")
        if self.interrupted:
            parts.append("INTERRUPTED")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        """Canonical JSON-able view of the whole portfolio outcome.

        This is the determinism contract: two runs of the same
        campaign -- serial or parallel, fresh or resumed -- must
        produce byte-identical ``json.dumps(report.as_dict())``.
        Execution provenance (``resumed_as_ids``) is deliberately
        excluded: whether an AS was re-measured or restored from a
        checkpoint must not change the canonical result.
        """
        completed = {}
        for as_id, result in self._results.items():
            analysis = result.analysis
            completed[str(as_id)] = {
                "flags": {
                    flag.name: count
                    for flag, count in sorted(
                        analysis.flag_counts().items(),
                        key=lambda item: item[0].name,
                    )
                },
                "traces_total": analysis.traces_total,
                "traces_quarantined": analysis.traces_quarantined,
                "sr_interfaces": len(analysis.sr_addresses),
                "mpls_interfaces": len(analysis.mpls_addresses),
                "ip_interfaces": len(analysis.ip_addresses),
                "distinct_segments": analysis.total_distinct_segments(),
                "fingerprints": len(result.fingerprints),
                "routers": result.router_count(),
                "fault_counters": result.fault_counters.as_dict(),
                "retry_accounting": result.retry_accounting.as_dict(),
            }
        return {
            "completed": completed,
            "failures": {
                str(as_id): {
                    "stage": f.stage,
                    "error": f.error,
                    "fault_counters": f.fault_counters.as_dict(),
                    "retry_accounting": f.retry_accounting.as_dict(),
                }
                for as_id, f in self.failures.items()
            },
            "quarantined": {
                str(as_id): {
                    "reason": q.reason,
                    "attempts": q.attempts,
                    "detail": q.detail,
                    "last_stage": q.last_stage,
                    "stage_seconds": {
                        stage: round(seconds, 3)
                        for stage, seconds in sorted(
                            q.stage_seconds.items()
                        )
                    },
                }
                for as_id, q in self.quarantined.items()
            },
            "interrupted": self.interrupted,
            "fault_counters": self.fault_counters.as_dict(),
            "retry_accounting": self.retry_accounting.as_dict(),
            "traces_quarantined": self.traces_quarantined,
            "anomaly_counts": dict(sorted(self.anomaly_counts.items())),
        }


def _quarantine_reason(outcome: TaskOutcome) -> str:
    """Human-stable quarantine reason for a final timeout/crash outcome."""
    if outcome.status is TaskStatus.CRASH:
        return "crash"
    if outcome.error and "hung" in outcome.error:
        return "hung"
    return "timeout"


def result_counters(result: AsCampaignResult) -> dict[str, int]:
    """Typed telemetry counters derived from one completed AS result.

    Derivation from the (deterministic) result object -- rather than
    in-band instrumentation -- is what makes counter totals identical
    for serial, parallel, and resumed executions of the same campaign:
    rehydrated results carry the banked tallies, and addition is
    order-independent.
    """
    analysis = result.analysis
    counters = {
        "traces_collected": analysis.traces_total,
        "traces_analyzed": analysis.traces_analyzed,
        "traces_quarantined": analysis.traces_quarantined,
        "probes_attempted": result.retry_accounting.probes,
        "probe_retries": result.retry_accounting.retries,
        "probes_exhausted": result.retry_accounting.exhausted,
        "faults_injected": result.fault_counters.total_faults(),
        "fingerprints": len(result.fingerprints),
    }
    # Per-class fault tallies (only observed classes get a key, so
    # fault-free campaigns keep the exact counter set they had).
    for name, count in result.fault_counters.as_dict().items():
        if count:
            counters[f"fault_{name}"] = count
    flag_counts = analysis.flag_counts()
    counters["flags_total"] = sum(flag_counts.values())
    for flag, count in flag_counts.items():
        counters[f"flags_{flag.name.lower()}"] = count
    anomaly_counts = analysis.anomaly_counts()
    counters["anomalies_total"] = sum(anomaly_counts.values())
    for kind, count in anomaly_counts.items():
        counters[f"anomaly_{kind}"] = count
    return counters


def _campaign_worker(payload: tuple, heartbeat) -> dict:
    """Process-pool task: rebuild the runner and run one AS.

    Each worker constructs a *fresh* runner from the parent's
    constructor kwargs, so results are a pure function of
    ``(config, as_id)`` -- the property that makes parallel output
    byte-identical to serial.  Stage transitions double as watchdog
    heartbeats.  Telemetry recorded in-worker is buffered and shipped
    back inside the outcome dict (see :meth:`_run_as_guarded`).
    """
    runner_cls, kwargs, as_id, telemetry_on, traceparent = payload
    runner = runner_cls(**kwargs)
    runner._stage_hook = heartbeat
    runner._telemetry_on = telemetry_on
    runner._traceparent = traceparent
    return runner._run_as_guarded(as_id)


class CampaignRunner:
    """Runs the measurement campaign over a portfolio."""

    def __init__(
        self,
        portfolio: Portfolio | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
        seed: int = 0,
        vps_per_as: int = 4,
        targets_per_as: int = 36,
        per_prefix: int = 3,
        reveal_success_rate: float = 0.85,
        snmp_coverage: float = 0.9,
        bdrmap_error_rate: float = 0.0,
        alias_success_rate: float = 0.9,
        max_ttl: int = 40,
        fault_plan: FaultPlan | None = None,
        churn_plan: ChurnPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if vps_per_as < 1:
            raise ValueError("vps_per_as must be >= 1")
        self.portfolio = portfolio or default_portfolio()
        self.vantage_points = vantage_points or default_vantage_points()
        self.seed = seed
        self.vps_requested = vps_per_as
        self.vps_per_as = min(vps_per_as, len(self.vantage_points))
        if self.vps_per_as < vps_per_as:
            logger.warning(
                "vps_per_as=%d exceeds the %d-VP pool; clamping to %d",
                vps_per_as,
                len(self.vantage_points),
                self.vps_per_as,
            )
        self.targets_per_as = targets_per_as
        self.per_prefix = per_prefix
        self.reveal_success_rate = reveal_success_rate
        self.snmp_coverage = snmp_coverage
        self.bdrmap_error_rate = bdrmap_error_rate
        self.alias_success_rate = alias_success_rate
        self.max_ttl = max_ttl
        self.fault_plan = fault_plan or FaultPlan.none()
        self.churn_plan = churn_plan or ChurnPlan.none()
        self.retry = retry or RetryPolicy.none()
        # columnar detection core (byte-identical to ArestDetector by
        # the differential contract, so checkpoints and report bytes
        # are unaffected by the switch)
        self._pipeline = ArestPipeline()
        #: stage the most recent run_as reached (error attribution)
        self._stage = "idle"
        #: optional callback fired on each stage transition (heartbeats)
        self._stage_hook = None
        #: telemetry recorder for the in-flight AS (observational only:
        #: results and checkpoints never read it)
        self.telemetry = NULL_TELEMETRY
        #: when True, guarded runs record into a fresh per-AS recorder
        #: and ship its export through the outcome channel
        self._telemetry_on = False
        #: campaign trace context in wire form (W3C traceparent); set
        #: by the task envelope so worker spans join the one trace
        self._traceparent: str | None = None
        #: live fault injector / prober of the in-flight run_as, so a
        #: mid-stage failure can still report its partial tallies
        self._active_injector: FaultInjector | None = None
        self._active_prober = None

    # -- public API ----------------------------------------------------------------

    def run_as(
        self, as_id: int, telemetry_dir: str | Path | None = None
    ) -> AsCampaignResult:
        """Run the full campaign for one portfolio AS.

        Stage transitions feed two observability channels at once: the
        watchdog heartbeat hook, and -- when a live recorder is
        attached via :attr:`telemetry` -- hierarchical spans
        (``as > stage``) whose durations land in the telemetry
        artifacts only, never in the result.  ``telemetry_dir`` wraps
        the run in a single-AS :class:`TelemetrySession` (manifest,
        event stream, Prometheus export), exactly like
        :meth:`run_portfolio`'s.
        """
        if telemetry_dir is not None:
            return self._run_as_with_session(as_id, telemetry_dir)
        tel = self.telemetry
        self._active_injector = None
        self._active_prober = None
        with tel.span("as", as_id=as_id):
            self._set_stage("setup")
            spec = self.portfolio.spec(as_id)
            vps = self._select_vps(as_id)
            self._set_stage("topology")
            with tel.span("topology"):
                net = build_measurement_network(
                    spec, [vp.vp_id for vp in vps], seed=self.seed
                )
            injector = self._injector_for(as_id)
            self._active_injector = injector
            if injector is not None:
                net.engine.faults = injector
            dynamics = self._dynamics_for(as_id, net)
            if dynamics is not None:
                net.engine.dynamics = dynamics
            self._set_stage("probe")
            with tel.span("probe"):
                dataset, accounting = self._probe(net, vps)
            if dynamics is not None:
                # Churn is confined to trace collection: restore the
                # nominal topology before fingerprint/analysis, so a
                # fresh run analyzes exactly the network a checkpoint
                # rehydration rebuilds (fresh == resumed, byte for
                # byte).  Counters ride the observational gauge channel
                # only -- results and checkpoints never see them.
                dynamics.quiesce()
                net.engine.dynamics = None
                for name, value in dynamics.counters.as_dict().items():
                    tel.gauge(f"churn_{name}", value)
            self._set_stage("fingerprint")
            with tel.span("fingerprint"):
                fingerprints = self._fingerprint(
                    net, dataset, faults=injector
                )
            self._set_stage("analysis")
            with tel.span("analyze"):
                result = self._analyze(spec, net, dataset, fingerprints)
            if injector is not None:
                result.fault_counters = injector.counters
            result.retry_accounting = accounting
            self._set_stage("done")
        return result

    def _run_as_with_session(
        self, as_id: int, telemetry_dir: str | Path
    ) -> AsCampaignResult:
        """:meth:`run_as` under a telemetry session of its own."""
        session = TelemetrySession(
            telemetry_dir,
            config=self._config_signature(),
            seed=self.seed,
            command="run_as",
            jobs=1,
            as_ids=[as_id],
        )
        tel = Telemetry(trace=session.trace)
        self.telemetry = tel
        try:
            result = self.run_as(as_id)
        except BaseException:
            tel.count("as_failed")
            session.record_export(as_id, tel.export())
            session.finalize("error")
            raise
        finally:
            self.telemetry = NULL_TELEMETRY
        merge_counters(tel.counters, result_counters(result))
        session.record_export(as_id, tel.export())
        session.finalize("ok")
        return result

    def run_portfolio(
        self,
        as_ids: list[int] | None = None,
        analyzed_only: bool = True,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        jobs: int = 1,
        timeout_per_as: float | None = None,
        heartbeat_timeout: float | None = None,
        telemetry_dir: str | Path | None = None,
    ) -> CampaignReport:
        """Run every requested AS (default: the 41 analyzed ones).

        Execution is supervised (:mod:`repro.campaign.executor`):

        - ``jobs=1`` (default) runs in-process, exactly the sequential
          loop it always was; ``jobs>1`` dispatches per-AS tasks to a
          bounded process pool.  Results are *deterministic in jobs*:
          the report and the banked checkpoint are byte-identical for
          any job count, because each AS derives everything from
          ``(seed, as_id)`` and assembly/banking follow ``as_ids``
          order regardless of completion order.
        - ``timeout_per_as`` bounds each AS in wall-clock seconds
          (pool mode only); a worker past its deadline -- or silent
          past ``heartbeat_timeout`` -- is SIGKILLed, re-dispatched
          once, and quarantined on the second strike.  A worker killed
          from outside (OOM, ``kill -9``) is handled the same way.
        - SIGINT/SIGTERM drain in-flight work, flush the checkpoint
          and return a partial report with ``interrupted=True``; a
          second signal aborts hard.

        One failing AS is recorded in the report and the rest of the
        portfolio continues.  With ``checkpoint`` set, every completed
        AS -- and every failure or quarantine -- is durably banked as
        the run progresses; ``resume=True`` restores banked outcomes
        (re-deriving analyses without re-probing, and without
        re-running known failures) and measures only what is missing,
        producing the same report as an uninterrupted run.

        ``telemetry_dir`` turns on observability for the run: a
        :class:`~repro.obs.session.TelemetrySession` writes a run
        manifest, a crash-safe JSONL stream of per-AS stage timings
        and counters, and a Prometheus textfile export into that
        directory.  Telemetry is purely observational -- the report
        and the checkpoint are byte-identical with it on or off.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if as_ids is None:
            specs = (
                self.portfolio.analyzed()
                if analyzed_only
                else list(self.portfolio)
            )
            as_ids = [s.as_id for s in specs]
        session: TelemetrySession | None = None
        if telemetry_dir is not None:
            session = TelemetrySession(
                telemetry_dir,
                config=self._config_signature(),
                seed=self.seed,
                command="run_portfolio",
                jobs=jobs,
                as_ids=list(as_ids),
            )
        try:
            report = self._run_portfolio_inner(
                as_ids,
                checkpoint,
                resume,
                jobs,
                timeout_per_as,
                heartbeat_timeout,
                session,
            )
        except BaseException:
            if session is not None:
                session.finalize("error")
            raise
        if session is not None:
            session.finalize(
                "interrupted" if report.interrupted else "ok"
            )
        return report

    def _run_portfolio_inner(
        self,
        as_ids: list[int],
        checkpoint: str | Path | None,
        resume: bool,
        jobs: int,
        timeout_per_as: float | None,
        heartbeat_timeout: float | None,
        session: TelemetrySession | None,
    ) -> CampaignReport:
        """The portfolio loop proper (session lifecycle handled above)."""
        store: CampaignCheckpoint | None = None
        banked: dict[int, CheckpointEntry] = {}
        banked_failures: dict[int, FailureStub] = {}
        banked_quarantines: dict[int, QuarantineStub] = {}
        if checkpoint is not None:
            store = CampaignCheckpoint(checkpoint, self._config_signature())
            if resume:
                banked = store.load()
                banked_failures = store.banked_failures
                banked_quarantines = store.banked_quarantines

        to_run = [
            as_id
            for as_id in as_ids
            if as_id not in banked
            and as_id not in banked_failures
            and as_id not in banked_quarantines
        ]
        outcomes, interrupted = self._execute(
            to_run, store, jobs, timeout_per_as, heartbeat_timeout, session
        )

        # Assemble strictly in as_ids order so the report is identical
        # whatever order tasks actually completed in.
        report = CampaignReport()
        report.interrupted = interrupted
        for as_id in as_ids:
            entry = banked.get(as_id)
            if entry is not None:
                result = self._rehydrate_banked(as_id, entry, session)
                report.add(result, resumed=True)
                continue
            stub = banked_failures.get(as_id)
            if stub is not None:
                report.record_failure(
                    as_id,
                    stub.stage,
                    stub.error,
                    stub.fault_counters,
                    stub.retry_accounting,
                )
                if session is not None:
                    session.record_scope(as_id, counters={"as_failed": 1})
                continue
            qstub = banked_quarantines.get(as_id)
            if qstub is not None:
                report.record_quarantine(
                    as_id,
                    qstub.reason,
                    qstub.attempts,
                    qstub.detail,
                    qstub.last_stage,
                    qstub.stage_seconds,
                )
                if session is not None:
                    session.record_scope(
                        as_id, counters={"as_quarantined": 1}
                    )
                continue
            outcome = outcomes.get(as_id)
            if outcome is None:
                continue  # interrupted before this AS was dispatched
            self._fold_outcome(report, as_id, outcome)
        if store is not None and not interrupted:
            # Canonicalize the on-disk order so a resumed checkpoint's
            # bytes match an uninterrupted run's.
            store.compact(order=list(as_ids))
        return report

    # -- supervised execution ----------------------------------------------------

    def _execute(
        self,
        to_run: list[int],
        store: CampaignCheckpoint | None,
        jobs: int,
        timeout_per_as: float | None,
        heartbeat_timeout: float | None,
        session: TelemetrySession | None = None,
    ) -> tuple[dict[int, TaskOutcome], bool]:
        """Run the missing ASes under supervision, banking in order.

        Completed outcomes are banked to the checkpoint as soon as the
        contiguous prefix (in ``to_run`` order) allows, so the file's
        line order -- and therefore its bytes -- never depends on which
        worker finished first.  Telemetry batches, by contrast, are
        appended in completion order -- the event stream is
        observational, only counter totals are contractual.
        """
        if not to_run:
            return {}, False
        completed: dict[int, TaskOutcome] = {}
        bank_index = 0

        def bank_one(as_id: int, outcome: TaskOutcome) -> None:
            # Bank latency feeds the fixed-bucket "bank" histogram --
            # observational only, so the timing never orders results.
            if session is None:
                self._bank_outcome(store, as_id, outcome)
                return
            start = time.monotonic()
            self._bank_outcome(store, as_id, outcome)
            session.observe("bank", time.monotonic() - start)

        def bank_ready() -> None:
            nonlocal bank_index
            while bank_index < len(to_run):
                outcome = completed.get(to_run[bank_index])
                if outcome is None:
                    break
                bank_one(to_run[bank_index], outcome)
                bank_index += 1

        def on_complete(outcome: TaskOutcome) -> None:
            completed[outcome.key] = outcome
            if session is not None:
                self._record_outcome_telemetry(session, outcome)
            if store is not None:
                bank_ready()

        telemetry_on = session is not None
        traceparent = session.traceparent() if session is not None else None
        if jobs == 1:

            def task(as_id: int, heartbeat) -> dict:
                self._stage_hook = heartbeat
                self._telemetry_on = telemetry_on
                self._traceparent = traceparent
                try:
                    return self._run_as_guarded(as_id)
                finally:
                    self._stage_hook = None
                    self._telemetry_on = False
                    self._traceparent = None

            engine = SupervisedExecutor(task, jobs=1)
            payloads = [(as_id, as_id) for as_id in to_run]
        else:
            engine = SupervisedExecutor(
                _campaign_worker,
                jobs=jobs,
                timeout=timeout_per_as,
                heartbeat_timeout=heartbeat_timeout,
            )
            spawn = self._spawn_config()
            payloads = [
                (
                    as_id,
                    (type(self), spawn, as_id, telemetry_on, traceparent),
                )
                for as_id in to_run
            ]
        with GracefulShutdown() as shutdown:
            result = engine.run(
                payloads, on_complete=on_complete, stop=shutdown
            )
        if result.interrupted and store is not None:
            # Bank completed-but-unbanked outcomes past the prefix gap;
            # the holes are simply re-run on resume.
            for as_id in to_run[bank_index:]:
                outcome = completed.get(as_id)
                if outcome is not None:
                    bank_one(as_id, outcome)
        return result.outcomes, result.interrupted

    def _record_outcome_telemetry(
        self, session: TelemetrySession, outcome: TaskOutcome
    ) -> None:
        """Append one final engine outcome's telemetry to the session.

        OK outcomes carry the worker's own recorder export (shipped
        through the outcome pipe); killed/crashed workers never export,
        so the supervisor's observed heartbeat-stage durations stand in
        as their post-mortem.
        """
        as_id = outcome.key
        if outcome.attempts > 1:
            session.count("worker_redispatches", outcome.attempts - 1)
        if outcome.status is TaskStatus.OK:
            shipped = outcome.value.get("telemetry")
            if shipped is not None:
                session.record_export(as_id, shipped)
            return
        spans = [
            {
                "stage": stage,
                "path": f"as/{stage}",
                "seconds": seconds,
                # post-mortems join the campaign trace (no start: the
                # supervisor only knows durations between heartbeats,
                # not the worker's clock, so they render in the stage
                # tables rather than the Gantt view)
                "trace_id": session.trace.trace_id,
                "span_id": os.urandom(8).hex(),
                "parent_span_id": session.trace.span_id,
            }
            for stage, seconds in sorted(
                (outcome.stage_seconds or {}).items()
            )
        ]
        counter = (
            "as_failed"
            if outcome.status is TaskStatus.ERROR
            else "as_quarantined"
        )
        session.record_scope(as_id, spans=spans, counters={counter: 1})

    def _task_recorder(self) -> Telemetry:
        """A fresh per-task recorder, joined to the campaign trace.

        When the task envelope carried a traceparent, the recorder's
        spans inherit the campaign trace id and parent under the
        supervisor's root span; otherwise the recorder emits the
        legacy untraced records.
        """
        if self._traceparent is not None:
            return Telemetry(trace=TraceContext.parse(self._traceparent))
        return Telemetry()

    def _run_as_guarded(self, as_id: int) -> dict:
        """:meth:`run_as` wrapped for the engine: never raises.

        Failures come back as structured records carrying the stage
        reached and the partial fault/retry tallies already sunk, so
        the portfolio accounts for interrupted work.

        With telemetry enabled a fresh per-AS recorder captures stage
        spans, and its export rides the outcome dict back through the
        engine's pipe -- the worker never touches the session files, so
        a SIGKILLed worker cannot corrupt the event stream.  Counters
        are derived from the finished result (:func:`result_counters`),
        which is what keeps totals identical across serial, parallel
        and resumed runs.
        """
        tel = self._task_recorder() if self._telemetry_on else None
        if tel is not None:
            self.telemetry = tel
        try:
            result = self.run_as(as_id)
        except Exception as exc:  # noqa: BLE001 -- per-AS isolation
            message = {
                "status": "error",
                "stage": self._stage,
                "error": f"{type(exc).__name__}: {exc}",
                "fault_counters": self._partial_fault_counters(),
                "retry_accounting": self._partial_retry_accounting(),
            }
            if tel is not None:
                tel.count("as_failed")
                message["telemetry"] = tel.export()
            return message
        finally:
            if tel is not None:
                self.telemetry = NULL_TELEMETRY
        message = {"status": "ok", "result": result}
        if tel is not None:
            merge_counters(tel.counters, result_counters(result))
            message["telemetry"] = tel.export()
        return message

    def _fold_outcome(
        self, report: CampaignReport, as_id: int, outcome: TaskOutcome
    ) -> None:
        """Translate one engine outcome into report state."""
        if outcome.status is TaskStatus.OK:
            message = outcome.value
            if message["status"] == "ok":
                report.add(message["result"])
                return
            logger.warning(
                "AS#%d failed during %s stage: %s",
                as_id,
                message["stage"],
                message["error"],
            )
            report.record_failure(
                as_id,
                message["stage"],
                message["error"],
                message["fault_counters"],
                message["retry_accounting"],
            )
        elif outcome.status is TaskStatus.ERROR:
            logger.warning(
                "AS#%d worker raised: %s", as_id, outcome.error
            )
            report.record_failure(
                as_id, outcome.last_stage or "worker", outcome.error or ""
            )
        else:  # TIMEOUT / CRASH past the re-dispatch budget
            report.record_quarantine(
                as_id,
                _quarantine_reason(outcome),
                outcome.attempts,
                outcome.error or "",
                outcome.last_stage,
                dict(outcome.stage_seconds or {}),
            )

    def _bank_outcome(
        self,
        store: CampaignCheckpoint | None,
        as_id: int,
        outcome: TaskOutcome,
    ) -> None:
        """Durably bank one final outcome (entry, failure or quarantine)."""
        if store is None:
            return
        if outcome.status is TaskStatus.OK:
            message = outcome.value
            if message["status"] == "ok":
                result = message["result"]
                store.record(
                    as_id,
                    CheckpointEntry(
                        dataset=result.dataset,
                        fingerprints=result.fingerprints,
                        fault_counters=result.fault_counters,
                        retry_accounting=result.retry_accounting,
                    ),
                )
            else:
                store.record_failure(
                    as_id,
                    FailureStub(
                        stage=message["stage"],
                        error=message["error"],
                        fault_counters=message["fault_counters"],
                        retry_accounting=message["retry_accounting"],
                    ),
                )
        elif outcome.status is TaskStatus.ERROR:
            store.record_failure(
                as_id,
                FailureStub(
                    stage=outcome.last_stage or "worker",
                    error=outcome.error or "",
                ),
            )
        else:
            store.record_quarantine(
                as_id,
                QuarantineStub(
                    reason=_quarantine_reason(outcome),
                    attempts=outcome.attempts,
                    detail=outcome.error or "",
                    last_stage=outcome.last_stage,
                    stage_seconds=dict(outcome.stage_seconds or {}),
                ),
            )

    def _spawn_config(self) -> dict:
        """Constructor kwargs reproducing this runner in a worker process.

        Subclasses with a different ``__init__`` signature must
        override this accordingly.
        """
        return dict(
            portfolio=self.portfolio,
            vantage_points=self.vantage_points,
            seed=self.seed,
            vps_per_as=self.vps_requested,
            targets_per_as=self.targets_per_as,
            per_prefix=self.per_prefix,
            reveal_success_rate=self.reveal_success_rate,
            snmp_coverage=self.snmp_coverage,
            bdrmap_error_rate=self.bdrmap_error_rate,
            alias_success_rate=self.alias_success_rate,
            max_ttl=self.max_ttl,
            fault_plan=self.fault_plan,
            churn_plan=self.churn_plan,
            retry=self.retry,
        )

    def _set_stage(self, stage: str) -> None:
        self._stage = stage
        if self._stage_hook is not None:
            self._stage_hook(stage)

    def _partial_fault_counters(self) -> FaultCounters:
        """Snapshot of the in-flight run's fault tallies (may be partial)."""
        if self._active_injector is None:
            return FaultCounters()
        return FaultCounters.from_dict(
            self._active_injector.counters.as_dict()
        )

    def _partial_retry_accounting(self) -> RetryAccounting:
        """Snapshot of the in-flight run's retry cost (may be partial)."""
        if self._active_prober is None:
            return RetryAccounting()
        return RetryAccounting.from_dict(
            self._active_prober.accounting.as_dict()
        )

    # -- stages ----------------------------------------------------------------------

    def _select_vps(self, as_id: int) -> list[VantagePoint]:
        rng = DeterministicRng("vp-select", self.seed, as_id)
        return rng.sample(list(self.vantage_points), self.vps_per_as)

    def _injector_for(self, as_id: int) -> FaultInjector | None:
        """A per-AS fault injector, or None for the fault-free plan.

        An inactive plan attaches nothing at all, so the measurement
        path stays byte-identical to the seed behaviour.
        """
        if not self.fault_plan.active:
            return None
        return FaultInjector(self.fault_plan, "as", as_id)

    def _dynamics_for(
        self, as_id: int, net: MeasurementNetwork
    ) -> NetworkDynamics | None:
        """A per-AS churn scheduler, or None for the no-churn plan.

        Like :meth:`_injector_for`, an inactive plan attaches nothing,
        keeping the engine's fused fast path eligible and the campaign
        byte-identical to the static-network behaviour.  The ``("as",
        as_id)`` scope makes each AS's schedule an independent pure
        function of the plan seed -- the jobs/resume invariance story.
        """
        if not self.churn_plan.active:
            return None
        return NetworkDynamics(
            self.churn_plan,
            net.network,
            net.engine,
            net.controller,
            net.deployment.sr_domain,
            net.spec.asn,
            "as",
            as_id,
        )

    def _probe(
        self, net: MeasurementNetwork, vps: list[VantagePoint]
    ) -> tuple[TraceDataset, RetryAccounting]:
        targets = build_target_list(
            net,
            per_prefix=self.per_prefix,
            limit=self.targets_per_as,
            seed=self.seed,
        )
        prober = TntProber(
            net.engine,
            max_ttl=self.max_ttl,
            reveal_success_rate=self.reveal_success_rate,
            seed=self.seed,
            retry=self.retry,
        )
        self._active_prober = prober
        metadata = {
            "as_id": str(net.spec.as_id),
            "seed": str(self.seed),
            "vps": ",".join(vp.vp_id for vp in vps),
        }
        if self.vps_per_as < self.vps_requested:
            metadata["vps_requested"] = str(self.vps_requested)
            metadata["vps_effective"] = str(self.vps_per_as)
        dataset = TraceDataset(target_asn=net.target_asn, metadata=metadata)
        tel = self.telemetry
        track = tel.enabled
        clock = tel.clock
        for vp in vps:
            vp_router = net.vantage_points[vp.vp_id]
            # Each VP probes the same targets, shuffled per VP (Sec. 5).
            rng = DeterministicRng("shuffle", self.seed, vp.vp_id)
            shuffled = list(targets.addresses)
            rng.shuffle(shuffled)
            if track:
                # per-trace probe latency into the fixed-bucket
                # histogram; two clock reads + a bisect per trace
                for destination in shuffled:
                    tick = clock()
                    trace = prober.trace(
                        vp_router, destination, vp_name=vp.vp_id
                    )
                    tel.observe("probe", clock() - tick)
                    dataset.add(trace)
            else:
                for destination in shuffled:
                    dataset.add(
                        prober.trace(
                            vp_router, destination, vp_name=vp.vp_id
                        )
                    )
        # Fast-path cache gauges: observational only (the telemetry
        # contract), but they make cache regressions visible per AS.
        for name, value in net.engine.stats.as_dict().items():
            self.telemetry.gauge(f"walkcache_{name}", value)
        return dataset, prober.accounting

    def _fingerprint(
        self,
        net: MeasurementNetwork,
        dataset: TraceDataset,
        faults: FaultInjector | None = None,
    ) -> dict[IPv4Address, Fingerprint]:
        snmp = SnmpOracle(
            net.network,
            coverage=self.snmp_coverage,
            seed=self.seed,
            faults=faults,
        )
        combined = CombinedFingerprinter(net.engine, snmp)
        fingerprints: dict[IPv4Address, Fingerprint] = {}
        # Fingerprinting is a pure function of (address, reply TTL, VP),
        # so probing the same combination twice cannot improve on the
        # recorded result: dedupe on that key while still letting a
        # *different* hop context retry an unidentified address.
        attempted: set[tuple[IPv4Address, int | None, int]] = set()
        for trace in dataset:
            for hop in trace.hops:
                if hop.address is None:
                    continue
                existing = fingerprints.get(hop.address)
                if existing is not None and existing.identified:
                    continue
                key = (hop.address, hop.reply_ip_ttl, trace.vp_router_id)
                if key in attempted:
                    continue
                attempted.add(key)
                fingerprints[hop.address] = combined.fingerprint(
                    hop.address, hop.reply_ip_ttl, trace.vp_router_id
                )
        return fingerprints

    def _analyze(
        self,
        spec: AsSpec,
        net: MeasurementNetwork,
        dataset: TraceDataset,
        fingerprints: dict[IPv4Address, Fingerprint],
    ) -> AsCampaignResult:
        """Everything downstream of data collection.

        Deterministic given (dataset, fingerprints, seed) -- this is the
        path checkpoint resume replays without re-firing probes.
        """
        bdrmap = BdrmapIt(
            net.network, error_rate=self.bdrmap_error_rate, seed=self.seed
        )
        sink: list[tuple[Trace, list[DetectedSegment]]] = []
        analysis = self._pipeline.analyze_as(
            spec.asn,
            dataset.traces,
            fingerprints,
            asn_of=bdrmap.asn_of_hop,
            segment_sink=sink,
            telemetry=self.telemetry,
        )
        # Data-quality accounting rides on the dataset so quarantined
        # traces stay visible wherever the raw data travels.  Clean runs
        # add nothing, keeping fault-free datasets byte-identical.
        if analysis.anomalies:
            dataset.metadata["trace_anomalies"] = str(len(analysis.anomalies))
            dataset.metadata["traces_quarantined"] = str(
                analysis.traces_quarantined
            )
        truth = self._ground_truth(spec, dataset)
        resolver = AliasResolver(
            net.network,
            success_rate=self.alias_success_rate,
            seed=self.seed,
        )
        alias_sets = resolver.resolve(dataset.distinct_addresses())
        return AsCampaignResult(
            spec=spec,
            dataset=dataset,
            analysis=analysis,
            fingerprints=fingerprints,
            truth=truth,
            trace_segments=sink,
            alias_sets=alias_sets,
        )

    def _rehydrate_banked(
        self,
        as_id: int,
        entry: CheckpointEntry,
        session: TelemetrySession | None,
    ) -> AsCampaignResult:
        """Rehydrate one banked AS, recording telemetry for the replay.

        The replayed analysis gets its own spans (the parent does the
        work, so the parent records it) and the result-derived counters
        -- banked fault/retry tallies included -- so a resumed run's
        counter totals equal an uninterrupted run's.
        """
        if session is None:
            return self._rehydrate_as(as_id, entry)
        tel = Telemetry(trace=session.trace)
        previous = self.telemetry
        self.telemetry = tel
        try:
            with tel.span("as", as_id=as_id, resumed=True):
                with tel.span("analyze"):
                    result = self._rehydrate_as(as_id, entry)
        finally:
            self.telemetry = previous
        merge_counters(tel.counters, result_counters(result))
        session.record_export(as_id, tel.export())
        return result

    def _rehydrate_as(
        self, as_id: int, entry: CheckpointEntry
    ) -> AsCampaignResult:
        """Rebuild one AS result from banked measurement data.

        The topology is regenerated deterministically from the seed, the
        stored dataset and fingerprints stand in for the probing and
        fingerprinting stages, and the analysis replays bit-identically.
        """
        spec = self.portfolio.spec(as_id)
        vps = self._select_vps(as_id)
        net = build_measurement_network(
            spec, [vp.vp_id for vp in vps], seed=self.seed
        )
        result = self._analyze(spec, net, entry.dataset, entry.fingerprints)
        result.fault_counters = entry.fault_counters
        result.retry_accounting = entry.retry_accounting
        return result

    def _ground_truth(
        self, spec: AsSpec, dataset: TraceDataset
    ) -> GroundTruth:
        truth = GroundTruth(deploys_sr=spec.scenario.deploys_sr)
        for trace in dataset:
            for i, hop in enumerate(trace.hops):
                if (
                    hop.address is None
                    or hop.truth_asn != spec.asn
                    or not hop.truth_planes
                ):
                    continue
                if truth_transport_is_sr(trace, i):
                    truth.sr_addresses.add(hop.address)
                else:
                    truth.ldp_addresses.add(hop.address)
        return truth

    def _config_signature(self) -> dict:
        """JSON-comparable fingerprint of everything that shapes results."""
        return {
            "seed": self.seed,
            "vps_per_as": self.vps_per_as,
            "targets_per_as": self.targets_per_as,
            "per_prefix": self.per_prefix,
            "reveal_success_rate": self.reveal_success_rate,
            "snmp_coverage": self.snmp_coverage,
            "bdrmap_error_rate": self.bdrmap_error_rate,
            "alias_success_rate": self.alias_success_rate,
            "max_ttl": self.max_ttl,
            "fault_plan": self.fault_plan.as_dict(),
            "retry": self.retry.as_dict(),
            # Only an *active* plan shapes results; keeping the key out
            # otherwise preserves checkpoint byte-compatibility with
            # churn-free campaigns recorded before churn existed.
            **(
                {"churn_plan": self.churn_plan.as_dict()}
                if self.churn_plan.active
                else {}
            ),
        }
