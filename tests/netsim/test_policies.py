"""Tests for SR policies and binding-SID splicing (RFC 9256)."""

import pytest

from repro.netsim.forwarding import ReplyKind
from repro.netsim.policies import SrPolicyRegistry
from repro.netsim.sr import SrConfigError
from repro.netsim.tunnels import TunnelPolicy
from repro.netsim.vendors import VENDOR_PROFILES, Vendor

from tests.conftest import TARGET_ASN, ChainNetwork


def policy_chain(length: int = 7, **kwargs) -> ChainNetwork:
    return ChainNetwork(
        length=length,
        policy=TunnelPolicy(asn=TARGET_ASN, sr_policy_share=1.0),
        **kwargs,
    )


class TestRegistry:
    def _registry(self, chain: ChainNetwork) -> SrPolicyRegistry:
        return SrPolicyRegistry(chain.network, chain.sr_domain, seed=1)

    def test_install_allocates_bsid_from_srlb(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        policy = registry.install(
            head, sr_chain.routers[3].router_id, sr_chain.egress.router_id
        )
        assert policy.binding_sid in VENDOR_PROFILES[
            Vendor.CISCO
        ].default_srlb
        assert policy.depth == 2

    def test_install_idempotent(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        args = (
            head,
            sr_chain.routers[3].router_id,
            sr_chain.egress.router_id,
        )
        assert registry.install(*args) == registry.install(*args)
        assert len(registry) == 1

    def test_distinct_policies_distinct_bsids(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        a = registry.install(
            head, sr_chain.routers[3].router_id, sr_chain.egress.router_id
        )
        b = registry.install(
            head, sr_chain.routers[1].router_id, sr_chain.egress.router_id
        )
        assert a.binding_sid != b.binding_sid
        assert len(registry) == 2

    def test_via_equal_egress_single_segment(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        policy = registry.install(
            head, sr_chain.egress.router_id, sr_chain.egress.router_id
        )
        assert policy.depth == 1

    def test_unenrolled_head_end_rejected(self):
        chain = ChainNetwork(sr=False, ldp=True)
        from repro.netsim.sr import SegmentRoutingDomain

        domain = SegmentRoutingDomain(chain.network, asn=TARGET_ASN)
        registry = SrPolicyRegistry(chain.network, domain)
        with pytest.raises(SrConfigError):
            registry.install(
                chain.routers[2].router_id,
                chain.routers[3].router_id,
                chain.egress.router_id,
            )

    def test_policy_for_lookup(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        policy = registry.install(
            head, sr_chain.routers[3].router_id, sr_chain.egress.router_id
        )
        assert registry.policy_for(head, policy.binding_sid) is policy
        assert registry.policy_for(head, policy.binding_sid + 1) is None
        assert (
            registry.policy_for(
                sr_chain.routers[0].router_id, policy.binding_sid
            )
            is None
        )

    def test_policies_at(self, sr_chain):
        registry = self._registry(sr_chain)
        head = sr_chain.routers[2].router_id
        registry.install(
            head, sr_chain.routers[3].router_id, sr_chain.egress.router_id
        )
        assert len(registry.policies_at(head)) == 1
        assert registry.policies_at(sr_chain.egress.router_id) == []


class TestSplicedForwarding:
    def test_delivery_through_policy(self):
        chain = policy_chain()
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE

    def test_bsid_visible_then_spliced(self):
        chain = policy_chain()
        program = chain.controller.program_for(
            chain.routers[0].router_id, chain.egress.router_id
        )
        assert program is not None
        assert program.depth == 2  # [node(head-end), BSID]
        bsid = program.labels[1]
        # collect quoted stacks along the path
        stacks = []
        for ttl in range(1, 40):
            reply = chain.engine.forward_probe(
                chain.vp.router_id, chain.target, ttl
            )
            if reply is None:
                continue
            if reply.quoted_stack:
                stacks.append(tuple(e.label for e in reply.quoted_stack))
            if reply.kind is not ReplyKind.TIME_EXCEEDED:
                break
        # the BSID rides to the head-end...
        assert any(bsid in stack for stack in stacks)
        # ...and never appears after the splice replaced it
        last_with_bsid = max(
            i for i, stack in enumerate(stacks) if bsid in stack
        )
        assert all(
            bsid not in stack for stack in stacks[last_with_bsid + 1 :]
        )

    def test_spliced_labels_are_sr_truth(self):
        chain = policy_chain()
        truth = chain.engine.truth_walk(chain.vp.router_id, chain.target)
        for hop in truth:
            for plane in hop.received_planes:
                assert plane in ("sr", "service")

    def test_splice_grows_stack_mid_path(self):
        chain = policy_chain()
        truth = chain.engine.truth_walk(chain.vp.router_id, chain.target)
        depths = [len(t.received_labels) for t in truth if t.received_labels]
        # depth 2 ([node, BSID]) -> after the splice the policy list can
        # keep depth >= 1; the *labels* changed even where depth shrank
        assert max(depths) >= 2

    def test_policy_share_zero_means_plain(self):
        chain = ChainNetwork(
            length=7,
            policy=TunnelPolicy(asn=TARGET_ASN, sr_policy_share=0.0),
        )
        program = chain.controller.program_for(
            chain.routers[0].router_id, chain.egress.router_id
        )
        assert program is not None
        assert program.depth == 1  # no BSID

    def test_short_chain_falls_back(self):
        # no interior router can host a policy on a 2-chain
        chain = policy_chain(length=2)
        reply = chain.engine.forward_probe(
            chain.vp.router_id, chain.target, 64
        )
        assert reply is not None
        assert reply.kind is ReplyKind.DEST_UNREACHABLE
