"""Tests for the router/link/network model."""

import pytest

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.topology import Network, RouterRole
from repro.netsim.vendors import Vendor


@pytest.fixture
def net() -> Network:
    return Network("10.0.0.0/16")


class TestRouters:
    def test_add_router_allocates_loopback(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        assert a.loopback is not None and b.loopback is not None
        assert a.loopback != b.loopback
        assert net.owner_of(a.loopback) == a.router_id

    def test_router_ids_sequential(self, net):
        ids = [net.add_router(f"r{i}", asn=1).router_id for i in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_config_kwargs(self, net):
        r = net.add_router(
            "r", asn=1, vendor=Vendor.JUNIPER, ttl_propagate=False
        )
        assert r.vendor is Vendor.JUNIPER
        assert not r.ttl_propagate
        assert r.rfc4950  # default

    def test_routers_in_as(self, net):
        net.add_router("a", asn=1)
        net.add_router("b", asn=2)
        net.add_router("c", asn=1)
        assert len(net.routers_in_as(1)) == 2


class TestLinks:
    def test_link_assigns_p2p_addresses(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        link = net.add_link(a, b)
        assert link.prefix is not None and link.prefix.length == 31
        assert a.interfaces[b.router_id] != b.interfaces[a.router_id]
        assert net.owner_of(a.interfaces[b.router_id]) == a.router_id
        assert net.owner_of(b.interfaces[a.router_id]) == b.router_id

    def test_duplicate_link_rejected(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        net.add_link(a, b)
        with pytest.raises(ValueError):
            net.add_link(a, b)

    def test_self_loop_rejected(self, net):
        a = net.add_router("a", asn=1)
        with pytest.raises(ValueError):
            net.add_link(a, a)

    def test_unknown_router_rejected(self, net):
        a = net.add_router("a", asn=1)
        with pytest.raises(KeyError):
            net.add_link(a.router_id, 99)

    def test_nonpositive_cost_rejected(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        with pytest.raises(ValueError):
            net.add_link(a, b, cost=0)

    def test_neighbors_sorted(self, net):
        hub = net.add_router("hub", asn=1)
        spokes = [net.add_router(f"s{i}", asn=1) for i in range(3)]
        for s in reversed(spokes):
            net.add_link(hub, s)
        assert net.neighbors(hub.router_id) == sorted(
            s.router_id for s in spokes
        )

    def test_link_between(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        c = net.add_router("c", asn=1)
        net.add_link(a, b)
        assert net.link_between(a.router_id, b.router_id) is not None
        assert net.link_between(a.router_id, c.router_id) is None

    def test_link_other(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        link = net.add_link(a, b)
        assert link.other(a.router_id) == b.router_id
        assert link.other(b.router_id) == a.router_id
        with pytest.raises(ValueError):
            link.other(99)


class TestAnnouncedPrefixes:
    def test_announce_and_originate(self, net):
        r = net.add_router("pe", asn=1, role=RouterRole.EDGE)
        prefix = net.announce_prefix(r, 24)
        assert isinstance(prefix, IPv4Prefix)
        assert net.originating_router(prefix.address_at(5)) == r.router_id
        assert net.owner_of(prefix.address_at(5)) == r.router_id

    def test_longest_prefix_wins(self, net):
        coarse = net.add_router("coarse", asn=1)
        fine = net.add_router("fine", asn=1)
        p24 = net.announce_prefix(coarse, 24)
        # carve a /26 inside a fresh /24 announced by `fine`; announce
        # order should not matter, only the length
        p26_parent = net.announce_prefix(fine, 26)
        assert net.originating_router(p24.address_at(1)) == coarse.router_id
        assert net.originating_router(
            p26_parent.address_at(1)
        ) == fine.router_id

    def test_unknown_address_unowned(self, net):
        from repro.netsim.addressing import IPv4Address

        assert net.owner_of(IPv4Address.from_string("203.0.113.9")) is None

    def test_announce_unknown_router_rejected(self, net):
        with pytest.raises(KeyError):
            net.announce_prefix(42, 24)


class TestGraphExport:
    def test_to_graph_shape(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        c = net.add_router("c", asn=2)
        net.add_link(a, b, cost=5)
        net.add_link(b, c, cost=7)
        g = net.to_graph()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert g[a.router_id][b.router_id]["weight"] == 5
        assert g.nodes[c.router_id]["asn"] == 2

    def test_counts(self, net):
        a = net.add_router("a", asn=1)
        b = net.add_router("b", asn=1)
        net.add_link(a, b)
        assert net.num_routers == 2
        assert net.num_links == 1
