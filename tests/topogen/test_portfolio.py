"""Tests for the Table 5 portfolio and scenario derivation."""

import pytest

from repro.topogen.as_types import AsRole, Confirmation
from repro.topogen.portfolio import MIN_DISCOVERED_IPS, default_portfolio


@pytest.fixture(scope="module")
def portfolio():
    return default_portfolio()


class TestTable5Fidelity:
    def test_sixty_ases(self, portfolio):
        assert len(portfolio) == 60

    def test_confirmation_counts(self, portfolio):
        # Sec. 5: 25 from Cisco, 10 from the survey, 25 unconfirmed.
        cisco = [s for s in portfolio if s.confirmation is Confirmation.CISCO]
        survey = [s for s in portfolio if s.confirmation is Confirmation.SURVEY]
        none = [s for s in portfolio if s.confirmation is Confirmation.NONE]
        assert len(cisco) == 25
        assert len(survey) == 10
        assert len(none) == 25

    def test_role_ranges(self, portfolio):
        # "#1-12 Stub, #13-25 Content, #26-52 Transit, #53-60 Tier-1"
        for spec in portfolio:
            if spec.as_id <= 12:
                assert spec.role is AsRole.STUB
            elif spec.as_id <= 25:
                assert spec.role is AsRole.CONTENT
            elif spec.as_id <= 52:
                assert spec.role is AsRole.TRANSIT
            else:
                assert spec.role is AsRole.TIER1

    def test_role_shares(self, portfolio):
        # Appendix B: 20% Stub, 22% Content, 45% Transit, 13% Tier-1.
        assert len(portfolio.by_role(AsRole.STUB)) == 12
        assert len(portfolio.by_role(AsRole.CONTENT)) == 13
        assert len(portfolio.by_role(AsRole.TRANSIT)) == 27
        assert len(portfolio.by_role(AsRole.TIER1)) == 8

    def test_exclusion_threshold_gives_41_analyzed(self, portfolio):
        assert len(portfolio.analyzed()) == 41
        assert len(portfolio.excluded()) == 19

    def test_paper_excluded_list(self, portfolio):
        # Sec. 5: "#1, #4-6, #8-12, #18, #21-23, #32, #45, and #48-51"
        expected = {1, 4, 5, 6, 8, 9, 10, 11, 12, 18, 21, 22, 23, 32, 45,
                    48, 49, 50, 51}
        assert {s.as_id for s in portfolio.excluded()} == expected

    def test_key_asns(self, portfolio):
        assert portfolio.spec(46).asn == 293  # ESnet
        assert portfolio.spec(15).asn == 8075  # Microsoft
        assert portfolio.spec(14).asn == 15169  # Google
        assert portfolio.spec(60).asn == 3356  # Level3

    def test_exclusion_matches_threshold(self, portfolio):
        for spec in portfolio:
            assert spec.analyzed == (
                spec.ips_discovered >= MIN_DISCOVERED_IPS
            )

    def test_unknown_as_id_raises(self, portfolio):
        with pytest.raises(KeyError):
            portfolio.spec(99)


class TestScenarioNarrative:
    def test_esnet_is_all_sr_and_unfingerprintable(self, portfolio):
        scenario = portfolio.spec(46).scenario
        assert scenario.deploys_sr
        assert scenario.sr_share == 1.0
        assert scenario.snmp_share == 0.0
        assert scenario.ping_share == 0.0
        assert scenario.uhp  # unshrinking stacks (Sec. 6.2)

    def test_invisible_confirmed_ases(self, portfolio):
        # #2, #3, #16: no explicit tunnels at all.
        for as_id in (2, 3, 16):
            scenario = portfolio.spec(as_id).scenario
            assert scenario.deploys_sr
            assert scenario.propagate_share == 0.0

    def test_proximus_pure_classic_mpls(self, portfolio):
        scenario = portfolio.spec(7).scenario
        assert not scenario.deploys_sr
        assert scenario.mpls
        assert scenario.service_share >= 0.5  # LSO-generating stacks

    def test_fingerprint_rich_ases(self, portfolio):
        for as_id in (31, 38, 40, 55):
            scenario = portfolio.spec(as_id).scenario
            assert scenario.snmp_share >= 0.4

    def test_confirmed_ases_deploy_sr(self, portfolio):
        for spec in portfolio.confirmed():
            assert spec.scenario.deploys_sr

    def test_digital_ocean_all_implicit(self, portfolio):
        # classic MPLS without RFC 4950: every tunnel implicit, so no
        # LSEs ever reach AReST -- the correctly-undetected black AS
        scenario = portfolio.spec(20).scenario
        assert not scenario.deploys_sr
        assert scenario.rfc4950_share == 0.0
        assert scenario.propagate_share > 0.5

    def test_heterogeneous_srgb_rare(self, portfolio):
        hetero = [
            s for s in portfolio if s.scenario.heterogeneous_srgb
        ]
        assert len(hetero) == 1  # AS#26 (Free)

    def test_custom_srgb_minority(self, portfolio):
        sr_specs = [s for s in portfolio if s.scenario.deploys_sr]
        custom = [s for s in sr_specs if s.scenario.custom_srgb is not None]
        # survey: ~30% customize
        assert 0.05 <= len(custom) / len(sr_specs) <= 0.5

    def test_sizes_scale_with_discovery(self, portfolio):
        big = portfolio.spec(58).scenario  # Arelion, 339k addresses
        small = portfolio.spec(47).scenario  # Aruba, 346 addresses
        assert big.total_routers > small.total_routers
