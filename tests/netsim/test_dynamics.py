"""Unit tests for the network dynamics engine (churn, reconvergence).

Covers the plan template, the topology-level link down/up surface, SR
promote/demote round-trips, the scheduler's determinism and safety
invariants, quiesce, and the stale-walk guard: a probe answered after a
topology mutation must never be served from a pre-mutation recording.
"""

from __future__ import annotations

import pytest

from repro.netsim.dynamics import ChurnCounters, ChurnPlan, NetworkDynamics
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain, SrConfigError
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.probing.tnt import TntProber

from tests.conftest import ChainNetwork, TARGET_ASN, VP_ASN


def _ringed_chain(length: int = 4, **kwargs) -> ChainNetwork:
    """A chain with a bypass link so interior links are not bridges."""
    chain = ChainNetwork(length=length, **kwargs)
    chain.network.add_link(chain.routers[0], chain.routers[-1], cost=90)
    chain.controller.invalidate()
    chain.engine.invalidate_caches()
    return chain


def _dynamics(chain: ChainNetwork, plan: ChurnPlan) -> NetworkDynamics:
    scheduler = NetworkDynamics(
        plan,
        chain.network,
        chain.engine,
        chain.controller,
        chain.domains.get(TARGET_ASN),
        TARGET_ASN,
        "test",
    )
    chain.engine.dynamics = scheduler
    return scheduler


class TestChurnPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChurnPlan(link_failure_rate=1.5)
        with pytest.raises(ValueError):
            ChurnPlan(lsp_churn_rate=-0.1)
        with pytest.raises(ValueError):
            ChurnPlan(churn_window=0)
        with pytest.raises(ValueError):
            ChurnPlan(reconvergence_probes=-1)

    def test_none_is_inactive(self):
        plan = ChurnPlan.none()
        assert not plan.active
        assert plan.as_dict()["link_failure_rate"] == 0.0

    def test_intensity_mix(self):
        plan = ChurnPlan.intensity(0.4, seed=7)
        assert plan.active
        assert plan.link_failure_rate == 0.4
        assert plan.lsp_churn_rate == 0.2
        assert plan.sr_migration_rate == 0.1
        assert plan.seed == 7

    def test_as_dict_round_trips_fields(self):
        plan = ChurnPlan.intensity(0.2, seed=3)
        assert ChurnPlan(**plan.as_dict()) == plan


class TestLinkDownUp:
    def test_down_link_hidden_everywhere(self):
        chain = ChainNetwork(length=3)
        a, b = chain.routers[0].router_id, chain.routers[1].router_id
        before = chain.network.neighbors(a)
        chain.network.set_link_down(a, b)
        assert b not in chain.network.neighbors(a)
        assert a not in chain.network.neighbors(b)
        assert chain.network.link_between(a, b) is None
        assert chain.network.link_is_down(b, a)
        assert chain.network.down_links() == [(min(a, b), max(a, b))]
        graph = chain.network.to_graph()
        assert not graph.has_edge(a, b)
        chain.network.set_link_up(a, b)
        assert chain.network.neighbors(a) == before
        assert chain.network.link_between(a, b) is not None
        assert chain.network.down_links() == []

    def test_down_is_idempotent(self):
        chain = ChainNetwork(length=3)
        a, b = chain.routers[0].router_id, chain.routers[1].router_id
        chain.network.set_link_down(a, b)
        chain.network.set_link_down(b, a)
        assert len(chain.network.down_links()) == 1
        chain.network.set_link_up(a, b)
        chain.network.set_link_up(a, b)
        assert chain.network.down_links() == []

    def test_unknown_link_raises(self):
        chain = ChainNetwork(length=3)
        a = chain.routers[0].router_id
        c = chain.routers[2].router_id
        with pytest.raises(KeyError):
            chain.network.set_link_down(a, c)

    def test_failed_link_reroutes_probes(self):
        chain = _ringed_chain(length=4)
        vp = chain.vp.router_id
        a = chain.routers[0].router_id
        b = chain.routers[1].router_id
        direct = chain.engine.forward_probe(vp, chain.target, 3)
        assert direct is not None
        chain.network.set_link_down(a, b)
        chain.controller.invalidate()
        chain.engine.invalidate_caches()
        rerouted = chain.engine.forward_probe(vp, chain.target, 3)
        assert rerouted is not None
        # the bypass path visits different routers at this TTL
        assert rerouted.source_ip != direct.source_ip


class TestPromoteDemote:
    def _mapped_domain(self):
        net = Network()
        routers = [
            net.add_router(f"r{i}", TARGET_ASN) for i in range(3)
        ]
        net.add_link(routers[0], routers[1])
        net.add_link(routers[1], routers[2])
        domain = SegmentRoutingDomain(net, asn=TARGET_ASN, seed=1)
        domain.enroll(routers[0])
        index = domain.add_mapping_server_entry(routers[1])
        return net, domain, routers, index

    def test_promote_keeps_index(self):
        net, domain, routers, index = self._mapped_domain()
        config = domain.promote_mapping_entry(routers[1])
        assert config.sid_index == index
        assert domain.is_enrolled(routers[1].router_id)
        assert not domain.has_mapping_entry(routers[1].router_id)
        # the reused index must not burn the allocation cursor
        later = domain.enroll(routers[2])
        assert later.sid_index != index

    def test_demote_restores_entry(self):
        net, domain, routers, index = self._mapped_domain()
        domain.promote_mapping_entry(routers[1])
        restored = domain.demote_to_mapping_entry(routers[1])
        assert restored == index
        assert domain.has_mapping_entry(routers[1].router_id)
        assert not domain.is_enrolled(routers[1].router_id)
        assert not routers[1].sr_enabled

    def test_promote_without_entry_raises(self):
        net, domain, routers, _ = self._mapped_domain()
        with pytest.raises(SrConfigError):
            domain.promote_mapping_entry(routers[2])

    def test_demote_unenrolled_raises(self):
        net, domain, routers, _ = self._mapped_domain()
        with pytest.raises(SrConfigError):
            domain.demote_to_mapping_entry(routers[2])


class TestNetworkDynamics:
    def test_schedule_is_deterministic(self):
        plan = ChurnPlan(
            link_failure_rate=0.6, churn_window=8, reconvergence_probes=4
        )
        tallies = []
        for _ in range(2):
            chain = _ringed_chain(length=4)
            scheduler = _dynamics(chain, plan)
            for _ in range(100):
                scheduler.on_probe()
            tallies.append(
                (
                    scheduler.counters.as_dict(),
                    chain.network.down_links(),
                    chain.engine.epoch,
                )
            )
        assert tallies[0] == tallies[1]

    def test_bridges_never_fail(self):
        # a pure chain: every intra-AS link is a bridge, so even a
        # certain-failure draw must be refused (no partitions, ever)
        chain = ChainNetwork(length=4)
        plan = ChurnPlan(link_failure_rate=1.0, churn_window=4)
        scheduler = _dynamics(chain, plan)
        for _ in range(50):
            scheduler.on_probe()
        assert scheduler.counters.links_failed == 0
        assert chain.network.down_links() == []

    def test_certain_failure_fires_on_a_ring(self):
        chain = _ringed_chain(length=4)
        plan = ChurnPlan(
            link_failure_rate=1.0, churn_window=4, reconvergence_probes=8
        )
        scheduler = _dynamics(chain, plan)
        for _ in range(5):
            scheduler.on_probe()
        # exactly one failure: after it, the remaining links are bridges
        assert scheduler.counters.links_failed == 1
        assert len(chain.network.down_links()) == 1
        assert scheduler.in_transient()
        down = chain.network.down_links()[0]
        assert scheduler.blackholed(down[0])
        assert scheduler.blackholed(down[1])

    def test_transient_blackhole_drops_probes(self):
        # the pristine twin proves this TTL answers absent churn
        pristine = _ringed_chain(length=4)
        baseline = pristine.engine.forward_probe(
            pristine.vp.router_id, pristine.target, 3
        )
        assert baseline is not None
        chain = _ringed_chain(length=4)
        vp = chain.vp.router_id
        plan = ChurnPlan(
            link_failure_rate=1.0, churn_window=4, reconvergence_probes=64
        )
        scheduler = _dynamics(chain, plan)
        # the first tick opens window 0: the on-path failure blackholes
        # the failed link's endpoints for the reconvergence phase
        replies = [
            chain.engine.forward_probe(vp, chain.target, 3)
            for _ in range(6)
        ]
        assert scheduler.counters.links_failed == 1
        assert any(r is None for r in replies)

    def test_lsp_churn_and_migration_counters(self):
        net = Network()
        vp = net.add_router("vp", VP_ASN, role=RouterRole.VANTAGE)
        routers = []
        prev = vp
        for i in range(4):
            r = net.add_router(f"r{i}", TARGET_ASN)
            net.add_link(prev, r)
            routers.append(r)
            prev = r
        net.add_link(routers[0], routers[-1], cost=90)
        prefix = net.announce_prefix(routers[-1], 24)
        igp = ShortestPaths(net)
        ldp = LdpState(net, seed=1)
        domain = SegmentRoutingDomain(net, asn=TARGET_ASN, seed=1)
        for r in routers[:2]:
            domain.enroll(r)
        for r in routers[2:]:
            r.ldp_enabled = True
            domain.add_mapping_server_entry(r)
        controller = TunnelController(net, igp, ldp, {TARGET_ASN: domain})
        controller.set_policy(TunnelPolicy(asn=TARGET_ASN))
        engine = ForwardingEngine(net, igp, controller)
        plan = ChurnPlan(sr_migration_rate=1.0, churn_window=4)
        scheduler = NetworkDynamics(
            plan, net, engine, controller, domain, TARGET_ASN, "test"
        )
        engine.dynamics = scheduler
        for _ in range(10):
            scheduler.on_probe()
        assert scheduler.counters.sr_promotions >= 1
        promoted = scheduler.counters.sr_promotions
        mapped_before = sorted(
            r.router_id
            for r in routers
            if domain.has_mapping_entry(r.router_id)
        )
        scheduler.quiesce()
        mapped_after = sorted(
            r.router_id
            for r in routers
            if domain.has_mapping_entry(r.router_id)
        )
        assert len(mapped_after) == len(mapped_before) + promoted

    def test_quiesce_restores_pristine_topology(self):
        plan = ChurnPlan(
            link_failure_rate=0.8, churn_window=4, reconvergence_probes=4
        )
        pristine = _ringed_chain(length=4)
        chain = _ringed_chain(length=4)
        scheduler = _dynamics(chain, plan)
        for _ in range(200):
            scheduler.on_probe()
        assert scheduler.counters.links_failed >= 1
        scheduler.quiesce()
        assert chain.network.down_links() == []
        assert not scheduler.in_transient()
        for router in chain.routers:
            rid = router.router_id
            assert chain.network.neighbors(rid) == pristine.network.neighbors(
                rid
            )
        # post-quiesce forwarding matches a never-churned network
        chain.engine.dynamics = None
        a = chain.engine.forward_probe(chain.vp.router_id, chain.target, 3)
        b = pristine.engine.forward_probe(
            pristine.vp.router_id, pristine.target, 3
        )
        assert (a is None) == (b is None)
        if a is not None:
            assert a.source_ip == b.source_ip

    def test_counters_total(self):
        counters = ChurnCounters(
            links_failed=2, links_repaired=1, lsps_torn_down=3,
            sr_promotions=1, transient_probes=9,
        )
        assert counters.total_events() == 7
        assert counters.as_dict()["transient_probes"] == 9


class TestStaleWalkGuard:
    """The satellite-1 regression: a probe forwarded after a topology
    mutation must never be answered from a pre-mutation recording."""

    def _diamond(self):
        """vp -> a -> b -> e (cost 20) with a detour a -> c -> e (60)."""
        net = Network()
        vp = net.add_router("vp", VP_ASN, role=RouterRole.VANTAGE)
        a = net.add_router("a", TARGET_ASN)
        b = net.add_router("b", TARGET_ASN)
        c = net.add_router("c", TARGET_ASN)
        e = net.add_router("e", TARGET_ASN)
        net.add_link(vp, a)
        net.add_link(a, b)
        net.add_link(b, e)
        net.add_link(a, c, cost=30)
        net.add_link(c, e, cost=30)
        prefix = net.announce_prefix(e, 24)
        igp = ShortestPaths(net)
        ldp = LdpState(net, seed=1)
        controller = TunnelController(net, igp, ldp, {})
        controller.set_policy(TunnelPolicy(asn=TARGET_ASN))
        engine = ForwardingEngine(net, igp, controller)
        return net, controller, engine, vp, a, b, c, prefix.address_at(7)

    def test_post_invalidation_probe_never_reuses_recording(self):
        net, controller, engine, vp, a, b, c, target = self._diamond()
        walk = engine.record_walk(vp.router_id, target, flow_id=0)
        assert walk.ok
        before = engine.forward_probe_cached(walk, 2)
        assert before is not None
        assert before.truth_router_id == b.router_id
        assert engine.stats.probes_synthesized >= 1

        # the preferred path loses its middle link; caches invalidate
        net.set_link_down(a.router_id, b.router_id)
        controller.invalidate()
        engine.invalidate_caches()

        after = engine.forward_probe_cached(walk, 2)
        assert engine.stats.stale_walk_fallbacks == 1
        assert after is not None
        # the reply reflects the post-change world (detour via c), not
        # the recording's pre-change responder
        assert after.truth_router_id == c.router_id
        live = engine.forward_probe(vp.router_id, target, 2)
        assert live is not None
        assert after.source_ip == live.source_ip

    def test_walk_for_rerecords_after_mutation(self):
        """End-to-end: a trace spanning a mid-flight mutation carries a
        widened epoch span and its tail reflects the new topology."""
        net, controller, engine, vp, a, b, c, target = self._diamond()

        class _FlapOnce:
            """Scripted scheduler: one mutation after N clock ticks."""

            def __init__(self, after: int) -> None:
                self.remaining = after

            def on_probe(self) -> None:
                self.remaining -= 1
                if self.remaining == 0:
                    net.set_link_down(a.router_id, b.router_id)
                    controller.invalidate()
                    engine.invalidate_caches()

            def in_transient(self) -> bool:
                return False

            def blackholed(self, node: int) -> bool:
                return False

            def microloops(self, node: int) -> bool:
                return False

        engine.dynamics = _FlapOnce(after=2)
        prober = TntProber(engine, seed=5)
        trace = prober.trace(vp.router_id, target, vp_name="vp")
        assert trace.epoch_span is not None
        assert trace.crosses_epochs
        # hop 2 was probed after the flap: it must show the detour,
        # never the recording's pre-change answer
        hop2 = next(h for h in trace.hops if h.probe_ttl == 2)
        assert hop2.truth_router_id == c.router_id
        assert engine.stats.walks_recorded >= 2
