"""Fig. 10 -- SR / MPLS / IP areas per AS (traces and interfaces).

The paper's headline observations:
- Microsoft (#15), Bell Canada (#28), ESnet (#46) and Arelion (#58) see
  more than 50% of traces hit an SR-MPLS area;
- stubs show almost no SR;
- for most ASes SR interfaces are a small share of observed addresses,
  with Microsoft and ESnet as the notable exceptions.
"""

from repro.analysis.deployment import (
    deployment_rows,
    share_of_ases_with_low_sr_interfaces,
)
from repro.analysis.report import render_deployment
from repro.topogen.as_types import AsRole

from benchmarks.conftest import emit


def test_bench_fig10_deployment(benchmark, portfolio_results):
    rows = benchmark(lambda: deployment_rows(portfolio_results))
    emit(render_deployment(portfolio_results))

    by_id = {r.as_id: r for r in rows}

    # Shape 1: the headline ASes cross the 50% trace threshold.
    for as_id in (15, 28, 46, 58):
        assert by_id[as_id].share_hitting_sr > 0.5, as_id

    # Shape 2: stub ASes show (almost) no SR.
    stub_rows = [
        r
        for r in rows
        if portfolio_results[r.as_id].spec.role is AsRole.STUB
    ]
    assert all(r.share_hitting_sr <= 0.1 for r in stub_rows)

    # Shape 3: Microsoft and ESnet have outsized SR interface shares
    # (paper: ~50% and ~33%).
    assert by_id[15].sr_interface_share > 0.25
    assert by_id[46].sr_interface_share > 0.2
    low_share = share_of_ases_with_low_sr_interfaces(rows, threshold=0.10)
    emit(f"ASes with <= 10% SR interfaces: {low_share:.0%} (paper: 88%)")
    # most ASes stay at small SR interface shares; the simulator probes
    # ASes far more densely than 50 real VPs could, so the bar is lower
    # than the paper's 88%, but the skew must clearly hold
    assert low_share >= 0.3
    assert share_of_ases_with_low_sr_interfaces(rows, threshold=0.5) >= 0.7
    # ...and the two exceptions must rank at the very top
    ranked = sorted(
        rows, key=lambda r: r.sr_interface_share, reverse=True
    )
    assert {15, 46} & {r.as_id for r in ranked[:8]}
