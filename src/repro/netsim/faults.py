"""Deterministic fault injection for the measurement plane.

The paper's campaign ran 7.7M traceroutes from 50 real vantage points,
where probe loss, ICMP rate-limiting, transient outages and SNMP dataset
gaps are the norm.  This module models those impairments as a seeded
:class:`FaultPlan` so robustness experiments are reproducible bit-for-bit:

- **per-probe loss** -- each probe (identified by its flow, destination,
  TTL and retry attempt) is dropped with probability ``probe_loss``;
- **ICMP rate limiting** -- each router polices the ``time-exceeded``
  messages it originates through a token bucket refilled per probe sent
  (the campaign-wide probe counter is the clock);
- **transient blackouts** -- a router goes completely dark (neither
  forwards nor replies) for whole windows of the probe clock;
- **SNMP timeouts** -- a router's SNMPv3 fingerprint lookup times out,
  modelling gaps in the frozen public dataset.

All draws hash stable keys (:func:`repro.util.determinism.unit_hash`),
so a fixed plan replays the exact same fault schedule, and
:meth:`FaultPlan.none` -- the default everywhere -- injects nothing at
all: runners never attach an injector for an inactive plan, keeping seed
behaviour byte-identical.

The :class:`FaultPlan` is immutable configuration; the
:class:`FaultInjector` carries the mutable runtime (probe clock, token
buckets, counters) and is scoped per campaign AS so fault streams stay
independent across ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.util.determinism import unit_hash


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Immutable, seeded description of measurement-plane impairments."""

    #: probability that any single probe is lost in transit
    probe_loss: float = 0.0
    #: sustained ICMP time-exceeded replies per router per probe sent;
    #: None disables rate limiting entirely
    icmp_rate_limit: float | None = None
    #: token-bucket burst size for ICMP rate limiting
    icmp_burst: int = 8
    #: probability a router is dark during any given blackout window
    blackout_rate: float = 0.0
    #: width of one blackout window, in probes sent
    blackout_window: int = 256
    #: probability a router's SNMPv3 lookup times out (dataset gap)
    snmp_timeout_rate: float = 0.0
    #: seed for every fault draw (independent of the campaign seed)
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("probe_loss", "blackout_rate", "snmp_timeout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.icmp_rate_limit is not None and self.icmp_rate_limit < 0:
            raise ValueError("icmp_rate_limit must be >= 0 or None")
        if self.icmp_burst < 1:
            raise ValueError("icmp_burst must be >= 1")
        if self.blackout_window < 1:
            raise ValueError("blackout_window must be >= 1")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan (the default everywhere)."""
        return cls()

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return bool(
            self.probe_loss > 0.0
            or self.icmp_rate_limit is not None
            or self.blackout_rate > 0.0
            or self.snmp_timeout_rate > 0.0
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (checkpoint config signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class FaultCounters:
    """Per-stage tallies of what the injector actually did."""

    probes_sent: int = 0
    probes_lost: int = 0
    icmp_rate_limited: int = 0
    blackout_drops: int = 0
    snmp_timeouts: int = 0
    reveal_losses: int = 0

    def merge(self, other: "FaultCounters") -> None:
        """Accumulate another counter set into this one."""
        for f in fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )

    def total_faults(self) -> int:
        """Every injected fault (everything but ``probes_sent``)."""
        return (
            self.probes_lost
            + self.icmp_rate_limited
            + self.blackout_drops
            + self.snmp_timeouts
            + self.reveal_losses
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly view."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, record: dict) -> "FaultCounters":
        """Inverse of :meth:`as_dict`."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in record.items() if k in names})


class FaultInjector:
    """Runtime fault state for one campaign scope (typically one AS).

    Loss, blackout and SNMP draws hash stable keys, so they are
    independent of call order; only the token buckets and the blackout
    windows evolve with the probe clock, which advances once per probe
    sent -- itself a deterministic sequence for a fixed campaign.
    """

    def __init__(self, plan: FaultPlan, *scope: object) -> None:
        self._plan = plan
        self._scope = scope
        self._clock = 0
        #: router id -> (tokens, clock at last refill)
        self._buckets: dict[int, tuple[float, int]] = {}
        self.counters = FaultCounters()

    @property
    def plan(self) -> FaultPlan:
        """The immutable plan this injector executes."""
        return self._plan

    @property
    def clock(self) -> int:
        """Probes sent so far in this scope (the fault clock)."""
        return self._clock

    # -- probe plane -------------------------------------------------------------

    def on_probe(self) -> None:
        """Advance the fault clock: one probe has been sent."""
        self._clock += 1
        self.counters.probes_sent += 1

    def probe_lost(
        self,
        flow_id: int,
        dest: object,
        ttl: int,
        attempt: int,
        kind: str = "probe",
    ) -> bool:
        """Stable per-probe loss draw; attempts redraw independently."""
        if self._plan.probe_loss <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "loss", kind, *self._scope,
            flow_id, dest, ttl, attempt,
        )
        if draw < self._plan.probe_loss:
            self.counters.probes_lost += 1
            return True
        return False

    def blacked_out(self, router_id: int) -> bool:
        """Is the router dark during the current blackout window?"""
        rate = self._plan.blackout_rate
        if rate <= 0.0:
            return False
        window = self._clock // self._plan.blackout_window
        draw = unit_hash(
            self._plan.seed, "blackout", *self._scope, router_id, window
        )
        if draw < rate:
            self.counters.blackout_drops += 1
            return True
        return False

    def allow_icmp(self, router_id: int) -> bool:
        """Consume one token from the router's ICMP bucket, if available."""
        rate = self._plan.icmp_rate_limit
        if rate is None:
            return True
        burst = float(self._plan.icmp_burst)
        tokens, last = self._buckets.get(router_id, (burst, self._clock))
        tokens = min(burst, tokens + (self._clock - last) * rate)
        if tokens >= 1.0:
            self._buckets[router_id] = (tokens - 1.0, self._clock)
            return True
        self._buckets[router_id] = (tokens, self._clock)
        self.counters.icmp_rate_limited += 1
        return False

    # -- revelation -------------------------------------------------------------

    def reveal_lost(self, flow_id: int, key: object, attempt: int) -> bool:
        """Loss draw for TNT's extra revelation probes."""
        if self._plan.probe_loss <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "reveal-loss", *self._scope,
            flow_id, key, attempt,
        )
        if draw < self._plan.probe_loss:
            self.counters.reveal_losses += 1
            return True
        return False

    # -- control plane ----------------------------------------------------------

    def snmp_timeout(self, router_id: int) -> bool:
        """Stable per-router SNMP timeout draw (a frozen dataset gap)."""
        rate = self._plan.snmp_timeout_rate
        if rate <= 0.0:
            return False
        draw = unit_hash(
            self._plan.seed, "snmp-timeout", *self._scope, router_id
        )
        if draw < rate:
            self.counters.snmp_timeouts += 1
            return True
        return False
