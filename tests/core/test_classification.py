"""Tests for SR / MPLS / IP hop classification."""

from repro.core.classification import HopArea, classify_hops, trace_hits_area
from repro.core.detector import ArestDetector
from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.netsim.addressing import IPv4Address

from tests.conftest import make_hop, make_trace


def lso_segment(index: int, address: str) -> DetectedSegment:
    return DetectedSegment(
        flag=Flag.LSO,
        hop_indices=(index,),
        addresses=(IPv4Address.from_string(address),),
        top_labels=(600_000,),
        stack_depths=(2,),
    )


class TestClassifyHops:
    def test_strong_segments_mark_sr(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(17_005,)),
                make_hop(2, "10.0.0.2", labels=(17_005,)),
                make_hop(3, "10.0.0.3"),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        areas = classify_hops(trace, segments)
        assert areas == [HopArea.SR, HopArea.SR, HopArea.IP]

    def test_lso_counts_as_mpls_when_strong_only(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(600_000, 700_000))]
        )
        segments = [lso_segment(0, "10.0.0.1")]
        assert classify_hops(trace, segments)[0] is HopArea.MPLS
        assert classify_hops(trace, segments, strong_only=False)[0] is (
            HopArea.SR
        )

    def test_unflagged_labeled_hop_is_mpls(self):
        trace = make_trace([make_hop(1, "10.0.0.1", labels=(999_000,))])
        assert classify_hops(trace, [])[0] is HopArea.MPLS

    def test_revealed_hop_is_mpls(self):
        trace = make_trace([make_hop(1, "10.0.0.1", tnt_revealed=True)])
        assert classify_hops(trace, [])[0] is HopArea.MPLS

    def test_implicit_hop_is_mpls(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", truth_planes=("ldp",))]
        )
        assert classify_hops(trace, [])[0] is HopArea.MPLS

    def test_plain_hop_is_ip(self):
        trace = make_trace([make_hop(1, "10.0.0.1")])
        assert classify_hops(trace, [])[0] is HopArea.IP

    def test_star_hop_is_ip(self):
        trace = make_trace([make_hop(1, None)])
        assert classify_hops(trace, [])[0] is HopArea.IP


class TestTraceHits:
    def test_hits(self):
        areas = [HopArea.IP, HopArea.MPLS, HopArea.IP]
        assert trace_hits_area(areas, HopArea.MPLS)
        assert not trace_hits_area(areas, HopArea.SR)
