"""Tests for fingerprint-method and vendor-heatmap stats (Figs. 14/15)."""

from repro.analysis.fingerprint_stats import (
    arista_absent,
    fingerprint_share_rows,
    overall_method_split,
    vendor_heatmap,
    vendor_totals,
)
from repro.netsim.vendors import Vendor


class TestFingerprintShares:
    def test_rows_cover_every_as(self, small_portfolio_results):
        rows = fingerprint_share_rows(small_portfolio_results)
        assert {r.as_id for r in rows} == set(small_portfolio_results)

    def test_identified_never_exceeds_total(self, small_portfolio_results):
        for row in fingerprint_share_rows(small_portfolio_results):
            assert row.identified <= row.total_interfaces
            assert row.via_ttl + row.via_snmp == row.identified

    def test_ttl_dominates_overall(self, small_portfolio_results):
        # Fig. 14: most identifications come from TTL signatures.
        rows = fingerprint_share_rows(small_portfolio_results)
        ttl_share, snmp_share = overall_method_split(rows)
        assert ttl_share > snmp_share

    def test_split_sums_to_one(self, small_portfolio_results):
        rows = fingerprint_share_rows(small_portfolio_results)
        ttl_share, snmp_share = overall_method_split(rows)
        assert abs(ttl_share + snmp_share - 1.0) < 1e-9

    def test_empty_rows(self):
        assert overall_method_split([]) == (0.0, 0.0)


class TestVendorHeatmap:
    def test_arista_structurally_absent(self, small_portfolio_results):
        heatmap = vendor_heatmap(small_portfolio_results)
        assert arista_absent(heatmap)

    def test_kddi_has_snmp_vendors(self, small_portfolio_results):
        # AS#31's scenario sets high SNMP coverage.
        heatmap = vendor_heatmap(small_portfolio_results)
        assert sum(heatmap[31].values()) > 0

    def test_totals_aggregate(self, small_portfolio_results):
        heatmap = vendor_heatmap(small_portfolio_results)
        totals = vendor_totals(heatmap)
        assert sum(totals.values()) == sum(
            sum(c.values()) for c in heatmap.values()
        )

    def test_only_identifiable_vendors_present(self, small_portfolio_results):
        totals = vendor_totals(vendor_heatmap(small_portfolio_results))
        assert Vendor.ARISTA not in totals
        assert Vendor.UNKNOWN not in totals
