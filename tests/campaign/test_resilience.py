"""Resilient portfolio execution: error isolation, checkpoint/resume."""

import json

import pytest

from repro.campaign.checkpoint import CampaignCheckpoint, CheckpointMismatchError
from repro.campaign.runner import CampaignReport, CampaignRunner
from repro.netsim.faults import FaultPlan
from repro.util.retry import RetryPolicy


def _runner(**overrides) -> CampaignRunner:
    config = dict(seed=1, vps_per_as=2, targets_per_as=8)
    config.update(overrides)
    return CampaignRunner(**config)


class TestErrorIsolation:
    def test_one_failing_as_does_not_sink_the_portfolio(self):
        report = _runner().run_portfolio(as_ids=[46, 9999, 27])
        assert sorted(report) == [27, 46]
        assert set(report.failures) == {9999}
        failure = report.failures[9999]
        assert failure.stage == "setup"
        assert "no AS#9999 in portfolio" in failure.error
        assert "KeyError" in failure.error

    def test_failure_logged(self, caplog):
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            _runner().run_portfolio(as_ids=[9999])
        assert any("AS#9999 failed" in r.message for r in caplog.records)

    def test_report_is_a_mapping_over_successes(self):
        report = _runner().run_portfolio(as_ids=[46, 9999])
        assert isinstance(report, CampaignReport)
        assert len(report) == 1
        assert 46 in report
        assert report[46].as_id == 46
        assert report.results == {46: report[46]}
        with pytest.raises(KeyError):
            report[9999]

    def test_summary_mentions_failures(self):
        report = _runner().run_portfolio(as_ids=[46, 9999])
        summary = report.summary()
        assert "1 AS(es) completed" in summary
        assert "1 failed" in summary


class TestCheckpointResume:
    FAULTS = FaultPlan(probe_loss=0.05, seed=3)

    def test_resume_equals_uninterrupted(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        uninterrupted = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46, 27]
        )

        # "Crash" after the first AS: only 46 lands in the checkpoint.
        first = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46], checkpoint=path
        )
        assert sorted(first) == [46]

        resumed = _runner(fault_plan=self.FAULTS).run_portfolio(
            as_ids=[46, 27], checkpoint=path, resume=True
        )
        assert resumed.resumed_as_ids == [46]
        assert sorted(resumed) == sorted(uninterrupted)
        for as_id in uninterrupted:
            a, b = uninterrupted[as_id], resumed[as_id]
            assert a.dataset.traces == b.dataset.traces
            assert a.fingerprints == b.fingerprints
            assert a.analysis.flag_counts() == b.analysis.flag_counts()
            assert a.truth.sr_addresses == b.truth.sr_addresses
            assert a.fault_counters == b.fault_counters
            assert a.retry_accounting == b.retry_accounting
        assert (
            resumed.fault_counters.as_dict()
            == uninterrupted.fault_counters.as_dict()
        )

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint"):
            _runner().run_portfolio(as_ids=[46], resume=True)

    def test_missing_checkpoint_file_starts_fresh(self, tmp_path):
        path = tmp_path / "does-not-exist.json"
        report = _runner().run_portfolio(
            as_ids=[46], checkpoint=path, resume=True
        )
        assert sorted(report) == [46]
        assert report.resumed_as_ids == []
        assert path.exists()  # written after the fresh run

    def test_config_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        _runner(seed=1).run_portfolio(as_ids=[46], checkpoint=path)
        with pytest.raises(CheckpointMismatchError):
            _runner(seed=2).run_portfolio(
                as_ids=[46], checkpoint=path, resume=True
            )

    def test_retry_policy_is_part_of_the_signature(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        _runner().run_portfolio(as_ids=[46], checkpoint=path)
        with pytest.raises(CheckpointMismatchError):
            _runner(retry=RetryPolicy.default()).run_portfolio(
                as_ids=[46], checkpoint=path, resume=True
            )

    def test_checkpoint_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        store = CampaignCheckpoint(path, {"seed": 1})
        with pytest.raises(ValueError):
            store.load()

    def test_checkpoint_file_is_jsonl(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        _runner().run_portfolio(as_ids=[46, 27], checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + one line per AS
        header = json.loads(lines[0])
        assert header["kind"] == "arest-checkpoint"
        assert header["version"] == 3
        assert {json.loads(line)["as_id"] for line in lines[1:]} == {46, 27}

    def test_failed_as_is_restored_from_bank_on_resume(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        partial = _runner().run_portfolio(
            as_ids=[46, 9999], checkpoint=path
        )
        assert 9999 in partial.failures
        resumed = _runner().run_portfolio(
            as_ids=[46, 9999], checkpoint=path, resume=True
        )
        # 46 restores from the bank; 9999's banked failure stub is
        # restored too, so the resumed report reproduces the partial
        # one exactly instead of re-running a known-bad AS.
        assert resumed.resumed_as_ids == [46]
        assert 9999 in resumed.failures
        assert resumed.failures[9999].error == partial.failures[9999].error
        assert json.dumps(resumed.as_dict(), sort_keys=True) == json.dumps(
            partial.as_dict(), sort_keys=True
        )


class TestCheckpointSalvage:
    """A damaged checkpoint loses at most its damaged tail."""

    def _bank_two(self, path) -> None:
        _runner().run_portfolio(as_ids=[46, 27], checkpoint=path)

    def test_truncated_mid_json_salvages_prefix(self, tmp_path, caplog):
        path = tmp_path / "campaign.ckpt.json"
        self._bank_two(path)
        text = path.read_text()
        # Cut the file in the middle of the last banked AS's JSON line.
        cut = text.rstrip("\n").rfind('"as_id"')
        path.write_text(text[: cut + 20])

        store = CampaignCheckpoint(path, _runner()._config_signature())
        with caplog.at_level("WARNING", logger="repro.campaign.checkpoint"):
            entries = store.load()
        assert list(entries) == [46]  # first AS survives intact
        assert any("salvaged 1" in r.message for r in caplog.records)
        # The file was compacted: a second load is clean and identical.
        caplog.clear()
        entries_again = CampaignCheckpoint(
            path, _runner()._config_signature()
        ).load()
        assert list(entries_again) == [46]
        assert not caplog.records

    def test_garbled_line_discards_suffix(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        self._bank_two(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"as_id": 46, "entry": NOT JSON'
        path.write_text("\n".join(lines) + "\n")

        entries = CampaignCheckpoint(
            path, _runner()._config_signature()
        ).load()
        # Line 2 is damaged, so line 3 (AS 27) is suspect and dropped.
        assert entries == {}

    def test_resume_after_truncation_reruns_lost_as(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        uninterrupted = _runner().run_portfolio(as_ids=[46, 27])
        self._bank_two(path)
        text = path.read_text()
        path.write_text(text[: text.rstrip("\n").rfind("{") + 10])

        resumed = _runner().run_portfolio(
            as_ids=[46, 27], checkpoint=path, resume=True
        )
        assert resumed.resumed_as_ids == [46]
        assert sorted(resumed) == [27, 46]
        for as_id in uninterrupted:
            assert (
                resumed[as_id].analysis.flag_counts()
                == uninterrupted[as_id].analysis.flag_counts()
            )

    def test_legacy_v1_checkpoint_still_loads(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        self._bank_two(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header, entries = lines[0], lines[1:]
        v1 = dict(header, version=1)
        v1["completed"] = {
            str(e["as_id"]): e["entry"] for e in entries
        }
        path.write_text(json.dumps(v1))

        loaded = CampaignCheckpoint(path, _runner()._config_signature()).load()
        assert sorted(loaded) == [27, 46]
        # And the file was upgraded to current JSONL in place.
        first = json.loads(path.read_text().splitlines()[0])
        assert first["version"] == 3

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ValueError, match="not an AReST checkpoint"):
            CampaignCheckpoint(path, {"seed": 1}).load()


class MidCampaignFaultRunner(CampaignRunner):
    """Probes AS#46 normally, then dies in its fingerprint stage.

    Models an AS that burns real measurement budget (probes, injected
    faults, retries) before failing: exactly the partial work the
    failure stub must carry into the checkpoint.
    """

    def run_as(self, as_id):
        self._current_as = as_id
        return super().run_as(as_id)

    def _fingerprint(self, net, dataset, faults=None):
        if self._current_as == 46:
            raise RuntimeError("fingerprint backend unavailable")
        return super()._fingerprint(net, dataset, faults=faults)


class TestFailureStubTallies:
    """Failed ASes bank their partial fault/retry spend (satellite 1)."""

    FAULTS = FaultPlan(probe_loss=0.2, seed=7)

    def _runner(self) -> CampaignRunner:
        return MidCampaignFaultRunner(
            seed=1, vps_per_as=2, targets_per_as=8, fault_plan=self.FAULTS
        )

    def test_partial_tallies_fold_into_report(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        report = self._runner().run_portfolio(as_ids=[46], checkpoint=path)

        assert sorted(report) == []
        failure = report.failures[46]
        assert failure.stage == "fingerprint"
        # The probe stage ran under a lossy fault plan before the
        # failure, so the stub carries non-zero partial spend...
        assert failure.fault_counters.total_faults() > 0
        assert failure.retry_accounting.probes > 0
        # ...and the portfolio totals include it.
        assert report.fault_counters.total_faults() == (
            failure.fault_counters.total_faults()
        )
        assert report.retry_accounting.probes == (
            failure.retry_accounting.probes
        )

    def test_resume_reproduces_identical_report(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        partial = self._runner().run_portfolio(
            as_ids=[46, 27], checkpoint=path
        )
        resumed = self._runner().run_portfolio(
            as_ids=[46, 27], checkpoint=path, resume=True
        )
        # Nothing re-ran: 27 rehydrates, 46's failure stub restores
        # with its partial tallies, and the reports match exactly.
        assert resumed.resumed_as_ids == [27]
        assert json.dumps(resumed.as_dict(), sort_keys=True) == json.dumps(
            partial.as_dict(), sort_keys=True
        )
