"""Tests for the operator-survey generator (Table 2 / Fig. 5)."""

import pytest

from repro.analysis.survey import (
    NUM_RESPONDENTS,
    SRGB_DEFAULT_SHARE,
    SRLB_DEFAULT_SHARE,
    SURVEY_QUESTIONS,
    USAGE_SHARES,
    VENDOR_SHARES,
    generate_survey,
    summarize_survey,
)


@pytest.fixture(scope="module")
def summary():
    return summarize_survey(generate_survey())


class TestQuestions:
    def test_table2_questions_present(self):
        assert len(SURVEY_QUESTIONS) == 4
        vendors = SURVEY_QUESTIONS[
            "What vendor equipment do you use for SR-MPLS?"
        ]
        assert "Cisco" in vendors and "Brocade" in vendors
        assert len(vendors) == 11

    def test_usage_options(self):
        usages = SURVEY_QUESTIONS["Why do you use SR-MPLS?"]
        assert "Traffic Engineering" in usages
        assert "Network Resilience" in usages


class TestGeneration:
    def test_default_population_size(self):
        assert len(generate_survey()) == NUM_RESPONDENTS == 46

    def test_every_respondent_deploys_something(self):
        for answer in generate_survey():
            assert answer.vendors
            assert answer.usages

    def test_deterministic(self):
        assert generate_survey(seed=5) == generate_survey(seed=5)

    def test_seed_sensitivity(self):
        assert generate_survey(seed=5) != generate_survey(seed=6)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            generate_survey(n=0)


class TestFig5Marginals:
    def test_srgb_default_share(self, summary):
        assert summary.srgb_default_share == pytest.approx(
            SRGB_DEFAULT_SHARE, abs=0.02
        )

    def test_srlb_default_share(self, summary):
        assert summary.srlb_default_share == pytest.approx(
            SRLB_DEFAULT_SHARE, abs=0.02
        )

    def test_cisco_juniper_dominate(self, summary):
        ranked = [v for v, _s in summary.vendors_ranked()]
        assert set(ranked[:2]) == {"Cisco", "Juniper"}

    def test_huawei_trails_nokia(self, summary):
        # Fig. 5a ordering: ... Nokia, Arista, Linux, and Huawei
        assert (
            summary.vendor_shares["Huawei"]
            <= summary.vendor_shares["Nokia"]
        )

    def test_usage_ordering(self, summary):
        shares = summary.usage_shares
        assert shares["Network Resilience"] >= shares["Simplify MPLS Management"]
        assert (
            shares["Simplify MPLS Management"]
            >= shares["Traffic Engineering"]
        )
        # "around 40% ... also use SR-MPLS to transport best-effort traffic"
        assert shares["Carry Best Effort Traffic"] == pytest.approx(
            0.40, abs=0.08
        )

    def test_others_is_marginal(self, summary):
        assert summary.usage_shares["Others"] <= 0.2

    def test_shares_do_not_sum_to_one(self, summary):
        # multiple choice questions (figure caption)
        assert sum(summary.usage_shares.values()) > 1.0


class TestTargetsConsistency:
    def test_vendor_targets_cover_all_options(self):
        options = SURVEY_QUESTIONS[
            "What vendor equipment do you use for SR-MPLS?"
        ]
        assert set(VENDOR_SHARES) == set(options)

    def test_usage_targets_cover_all_options(self):
        options = SURVEY_QUESTIONS["Why do you use SR-MPLS?"]
        assert set(USAGE_SHARES) == set(options)
