"""Tests for the SNMPv3 fingerprint oracle."""

from repro.fingerprint.records import FingerprintMethod
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.vendors import Vendor

from tests.conftest import ChainNetwork


def interface_of(chain: ChainNetwork, index: int):
    return chain.routers[index].interfaces[
        chain.routers[index - 1].router_id if index else chain.vp.router_id
    ]


class TestSnmpOracle:
    def test_exact_vendor_hit(self):
        chain = ChainNetwork(vendor=Vendor.JUNIPER)
        for r in chain.routers:
            r.snmp_responsive = True
        oracle = SnmpOracle(chain.network, coverage=1.0)
        fp = oracle.lookup(interface_of(chain, 1))
        assert fp.method is FingerprintMethod.SNMP
        assert fp.exact_vendor is Vendor.JUNIPER

    def test_unresponsive_router_misses(self):
        chain = ChainNetwork()
        oracle = SnmpOracle(chain.network, coverage=1.0)
        assert not oracle.lookup(interface_of(chain, 1)).identified

    def test_arista_structurally_absent(self):
        # Sec. 5: the public dataset has no Arista fingerprints.
        chain = ChainNetwork(vendor=Vendor.ARISTA)
        for r in chain.routers:
            r.snmp_responsive = True
        oracle = SnmpOracle(chain.network, coverage=1.0)
        assert not oracle.lookup(interface_of(chain, 1)).identified

    def test_zero_coverage(self):
        chain = ChainNetwork()
        for r in chain.routers:
            r.snmp_responsive = True
        oracle = SnmpOracle(chain.network, coverage=0.0)
        assert not oracle.lookup(interface_of(chain, 1)).identified
        assert oracle.dataset_size() == 0

    def test_dataset_size_counts_responsive(self):
        chain = ChainNetwork()
        for r in chain.routers:
            r.snmp_responsive = True
        oracle = SnmpOracle(chain.network, coverage=1.0)
        assert oracle.dataset_size() == len(chain.routers)

    def test_unknown_address(self):
        chain = ChainNetwork()
        from repro.netsim.addressing import IPv4Address

        oracle = SnmpOracle(chain.network, coverage=1.0)
        fp = oracle.lookup(IPv4Address.from_string("203.0.113.77"))
        assert not fp.identified

    def test_invalid_coverage(self):
        import pytest

        chain = ChainNetwork()
        with pytest.raises(ValueError):
            SnmpOracle(chain.network, coverage=2.0)
