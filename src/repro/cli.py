"""Command-line interface for the AReST reproduction.

Subcommands mirror the paper's workflow::

    arest run-as 46                 # probe + analyze one portfolio AS
    arest portfolio                 # the full 41-AS campaign summary
    arest detect traces.jsonl       # offline AReST over a stored dataset
    arest serve --state-dir state   # always-on streaming detection service
    arest scale-campaign --out run  # paper-scale sharded campaign
    arest validate 46               # Table-3 style ground-truth scoring
    arest survey                    # regenerate Fig. 5 / Table 2
    arest portfolio-table           # print Table 5
    arest testbed                   # Fig. 6's controlled scenarios

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Sequence

from repro.obs.logsetup import LOG_FORMATS, LOG_LEVELS, configure_logging
from repro.version import __version__


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Supervised-engine knobs shared by campaign-running commands."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "per-AS worker processes (1 = in-process; results are "
            "byte-identical for any N)"
        ),
    )
    parser.add_argument(
        "--timeout-per-as",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock deadline per AS (workers past it are killed, "
            "re-dispatched once, then quarantined; requires --jobs > 1)"
        ),
    )
    _add_telemetry_argument(parser)


def _add_telemetry_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help=(
            "write run telemetry into DIR: manifest.json, a crash-safe "
            "telemetry.jsonl event stream, and a Prometheus textfile "
            "(results are byte-identical with or without it)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``arest`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="arest",
        description=(
            "AReST: Advanced Revelation of Segment Routing Tunnels "
            "(IMC 2025 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"arest {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="root logger threshold (default: warning)",
    )
    parser.add_argument(
        "--log-format",
        choices=LOG_FORMATS,
        default="text",
        help="text lines or one JSON object per line (default: text)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_as = sub.add_parser(
        "run-as", help="run the campaign against one portfolio AS"
    )
    run_as.add_argument("as_id", type=int, help="Table 5 AS id (1-60)")
    run_as.add_argument("--seed", type=int, default=1)
    run_as.add_argument("--vps", type=int, default=4, dest="vps_per_as")
    run_as.add_argument(
        "--targets", type=int, default=36, dest="targets_per_as"
    )
    run_as.add_argument(
        "--dump", metavar="FILE", help="write the trace dataset as JSONL"
    )
    run_as.add_argument(
        "--anonymize",
        metavar="KEY",
        help=(
            "prefix-preserving address anonymization (and ground-truth "
            "stripping) applied to the dumped dataset"
        ),
    )
    _add_telemetry_argument(run_as)

    portfolio = sub.add_parser(
        "portfolio", help="run the full 41-AS campaign"
    )
    portfolio.add_argument("--seed", type=int, default=1)
    portfolio.add_argument("--vps", type=int, default=4, dest="vps_per_as")
    portfolio.add_argument(
        "--targets", type=int, default=36, dest="targets_per_as"
    )
    portfolio.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-probe loss probability injected into the campaign",
    )
    portfolio.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "ICMP rate limit: sustained time-exceeded replies per router "
            "per probe sent (token bucket; default: unlimited)"
        ),
    )
    portfolio.add_argument(
        "--snmp-timeout",
        type=float,
        default=0.0,
        help="probability an SNMPv3 fingerprint lookup times out",
    )
    portfolio.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "topology churn intensity during probing: link flaps with "
            "reconvergence transients at RATE, LSP churn at RATE/2, SR "
            "migration waves at RATE/4 (default: static network)"
        ),
    )
    portfolio.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per probe (1 = no retries)",
    )
    portfolio.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="bank each completed AS to FILE (JSONL) as the run progresses",
    )
    portfolio.add_argument(
        "--resume",
        action="store_true",
        help="restore completed ASes from --checkpoint and run the rest",
    )
    portfolio.add_argument(
        "--as",
        action="append",
        type=int,
        dest="as_ids",
        metavar="ID",
        help="run only this AS id (repeatable; default: all analyzed)",
    )
    _add_execution_arguments(portfolio)

    degradation = sub.add_parser(
        "degradation",
        help="degradation curves: per-flag recall/precision vs. probe loss",
    )
    degradation.add_argument("--seed", type=int, default=1)
    degradation.add_argument(
        "--loss-levels",
        default="0,0.02,0.05,0.1",
        metavar="L1,L2,...",
        help="comma-separated probe-loss intensities to sweep",
    )
    degradation.add_argument(
        "--corruption",
        default=None,
        metavar="C1,C2,...",
        help=(
            "sweep trace-corruption intensities instead of probe loss "
            "(comma-separated rates for FaultPlan.corruption)"
        ),
    )
    degradation.add_argument(
        "--churn",
        default=None,
        metavar="C1,C2,...",
        help=(
            "sweep topology-churn intensities instead of probe loss "
            "(comma-separated rates for ChurnPlan.intensity)"
        ),
    )
    degradation.add_argument(
        "--stale-replay",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "fixed stale-label replay rate riding along a --corruption "
            "sweep (the semantic attack sanitization cannot remove)"
        ),
    )
    degradation.add_argument("--vps", type=int, default=3, dest="vps_per_as")
    degradation.add_argument(
        "--targets", type=int, default=15, dest="targets_per_as"
    )
    degradation.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per probe during the sweep",
    )

    scale = sub.add_parser(
        "scale-campaign",
        help=(
            "paper-scale sharded campaign: work-stealing workers, "
            "lease-based crash recovery, resumable checkpoint"
        ),
    )
    scale.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help=(
            "durable run directory: checkpoint.jsonl, spills/, "
            "report.json, metrics.prom; rerun with --resume to "
            "complete an interrupted campaign"
        ),
    )
    scale.add_argument(
        "--ases",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "run against a lazily-generated N-AS synthetic portfolio "
            "(default: the Table 5 portfolio)"
        ),
    )
    scale.add_argument(
        "--profile",
        choices=("small", "paper"),
        default="small",
        help=(
            "synthetic AS size profile: 'small' keeps every AS cheap, "
            "'paper' spreads across all Table 5 size tiers"
        ),
    )
    scale.add_argument("--seed", type=int, default=1)
    scale.add_argument("--vps", type=int, default=4, dest="vps_per_as")
    scale.add_argument(
        "--targets", type=int, default=36, dest="targets_per_as"
    )
    scale.add_argument(
        "--per-prefix",
        type=_positive_int,
        default=3,
        metavar="N",
        help="targets drawn per advertised prefix",
    )
    scale.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-probe loss probability injected into the campaign",
    )
    scale.add_argument(
        "--snmp-timeout",
        type=float,
        default=0.0,
        help="probability an SNMPv3 fingerprint lookup times out",
    )
    scale.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per probe (1 = no retries)",
    )
    scale.add_argument(
        "--as",
        action="append",
        type=int,
        dest="as_ids",
        metavar="ID",
        help="run only this AS id (repeatable; default: all analyzed)",
    )
    scale.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker processes pulling shards (1 = in-process; results "
            "are byte-identical for any N)"
        ),
    )
    scale.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        dest="vps_per_shard",
        metavar="VPS",
        help=(
            "vantage points per shard (default: one shard per AS; "
            "results are byte-identical for any value)"
        ),
    )
    scale.add_argument(
        "--lease-timeout",
        type=_positive_float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "heartbeat lease per shard: a silent worker past it is "
            "presumed lost and its shard is re-dispatched"
        ),
    )
    scale.add_argument(
        "--max-redispatch",
        type=int,
        default=1,
        metavar="N",
        help=(
            "re-dispatches per shard after crash/lease loss before "
            "the shard is quarantined"
        ),
    )
    scale.add_argument(
        "--max-rss",
        type=_positive_int,
        default=None,
        metavar="MB",
        help=(
            "per-worker resident-set budget: soft pressure sheds the "
            "topology cache, hard pressure recycles the worker "
            "(default: ungoverned)"
        ),
    )
    scale.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore banked shards/analyses from DIR's checkpoint and "
            "run only what's missing"
        ),
    )
    _add_telemetry_argument(scale)

    detect = sub.add_parser(
        "detect", help="run AReST offline over a JSONL trace dataset"
    )
    detect.add_argument("dataset", help="path to a JSONL trace dataset")
    detect.add_argument(
        "--segments-json",
        action="store_true",
        help=(
            "print the canonical segments document instead of the "
            "summary (byte-identical to the streaming service's "
            "GET /segments over the same traces)"
        ),
    )
    detect.add_argument(
        "--asn",
        type=int,
        default=None,
        help=(
            "with --segments-json: restrict hop attribution to this AS "
            "(default: analyze every hop, like a service without --asn)"
        ),
    )
    detect.add_argument(
        "--vendor-breakdown",
        action="store_true",
        help=(
            "print the per-vendor segment/flag breakdown (JSON) computed "
            "in one columnar pass over the dataset"
        ),
    )
    detect.add_argument(
        "--no-columnar",
        action="store_true",
        help=(
            "run the summary on the object-path reference detector "
            "instead of the columnar batch core (slow; the two are "
            "byte-identical by the differential contract)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the always-on streaming detection service",
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help=(
            "crash-safe state directory (ingest journal + snapshot); "
            "restarting on the same DIR resumes without losing any "
            "acknowledged trace"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help=(
            "TCP port (0 = ephemeral; the bound address is printed as "
            "a machine-parseable JSON line on the first line of stdout)"
        ),
    )
    serve.add_argument(
        "--asn",
        type=int,
        default=None,
        help="restrict hop attribution to this AS",
    )
    serve.add_argument(
        "--queue-capacity",
        type=_positive_int,
        default=1024,
        metavar="N",
        help="bounded ingest queue size (the service's memory bound)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="detection worker tasks",
    )
    serve.add_argument(
        "--detect-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "per-trace analysis deadline; a trace past it is "
            "quarantined as poison (0 disables)"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=256,
        metavar="N",
        help="compact the journal into a snapshot every N traces",
    )
    _add_telemetry_argument(serve)

    validate = sub.add_parser(
        "validate", help="ground-truth validation for one AS (Table 3)"
    )
    validate.add_argument("as_id", type=int)
    validate.add_argument("--seed", type=int, default=1)

    survey = sub.add_parser(
        "survey", help="regenerate the operator survey (Fig. 5)"
    )
    survey.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="write a full markdown campaign report"
    )
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--vps", type=int, default=4, dest="vps_per_as")
    report.add_argument(
        "--targets", type=int, default=36, dest="targets_per_as"
    )
    report.add_argument(
        "-o", "--output", metavar="FILE", help="write to FILE (else stdout)"
    )
    _add_execution_arguments(report)

    telemetry = sub.add_parser(
        "telemetry",
        help="summarize a run's telemetry directory (timings, counters)",
    )
    telemetry.add_argument(
        "directory", help="directory written by --telemetry-dir"
    )
    telemetry.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus exposition text instead of tables",
    )
    telemetry.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable summary instead of tables",
    )

    timeline = sub.add_parser(
        "timeline",
        help=(
            "reconstruct a traced run's cross-process timeline: "
            "per-shard Gantt view, critical path, straggler report"
        ),
    )
    timeline.add_argument(
        "directory",
        help="telemetry directory of a traced run (--telemetry-dir)",
    )
    timeline.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the machine-readable timeline report (critical "
            "path, stragglers, coverage share) instead of the text view"
        ),
    )
    timeline.add_argument(
        "--trace-json",
        metavar="FILE",
        help=(
            "additionally write Chrome/Perfetto trace-event JSON to "
            "FILE (load via chrome://tracing or ui.perfetto.dev)"
        ),
    )

    sub.add_parser("portfolio-table", help="print Table 5")
    sub.add_parser(
        "testbed",
        help="run the controlled validation environment (Fig. 6 in code)",
    )
    return parser


def _cmd_run_as(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner
    from repro.core.flags import Flag

    runner = CampaignRunner(
        seed=args.seed,
        vps_per_as=args.vps_per_as,
        targets_per_as=args.targets_per_as,
    )
    result = runner.run_as(args.as_id, telemetry_dir=args.telemetry_dir)
    analysis = result.analysis
    print(f"{result.spec}: {analysis.traces_total} traces, "
          f"{analysis.traces_in_as} crossing the AS")
    counts = analysis.flag_counts()
    print(
        "flags: "
        + ", ".join(f"{f.name}={counts[f]}" for f in Flag if counts[f])
        if any(counts.values())
        else "flags: none (no SR-MPLS evidence)"
    )
    print(
        f"areas: SR={len(analysis.sr_addresses)} "
        f"MPLS={len(analysis.mpls_addresses)} "
        f"IP={len(analysis.ip_addresses)} interfaces; "
        f"explicit tunnels {analysis.explicit_tunnel_share():.0%}"
    )
    if args.dump:
        dataset = result.dataset
        if args.anonymize:
            from repro.campaign import PrefixPreservingAnonymizer

            dataset = PrefixPreservingAnonymizer(
                args.anonymize
            ).anonymize_dataset(dataset)
        dataset.dump_jsonl(args.dump)
        print(f"dataset written to {args.dump}")
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_flag_proportions
    from repro.analysis.validation import headline_detection
    from repro.campaign import CampaignRunner
    from repro.netsim.dynamics import ChurnPlan
    from repro.netsim.faults import FaultPlan
    from repro.util.retry import RetryPolicy

    plan = FaultPlan(
        probe_loss=args.loss,
        icmp_rate_limit=args.rate_limit,
        snmp_timeout_rate=args.snmp_timeout,
        seed=args.seed,
    )
    churn = ChurnPlan.intensity(args.churn, seed=args.seed)
    runner = CampaignRunner(
        seed=args.seed,
        vps_per_as=args.vps_per_as,
        targets_per_as=args.targets_per_as,
        fault_plan=plan if plan.active else None,
        churn_plan=churn if churn.active else None,
        retry=RetryPolicy(max_attempts=args.retries),
    )
    report = runner.run_portfolio(
        as_ids=args.as_ids,
        checkpoint=args.checkpoint,
        resume=args.resume,
        jobs=args.jobs,
        timeout_per_as=args.timeout_per_as,
        telemetry_dir=args.telemetry_dir,
    )
    if not len(report):
        for failure in report.failures.values():
            print(
                f"FAILED AS#{failure.as_id} during {failure.stage}: "
                f"{failure.error}"
            )
        for quarantine in report.quarantined.values():
            print(
                f"QUARANTINED AS#{quarantine.as_id} ({quarantine.reason}, "
                f"{quarantine.attempts} attempts): {quarantine.detail}"
            )
        print(report.summary())
        return 130 if report.interrupted else 1
    print(render_flag_proportions(report))
    headline = headline_detection(report)
    print(
        f"\nconfirmed ASes detected: {headline.confirmed_detected}/"
        f"{headline.confirmed_total} ({headline.confirmed_rate:.0%}); "
        f"unconfirmed with evidence: {headline.unconfirmed_detected}/"
        f"{headline.unconfirmed_total} ({headline.unconfirmed_rate:.0%})"
    )
    if report.resumed_as_ids:
        print(
            f"resumed {len(report.resumed_as_ids)} AS(es) from "
            f"{args.checkpoint}"
        )
    if plan.active or report.retry_accounting.retries:
        counters = report.fault_counters
        print(
            f"faults: {counters.probes_lost} probes lost, "
            f"{counters.icmp_rate_limited} rate-limited, "
            f"{counters.blackout_drops} blackout drops, "
            f"{counters.snmp_timeouts} SNMP timeouts; "
            f"{report.retry_accounting.retries} retries "
            f"({report.retry_accounting.backoff_ms:.0f}ms backoff)"
        )
    for failure in report.failures.values():
        print(
            f"FAILED AS#{failure.as_id} during {failure.stage}: "
            f"{failure.error}"
        )
    for quarantine in report.quarantined.values():
        print(
            f"QUARANTINED AS#{quarantine.as_id} ({quarantine.reason}, "
            f"{quarantine.attempts} attempts): {quarantine.detail}"
        )
    if report.interrupted:
        print(f"interrupted: {report.summary()}")
        return 130
    return 0


def _cmd_degradation(args: argparse.Namespace) -> int:
    from repro.analysis.robustness import (
        degradation_study,
        render_degradation_table,
    )
    from repro.util.retry import RetryPolicy

    levels = tuple(
        float(level) for level in args.loss_levels.split(",") if level
    )
    corruption_levels = None
    if args.corruption is not None:
        corruption_levels = tuple(
            float(level) for level in args.corruption.split(",") if level
        )
    churn_levels = None
    if args.churn is not None:
        churn_levels = tuple(
            float(level) for level in args.churn.split(",") if level
        )
    study = degradation_study(
        loss_levels=levels,
        seed=args.seed,
        vps_per_as=args.vps_per_as,
        targets_per_as=args.targets_per_as,
        retry=RetryPolicy(max_attempts=args.retries),
        corruption_levels=corruption_levels,
        stale_replay_rate=args.stale_replay,
        churn_levels=churn_levels,
    )
    print(render_degradation_table(study))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.campaign import TraceDataset
    from repro.core.columnar import ColumnarDetector, TraceBatch

    # Streaming end to end: the header read is constant-cost and the
    # body flows through bounded columnar chunks (or, on the reference
    # path, one trace at a time), so paper-scale spill files analyze
    # in bounded memory.
    header = TraceDataset.read_header(args.dataset)
    if args.segments_json:
        from repro.service.state import batch_aggregate

        aggregate = batch_aggregate(
            TraceDataset.iter_jsonl(args.dataset), asn=args.asn
        )
        sys.stdout.buffer.write(aggregate.segments_json(args.asn))
        sys.stdout.buffer.flush()
        return 0
    if args.vendor_breakdown:
        import json

        from repro.analysis.vendor_breakdown import (
            VendorBreakdownAccumulator,
        )

        detector = ColumnarDetector()
        accumulator = VendorBreakdownAccumulator()
        for batch in TraceBatch.iter_jsonl(args.dataset):
            accumulator.feed_batch(batch, detector.detect_batch(batch))
        doc = {"target_asn": header.target_asn, **accumulator.as_doc()}
        print(json.dumps(doc, indent=2, sort_keys=False))
        return 0
    counts: Counter = Counter()
    seen = set()
    total = 0
    if args.no_columnar:
        from repro.core.detector import ArestDetector

        reference = ArestDetector()
        for trace in TraceDataset.iter_jsonl(args.dataset):
            total += 1
            for segment in reference.detect(trace, {}):
                if segment.key() not in seen:
                    seen.add(segment.key())
                    counts[segment.flag] += 1
    else:
        detector = ColumnarDetector()
        for batch in TraceBatch.iter_jsonl(args.dataset):
            total += len(batch)
            for segments in detector.detect_batch(batch):
                for segment in segments:
                    if segment.key() not in seen:
                        seen.add(segment.key())
                        counts[segment.flag] += 1
    print(
        f"{total} traces toward AS{header.target_asn}, "
        f"{len(seen)} distinct segments"
    )
    for flag, count in counts.most_common():
        print(f"  {flag.name:<4} {count}")
    if not counts:
        print("  (no SR-MPLS evidence)")
    return 0


def _cmd_scale_campaign(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.campaign import ScaleCampaign, default_vantage_points
    from repro.netsim.faults import FaultPlan
    from repro.obs.prometheus import render_scale_metrics
    from repro.topogen.synthetic import (
        SyntheticPortfolio,
        synthetic_vantage_points,
    )
    from repro.util.atomicio import atomic_write_text
    from repro.util.retry import RetryPolicy

    portfolio = None
    if args.ases is not None:
        portfolio = SyntheticPortfolio(
            args.ases, seed=args.seed, profile=args.profile
        )
    fleet = None
    if args.vps_per_as > len(default_vantage_points()):
        # paper-scale VP counts extend the Table 4 fleet with
        # deterministic clones instead of silently clamping
        fleet = synthetic_vantage_points(args.vps_per_as)
    plan = FaultPlan(
        probe_loss=args.loss,
        snmp_timeout_rate=args.snmp_timeout,
        seed=args.seed,
    )
    campaign = ScaleCampaign(
        portfolio=portfolio,
        vantage_points=fleet,
        seed=args.seed,
        vps_per_as=args.vps_per_as,
        targets_per_as=args.targets_per_as,
        per_prefix=args.per_prefix,
        fault_plan=plan if plan.active else None,
        retry=RetryPolicy(max_attempts=args.retries),
    )
    report = campaign.run(
        args.out,
        as_ids=args.as_ids,
        jobs=args.jobs,
        vps_per_shard=args.vps_per_shard,
        resume=args.resume,
        lease_timeout=args.lease_timeout,
        max_rss_bytes=(
            args.max_rss * 1024 * 1024 if args.max_rss else None
        ),
        max_redispatch=args.max_redispatch,
        telemetry_dir=args.telemetry_dir,
    )
    out = Path(args.out)
    # report.json is the determinism contract's artifact: identical
    # bytes for any --jobs/--shards value, fresh or resumed
    atomic_write_text(
        out / "report.json",
        _json.dumps(report.as_dict(), indent=2) + "\n",
    )
    metrics = render_scale_metrics(campaign.stats)
    if metrics:
        atomic_write_text(out / "metrics.prom", metrics)
    stats = campaign.stats
    print(report.summary())
    print(
        f"shards: {stats.get('shards_probed', 0)} probed, "
        f"{stats.get('shards_resumed', 0)} resumed, "
        f"{stats.get('shards_redispatched', 0)} re-dispatched, "
        f"{stats.get('shards_quarantined', 0)} quarantined; "
        f"workers: {stats.get('workers_spawned', 0)} spawned, "
        f"{stats.get('workers_crashed', 0)} crashed, "
        f"{stats.get('workers_recycled', 0)} recycled"
    )
    print(
        f"peak RSS {stats.get('rss_peak_bytes', 0) / 2**20:.0f} MiB, "
        f"wall {stats.get('wall_seconds', 0.0):.1f}s; "
        f"artifacts in {out}"
    )
    for as_id, failure in report.failures.items():
        print(
            f"FAILED AS#{as_id} during {failure.get('stage', '?')}: "
            f"{failure.get('error', '')}"
        )
    for key, detail in report.quarantined.items():
        print(
            f"QUARANTINED shard {key} ({detail.get('reason', '?')}, "
            f"{detail.get('attempts', '?')} attempts): "
            f"{detail.get('detail', '')}"
        )
    if report.interrupted:
        print(f"interrupted: resume with --resume --out {out}")
        return 130
    if not report.completed and (report.failures or report.quarantined):
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.service.server import (
        EXIT_BIND_FAILURE,
        ServiceConfig,
        exit_code_for,
        run_service,
    )

    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        asn=args.asn,
        queue_capacity=args.queue_capacity,
        workers=args.workers,
        detect_timeout=(
            args.detect_timeout if args.detect_timeout > 0 else None
        ),
        snapshot_every=args.snapshot_every,
        telemetry_dir=args.telemetry_dir,
    )

    def ready(host: str, port: int) -> None:
        # machine-parseable bound address: always the FIRST stdout line,
        # so `arest serve --port 0` callers can discover the ephemeral
        # port with a single readline
        print(
            _json.dumps(
                {
                    "kind": "arest-serve",
                    "event": "listening",
                    "host": host,
                    "port": port,
                    "url": f"http://{host}:{port}",
                }
            ),
            flush=True,
        )

    try:
        status = asyncio.run(run_service(config, ready=ready))
    except OSError as exc:
        print(
            f"arest serve: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return EXIT_BIND_FAILURE
    return exit_code_for(status)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_validation
    from repro.analysis.validation import validate_against_truth
    from repro.campaign import CampaignRunner

    result = CampaignRunner(seed=args.seed).run_as(args.as_id)
    report = validate_against_truth(result)
    print(render_validation(report))
    print(
        f"interface precision={report.interface_precision:.3f} "
        f"recall={report.interface_recall:.3f}"
    )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.analysis.survey import generate_survey, summarize_survey
    from repro.util.tables import format_table

    summary = summarize_survey(generate_survey(seed=args.seed))
    print(
        format_table(
            ["Vendor", "Share"],
            [(v, f"{s:.2f}") for v, s in summary.vendors_ranked()],
            title=f"Fig. 5a (N={summary.num_respondents})",
        )
    )
    print()
    print(
        format_table(
            ["Usage", "Share"],
            [(u, f"{s:.2f}") for u, s in summary.usages_ranked()],
            title="Fig. 5b",
        )
    )
    print(
        f"\nkeep default SRGB: {summary.srgb_default_share:.0%}; "
        f"SRLB: {summary.srlb_default_share:.0%}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.markdown_report import render_markdown_report
    from repro.campaign import CampaignRunner

    runner = CampaignRunner(
        seed=args.seed,
        vps_per_as=args.vps_per_as,
        targets_per_as=args.targets_per_as,
    )
    results = runner.run_portfolio(
        jobs=args.jobs,
        timeout_per_as=args.timeout_per_as,
        telemetry_dir=args.telemetry_dir,
    )
    summary = None
    if args.telemetry_dir:
        from repro.obs import summarize_telemetry

        summary = summarize_telemetry(args.telemetry_dir)
    text = render_markdown_report(results, telemetry=summary)
    if args.output:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(args.output, text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import (
        render_prometheus,
        render_telemetry_report,
        summarize_telemetry,
        summary_as_dict,
    )

    summary = summarize_telemetry(args.directory)
    if summary.manifest is None and not summary.counters:
        print(f"no telemetry found in {args.directory}", file=sys.stderr)
        return 1
    if args.prometheus:
        print(render_prometheus(summary), end="")
    elif args.json:
        print(
            _json.dumps(summary_as_dict(summary), indent=2, sort_keys=True)
        )
    else:
        print(render_telemetry_report(summary))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import (
        load_timeline,
        render_timeline,
        timeline_report_dict,
    )
    from repro.obs.trace import write_trace_json

    timeline = load_timeline(args.directory)
    if not timeline.spans:
        print(
            f"no traced spans found in {args.directory} (was the run "
            f"started with --telemetry-dir on a tracing-aware command?)",
            file=sys.stderr,
        )
        return 1
    if args.trace_json:
        write_trace_json(timeline, args.trace_json)
    if args.json:
        print(
            _json.dumps(
                timeline_report_dict(timeline), indent=2, sort_keys=True
            )
        )
    else:
        print(render_timeline(timeline))
        if args.trace_json:
            print(f"trace events written to {args.trace_json}")
    return 0


def _cmd_portfolio_table(args: argparse.Namespace) -> int:
    from repro.topogen.portfolio import default_portfolio
    from repro.util.tables import format_table

    rows = [
        (
            spec.label,
            spec.asn,
            spec.name,
            str(spec.role),
            f"{spec.traces_sent:,}",
            f"{spec.ips_discovered:,}",
            str(spec.confirmation),
            "yes" if spec.analyzed else "no",
        )
        for spec in default_portfolio()
    ]
    print(
        format_table(
            ["AS", "ASN", "Name", "Type", "Traces", "IPs", "Confirmed",
             "Analyzed"],
            rows,
            title="Table 5 -- targeted ASes",
        )
    )
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.testbed import run_all_scenarios

    failures = 0
    for outcome in run_all_scenarios():
        verdict = "PASS" if outcome.as_expected else "FAIL"
        failures += not outcome.as_expected
        raised = ", ".join(f.name for f in outcome.flags_raised) or "none"
        print(
            f"{outcome.scenario.name:<5} expected="
            f"{outcome.scenario.expected_flag.name:<5} raised={raised:<10} "
            f"[{verdict}]"
        )
    if failures:
        print(f"{failures} scenario(s) failed")
        return 1
    print("all five flags isolated")
    return 0


_COMMANDS = {
    "run-as": _cmd_run_as,
    "portfolio": _cmd_portfolio,
    "degradation": _cmd_degradation,
    "detect": _cmd_detect,
    "scale-campaign": _cmd_scale_campaign,
    "serve": _cmd_serve,
    "validate": _cmd_validate,
    "survey": _cmd_survey,
    "report": _cmd_report,
    "telemetry": _cmd_telemetry,
    "timeline": _cmd_timeline,
    "portfolio-table": _cmd_portfolio_table,
    "testbed": _cmd_testbed,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, args.log_format)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
