#!/usr/bin/env python3
"""SR-LDP interworking characterization (the paper's Sec. 7.2).

Runs campaigns against hybrid ASes -- networks mid-migration where a
legacy LDP island survives inside an SR core -- and reports:

- the interworking mode mix (SR->LDP dominates, like the paper's 95%);
- LDP vs. SR cloud sizes (LDP islands are smaller);
- one annotated example trace showing the stitching point.

Run:  python examples/interworking_study.py
"""

import statistics
from collections import Counter

from repro.campaign import CampaignRunner
from repro.core.interworking import InterworkingMode
from repro.util.tables import format_table

#: hybrid ASes in the portfolio (legacy LDP islands on the egress or,
#: for GTT/Cogent, the ingress side)
HYBRID_AS_IDS = [17, 31, 36, 53, 54, 56, 59]


def main() -> None:
    runner = CampaignRunner(seed=1)
    modes: Counter = Counter()
    sr_sizes: list[int] = []
    ldp_sizes: list[int] = []
    example = None

    for as_id in HYBRID_AS_IDS:
        print(f"probing AS#{as_id} ...")
        result = runner.run_as(as_id)
        modes.update(result.analysis.interworking_modes)
        sr_sizes.extend(result.analysis.sr_cloud_sizes)
        ldp_sizes.extend(result.analysis.ldp_cloud_sizes)
        if example is None:
            for trace, segments in result.trace_segments:
                labeled = trace.labeled_hops()
                planes = {
                    hop.truth_planes[0]
                    for hop in labeled
                    if hop.truth_planes
                }
                if {"sr", "ldp"} <= planes:
                    example = trace
                    break

    hybrid = {
        mode: count
        for mode, count in modes.items()
        if mode
        not in (InterworkingMode.FULL_SR, InterworkingMode.FULL_LDP)
    }
    total_hybrid = sum(hybrid.values())
    sr_tunnels = sum(
        count
        for mode, count in modes.items()
        if mode is not InterworkingMode.FULL_LDP
    )

    print()
    print(
        format_table(
            ["Mode", "Tunnels", "Share"],
            [
                (str(mode), count, f"{count / total_hybrid:.1%}")
                for mode, count in sorted(
                    hybrid.items(), key=lambda kv: -kv[1]
                )
            ],
            title="Interworking mode mix (Fig. 11)",
        )
    )
    print(
        f"\nfull-SR tunnels: {modes[InterworkingMode.FULL_SR]} of "
        f"{sr_tunnels} SR tunnels "
        f"({modes[InterworkingMode.FULL_SR] / sr_tunnels:.0%}; "
        "paper: ~90%)"
    )
    print(
        f"cloud sizes (Fig. 12): SR mean {statistics.mean(sr_sizes):.2f} "
        f"vs LDP mean {statistics.mean(ldp_sizes):.2f} -- smaller LDP "
        "islands interconnected by larger SR clouds"
    )

    if example is not None:
        print("\nexample hybrid trace (truth transport per hop):")
        for hop in example.hops:
            if hop.address is None:
                continue
            plane = hop.truth_planes[0] if hop.truth_planes else "-"
            label = (
                f"label={hop.top_label}" if hop.top_label is not None else ""
            )
            print(f"  ttl {hop.probe_ttl:>2}  {hop.address!s:<15} "
                  f"{plane:<8} {label}")


if __name__ == "__main__":
    main()
