"""In-process telemetry recording: hierarchical spans and typed counters.

The campaign's determinism contract -- byte-identical reports and
checkpoints for any execution plan -- forbids wall-clock data anywhere
near the results.  Telemetry therefore lives entirely *beside* the
pipeline: a :class:`Telemetry` recorder collects monotonic span
durations and counter tallies into its own buffers, and everything it
records flows only into observability artifacts (the JSONL event sink,
the run manifest, the Prometheus export), never into a result object.

Two implementations share one duck-typed surface:

- :class:`Telemetry` -- the live recorder.  ``span(stage)`` is a
  context manager measuring a monotonic duration and recording it under
  the hierarchical path of the spans currently open (``as`` >
  ``analyze`` > ``detect`` becomes ``as/analyze/detect``);
  ``count(name, n)`` bumps a typed counter; ``add_seconds`` records a
  pre-measured duration (for hot loops that accumulate locally instead
  of opening a span per iteration).
- :class:`NullTelemetry` -- the default everywhere.  Every method is a
  no-op and ``enabled`` is False, so hot loops can skip even the clock
  reads (``if telemetry.enabled: ...``) and the uninstrumented path
  stays byte-and-branch identical to the seed behaviour.

Recorders are cheap, single-threaded, and scoped to one unit of work
(one AS task, typically).  :meth:`Telemetry.export` snapshots the
buffers into a plain JSON-able dict that survives a trip through the
supervised executor's outcome pipe, and :func:`merge_counters` folds
counter dicts together -- plain addition, so aggregation is
order-independent by construction (serial, parallel and resumed runs
produce identical totals).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping


class NullTelemetry:
    """No-op recorder: the zero-overhead default.

    Shares the :class:`Telemetry` surface so instrumented code never
    branches on whether telemetry is on -- except hot loops, which may
    consult :attr:`enabled` to skip clock reads entirely.
    """

    __slots__ = ()

    enabled = False
    clock = staticmethod(time.monotonic)

    @contextmanager
    def span(self, stage: str, **attrs: object) -> Iterator[None]:
        """No-op span."""
        yield

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter bump."""

    def gauge(self, name: str, value: float) -> None:
        """No-op gauge set."""

    def add_seconds(self, stage: str, seconds: float, **attrs: object) -> None:
        """No-op duration record."""

    def export(self) -> dict:
        """Empty export, shaped like :meth:`Telemetry.export`."""
        return {"spans": [], "counters": {}, "gauges": {}}


#: process-wide shared no-op instance (stateless, safe to share)
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Live recorder for one unit of work (typically one AS task).

    Not thread-safe; the campaign gives each worker its own recorder
    and ships the export back over the outcome channel.
    """

    __slots__ = ("clock", "spans", "counters", "gauges", "_stack")

    enabled = True

    def __init__(self, clock=time.monotonic) -> None:
        self.clock = clock
        #: span records: {"stage", "path", "seconds", + caller attrs}
        self.spans: list[dict] = []
        #: typed counter tallies by name
        self.counters: dict[str, int] = {}
        #: last-write-wins gauges by name
        self.gauges: dict[str, float] = {}
        self._stack: list[str] = []

    @contextmanager
    def span(self, stage: str, **attrs: object) -> Iterator[None]:
        """Measure a monotonic duration under the current span path.

        The record is emitted even when the body raises, so a stage
        that failed mid-flight still shows the time it sank.
        """
        self._stack.append(stage)
        start = self.clock()
        try:
            yield
        finally:
            seconds = self.clock() - start
            path = "/".join(self._stack)
            self._stack.pop()
            record = {"stage": stage, "path": path, "seconds": seconds}
            if attrs:
                record.update(attrs)
            self.spans.append(record)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def add_seconds(self, stage: str, seconds: float, **attrs: object) -> None:
        """Record a pre-measured duration as a span under the open path.

        Hot loops accumulate locally (two clock reads per iteration)
        and call this once, instead of paying a context manager per
        iteration.
        """
        path = "/".join((*self._stack, stage))
        record = {"stage": stage, "path": path, "seconds": seconds}
        if attrs:
            record.update(attrs)
        self.spans.append(record)

    def export(self) -> dict:
        """Plain JSON-able snapshot (survives the outcome pipe)."""
        return {
            "spans": [dict(record) for record in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }


def merge_counters(
    into: dict[str, int], counters: Mapping[str, int]
) -> dict[str, int]:
    """Fold ``counters`` into ``into`` (in place) and return it.

    Pure addition: merging any permutation of the same counter dicts
    yields identical totals, which is what makes serial, parallel and
    resumed runs agree.
    """
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value
    return into
