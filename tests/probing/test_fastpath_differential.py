"""Differential property tests for the single-walk fast path.

The tentpole contract: recording one instrumented walk per flow and
synthesizing every probe's reply from it must be a *pure performance*
change.  Whatever the topology, TTL model, vendor mix, fault plan or
retry policy, the fast path must emit Traces byte-identical to the
reference per-probe walker running with every memoization switched off
(``engine.memoize = False``, the pre-change cost model).

Three code paths are exercised: the fused single-pass synthesizer
(fault-free, retry-free), the generic cached-walk prober (faults or
retries active), and the automatic fallback to the reference walker
(walk not exact).
"""

from hypothesis import given, settings, strategies as st

from repro.netsim.dynamics import ChurnPlan, NetworkDynamics
from repro.netsim.faults import FaultInjector, FaultPlan
from repro.probing.tnt import TntProber
from repro.util.retry import RetryPolicy

from tests.conftest import TARGET_ASN, scaled_examples
from tests.test_properties import build_chain, chain_configs

churn_plans = st.builds(
    ChurnPlan,
    link_failure_rate=st.sampled_from([0.2, 0.6, 1.0]),
    lsp_churn_rate=st.sampled_from([0.0, 0.3]),
    sr_migration_rate=st.sampled_from([0.0, 0.3]),
    churn_window=st.sampled_from([4, 16]),
    reconvergence_probes=st.sampled_from([0, 6]),
    seed=st.integers(min_value=0, max_value=50),
)

#: moderate rates: high enough to fire on short chains, low enough that
#: probes still get through and traces keep interesting structure
_rate = st.sampled_from([0.0, 0.15, 0.5])

fault_plans = st.builds(
    FaultPlan,
    probe_loss=_rate,
    stack_suppress_rate=_rate,
    stack_truncate_rate=_rate,
    label_garble_rate=_rate,
    stale_replay_rate=_rate,
    ttl_perturb_rate=_rate,
    spoof_rate=_rate,
    duplicate_hop_rate=_rate,
    reorder_rate=_rate,
    reroute_rate=_rate,
    seed=st.integers(min_value=0, max_value=50),
)


def _trace_pair(config, plan=None, retry=None):
    """One fast-path trace and one reference trace of the same chain.

    Each leg gets its own freshly built network (and fault injector, if
    any) so no state crosses over; the reference leg runs with
    ``memoize = False`` -- the full pre-change cost model.
    """
    traces = {}
    for fast in (False, True):
        chain = build_chain(config)
        chain.engine.memoize = fast
        if plan is not None:
            chain.engine.faults = FaultInjector(plan, config["seed"])
        prober = TntProber(
            chain.engine, seed=config["seed"], retry=retry, fast_path=fast
        )
        traces[fast] = (
            prober.trace(chain.vp.router_id, chain.target, vp_name="vp"),
            chain.engine.stats,
        )
    return traces[True], traces[False]


@settings(max_examples=scaled_examples(60), deadline=None)
@given(config=chain_configs)
def test_fast_path_is_byte_identical(config):
    """Fault-free, retry-free: the fused synthesizer (or its fallback)
    must reproduce the reference walker's Trace exactly."""
    (fast_trace, fast_stats), (ref_trace, ref_stats) = _trace_pair(config)
    assert fast_trace == ref_trace
    # The fast leg must actually have recorded a walk (fused or generic);
    # the reference leg must never touch the recording machinery.
    assert fast_stats.walks_recorded + fast_stats.walks_fallback >= 1
    assert ref_stats.walks_recorded == ref_stats.probes_synthesized == 0


@settings(max_examples=scaled_examples(60), deadline=None)
@given(config=chain_configs, plan=fault_plans)
def test_fast_path_is_byte_identical_under_faults(config, plan):
    """With an active fault plan the fused path steps aside, but the
    cached-walk prober must still replay every per-probe fault draw in
    reference order -- corrupted traces agree byte for byte."""
    (fast_trace, _), (ref_trace, _) = _trace_pair(config, plan=plan)
    assert fast_trace == ref_trace


@settings(max_examples=scaled_examples(30), deadline=None)
@given(config=chain_configs)
def test_retry_enabled_fault_free_is_byte_identical(config):
    """Regression: attempt 0 reuses the legacy draw key, so enabling a
    retry policy on a loss-free plane must not change a single byte --
    in either the fast path or the reference walker."""
    retry = RetryPolicy.default()
    (fast_trace, _), (ref_trace, _) = _trace_pair(config, retry=retry)
    assert fast_trace == ref_trace

    (plain_fast, _), (plain_ref, _) = _trace_pair(config)
    assert fast_trace == plain_fast
    assert ref_trace == plain_ref


def _churn_trace_pair(config, plan):
    """Trace the same churning chain with and without the fast path.

    Each leg gets a fresh chain plus its own :class:`NetworkDynamics`
    built from the same plan, so both see the identical seeded mutation
    schedule on the identical virtual probe clock.  A bypass link turns
    the chain into a ring so link failures survive the bridge-safety
    check and actually fire.
    """
    traces = {}
    for fast in (False, True):
        chain = build_chain(config)
        if len(chain.routers) >= 3:
            chain.network.add_link(
                chain.routers[0], chain.routers[-1], cost=90
            )
            chain.controller.invalidate()
            chain.engine.invalidate_caches()
        chain.engine.memoize = fast
        chain.engine.dynamics = NetworkDynamics(
            plan,
            chain.network,
            chain.engine,
            chain.controller,
            chain.domains.get(TARGET_ASN),
            TARGET_ASN,
            "diff",
        )
        prober = TntProber(
            chain.engine, seed=config["seed"], retry=None, fast_path=fast
        )
        traces[fast] = prober.trace(
            chain.vp.router_id, chain.target, vp_name="vp"
        )
    return traces[True], traces[False]


@settings(max_examples=scaled_examples(40), deadline=None)
@given(config=chain_configs, plan=churn_plans)
def test_fast_path_is_byte_identical_under_churn(config, plan):
    """Mid-trace topology mutation: the cached-walk prober must fall
    back (stale epochs, transients) so that its Trace -- epoch span,
    blackholed hops, rerouted tails and all -- matches the reference
    walker byte for byte."""
    fast_trace, ref_trace = _churn_trace_pair(config, plan)
    assert fast_trace == ref_trace
