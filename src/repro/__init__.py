"""AReST -- Advanced Revelation of Segment Routing Tunnels.

A full reproduction of "Autonomous Systems under AReST" (IMC 2025):
the AReST SR-MPLS detection methodology (:mod:`repro.core`) together
with every substrate the paper's measurement campaign relied on, built
as a deterministic simulator -- MPLS/SR/LDP control and data planes
(:mod:`repro.netsim`), TNT-style traceroute (:mod:`repro.probing`),
router fingerprinting (:mod:`repro.fingerprint`), Internet topology
generation (:mod:`repro.topogen`), campaign orchestration
(:mod:`repro.campaign`) and the paper's analyses (:mod:`repro.analysis`).

Quickstart::

    from repro.campaign import CampaignRunner
    from repro.topogen import default_portfolio

    runner = CampaignRunner(portfolio=default_portfolio(), seed=1)
    result = runner.run_as(46)         # ESnet-like ground-truth AS
    print(result.analysis.flag_counts())
"""

from repro.core import ArestDetector, ArestPipeline, Flag
from repro.version import __version__

__all__ = ["ArestDetector", "ArestPipeline", "Flag", "__version__"]
