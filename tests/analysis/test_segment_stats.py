"""Tests for segment-length statistics."""

import pytest

from repro.analysis.segment_stats import (
    SegmentLengthRow,
    batch_segment_length_rows,
    portfolio_expected_false_positives,
    segment_length_rows,
)


def row(counts):
    return SegmentLengthRow(
        as_id=1, name="x", length_counts=tuple(sorted(counts.items()))
    )


class TestRowMath:
    def test_mean(self):
        assert row({2: 2, 4: 2}).mean_length() == 3.0

    def test_empty(self):
        r = row({})
        assert r.total() == 0
        assert r.mean_length() == 0.0
        assert r.max_length() == 0
        assert r.expected_false_positives() == 0.0

    def test_expected_fps_decrease_with_length(self):
        short = row({2: 10}).expected_false_positives(pool_size=100)
        long = row({4: 10}).expected_false_positives(pool_size=100)
        assert short > long

    def test_expected_fps_formula(self):
        # 5 runs of length 2 at pool 10: 5 * 1/10
        assert row({2: 5}).expected_false_positives(
            pool_size=10
        ) == pytest.approx(0.5)


class TestFromCampaign:
    def test_rows_cover_ases(self, small_portfolio_results):
        rows = segment_length_rows(small_portfolio_results)
        assert {r.as_id for r in rows} == set(small_portfolio_results)

    def test_all_runs_at_least_two(self, small_portfolio_results):
        for r in segment_length_rows(small_portfolio_results):
            assert all(l >= 2 for l, _c in r.length_counts)

    def test_esnet_runs_span_the_core(self, small_portfolio_results):
        rows = segment_length_rows(small_portfolio_results)
        esnet = next(r for r in rows if r.as_id == 46)
        assert esnet.mean_length() >= 2.5

    def test_portfolio_fp_budget_negligible(self, small_portfolio_results):
        rows = segment_length_rows(small_portfolio_results)
        # with the ~1e6 Cisco pool the whole campaign's coincidence
        # budget is far below one segment -- Sec. 4.1's argument, priced
        assert portfolio_expected_false_positives(rows) < 1e-3

    def test_batch_rows_match_object_rows(self, small_portfolio_results):
        """Columnar re-detection reproduces the stored-segment rows."""
        assert batch_segment_length_rows(
            small_portfolio_results
        ) == segment_length_rows(small_portfolio_results)
