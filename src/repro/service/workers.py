"""Detection workers: queue consumers with poison containment.

Each worker task loops ``queue.get() → analyze → fold into state``.
The analysis step is a *pure* per-trace projection
(:func:`repro.service.state.analyze_trace`): it touches no shared
state, so the two failure modes a hostile input can cause are both
contained without corrupting the aggregate:

- **exception** -- the worker catches it, folds in a poison delta
  (collected + quarantined + a ``poison-trace`` anomaly, keeping the
  reconciliation invariant intact) and moves on;
- **timeout** -- the analysis runs on a worker-owned thread pool and is
  awaited with a deadline.  On expiry the future is abandoned (its
  eventual result, if any, is never read) and the pool is replaced so
  the hung thread cannot serialize later traces behind it; the trace is
  quarantined as poison.

Either way the worker itself survives -- the acceptance criterion is
that no input can kill a worker -- and every dequeued trace is
accounted for exactly once (``task_done`` runs in a ``finally``).
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro.service.ingest import IngestQueue
from repro.service.state import SegmentAggregate, ServiceState, analyze_trace

logger = logging.getLogger(__name__)


class WorkerPool:
    """Owns the detection worker tasks of one service instance."""

    def __init__(
        self,
        queue: IngestQueue,
        state: ServiceState,
        *,
        workers: int = 1,
        detect_timeout: float | None = 5.0,
        telemetry=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.queue = queue
        self.state = state
        self.workers = workers
        self.detect_timeout = detect_timeout
        self.telemetry = telemetry
        #: traces quarantined because their analysis failed or hung
        self.poisoned = 0
        #: traces that ran past the per-request deadline
        self.timeouts = 0
        self._tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks on the running loop."""
        self._stopping = False
        if self.detect_timeout is not None:
            self._executor = self._new_executor()
        self._tasks = [
            asyncio.create_task(self._run(i), name=f"arest-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel every worker and wait for them to unwind.

        The flag backs the cancellation up: on 3.11, ``wait_for`` can
        swallow a cancellation that races the inner future's completion
        (the analysis result wins, the CancelledError is lost), and a
        worker whose cancel was eaten would otherwise re-block on an
        empty queue forever.  The loop re-checks the flag between
        traces, so a swallowed cancel still ends the worker.
        """
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _new_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="arest-detect"
        )

    # -- the loop ------------------------------------------------------------

    async def _run(self, index: int) -> None:
        while not self._stopping:
            seq, trace = await self.queue.get()
            try:
                delta = await self._analyze(seq, trace)
                self.state.ingest(seq, delta)
                if self.state.compaction_due:
                    self._compact()
            except asyncio.CancelledError:
                raise
            except Exception:
                # folding a well-formed delta cannot fail; anything
                # here is a bug worth a log line, never a dead worker
                logger.exception("worker %d: unexpected error", index)
            finally:
                self.queue.task_done()

    async def _analyze(self, seq: int, trace) -> SegmentAggregate:
        """One trace's pure projection, bounded and contained.

        Every path through the analysis -- clean, poisoned, timed out
        -- lands one ``detect`` latency observation, so the histogram's
        count equals the traces dequeued and its tail shows the
        deadline ceiling.
        """
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return await self._analyze_inner(seq, trace)
        tick = tel.clock()
        try:
            return await self._analyze_inner(seq, trace)
        finally:
            tel.observe("detect", tel.clock() - tick)

    async def _analyze_inner(self, seq: int, trace) -> SegmentAggregate:
        if self._executor is None:
            try:
                return analyze_trace(
                    trace, asn=self.state.asn, pipeline=self.state.pipeline
                )
            except Exception as exc:
                return self._poison(seq, f"{type(exc).__name__}: {exc}")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            partial(
                analyze_trace,
                trace,
                asn=self.state.asn,
                pipeline=self.state.pipeline,
            ),
        )
        try:
            return await asyncio.wait_for(future, self.detect_timeout)
        except asyncio.TimeoutError:
            # the hung thread is abandoned; replace the pool so later
            # traces never queue behind it
            self.timeouts += 1
            self._executor.shutdown(wait=False)
            self._executor = self._new_executor()
            return self._poison(seq, "per-request deadline exceeded")
        except Exception as exc:
            return self._poison(seq, f"{type(exc).__name__}: {exc}")

    def _poison(self, seq: int, detail: str) -> SegmentAggregate:
        self.poisoned += 1
        logger.warning("trace seq=%d quarantined as poison: %s", seq, detail)
        if self.telemetry is not None:
            self.telemetry.count("ingest_poisoned")
        return SegmentAggregate.poison()

    def _compact(self) -> None:
        if self.telemetry is not None:
            with self.telemetry.span("flush"):
                self.state.compact()
        else:
            self.state.compact()
