"""Tests for tunnel-type statistics (Fig. 13)."""

from repro.analysis.tunnel_stats import (
    explicit_share_by_role,
    tunnel_type_rows,
)
from repro.probing.tunnels import TunnelType
from repro.topogen.as_types import AsRole


class TestTunnelTypeRows:
    def test_rows_cover_every_as(self, small_portfolio_results):
        rows = tunnel_type_rows(small_portfolio_results)
        assert {r.as_id for r in rows} == set(small_portfolio_results)

    def test_shares_sum_to_one(self, small_portfolio_results):
        for row in tunnel_type_rows(small_portfolio_results):
            if row.total() == 0:
                continue
            total_share = sum(
                row.share(t) for t in TunnelType
            )
            assert abs(total_share - 1.0) < 1e-9

    def test_esnet_all_explicit(self, small_portfolio_results):
        row = next(
            r
            for r in tunnel_type_rows(small_portfolio_results)
            if r.as_id == 46
        )
        assert row.share(TunnelType.EXPLICIT) == 1.0
        assert row.share_paths_with_explicit >= 0.85

    def test_transit_explicit_share_positive(self, small_portfolio_results):
        rows = tunnel_type_rows(small_portfolio_results)
        assert explicit_share_by_role(rows, AsRole.TRANSIT) > 0.0

    def test_unknown_role_share_zero(self, small_portfolio_results):
        rows = [
            r
            for r in tunnel_type_rows(small_portfolio_results)
            if r.role is AsRole.STUB
        ]
        # Proximus (stub) has tunnels but only a partial explicit share
        assert rows
