"""Resident-set-size sampling and the campaign memory watchdog.

Paper-scale campaigns must not die to the OOM killer: a 1M-trace run
streams its traces to disk precisely so the working set stays bounded,
and the executor holds each worker to that promise.  Two small pieces:

- :func:`current_rss_bytes` / :func:`peak_rss_bytes` -- portable
  (Linux-first) resident-set sampling.  Current RSS reads
  ``/proc/self/status`` where available and degrades to the
  ``getrusage`` high-water mark elsewhere; peak RSS is always the
  ``ru_maxrss`` high-water mark.
- :class:`RssWatchdog` -- a threshold checked at *shard boundaries*
  (never mid-write, so shedding can never corrupt state).  Crossing the
  soft level asks the process to shed caches; crossing the hard level
  asks the supervisor to recycle the worker after the in-flight shard
  completes -- admission throttling, not SIGKILL, so every durable
  artifact stays whole.

Everything here is observational: sampling memory never changes any
result byte.
"""

from __future__ import annotations

import gc
import resource
from dataclasses import dataclass
from pathlib import Path

_PROC_STATUS = Path("/proc/self/status")

#: fraction of the hard budget at which cache shedding starts
SOFT_FRACTION = 0.8


def _ru_maxrss_bytes() -> int:
    """The getrusage high-water mark, normalized to bytes.

    Linux reports kilobytes; macOS reports bytes.  Values above 1 TiB
    cannot be kilobytes of RSS on any machine this runs on, so the
    heuristic normalizes without platform sniffing.
    """
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw if raw > 1 << 40 else raw * 1024


def peak_rss_bytes() -> int:
    """Highest resident set this process ever reached, in bytes."""
    return _ru_maxrss_bytes()


def current_rss_bytes() -> int:
    """The resident set right now, in bytes (best effort).

    Falls back to the high-water mark on platforms without
    ``/proc/self/status``; the watchdog then degrades to peak-based
    (more conservative) decisions rather than failing.
    """
    try:
        with _PROC_STATUS.open("r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return _ru_maxrss_bytes()


@dataclass(slots=True)
class RssVerdict:
    """One watchdog check at a shard boundary."""

    rss_bytes: int
    #: caches were shed (soft level crossed) during this check
    shed: bool = False
    #: the process should be recycled before taking more work
    recycle: bool = False


class RssWatchdog:
    """Budget enforcement for one worker process.

    ``max_rss_bytes`` is the hard budget; ``None`` disables the
    watchdog entirely (every check returns a quiet verdict).  The
    response ladder is deliberately graceful:

    1. below the soft level (:data:`SOFT_FRACTION` of the budget):
       nothing happens;
    2. above the soft level: shed -- run the registered cache-dropping
       callbacks and force a full garbage collection, then re-sample;
    3. still above the hard budget after shedding: report ``recycle``
       so the supervisor replaces the process *between* shards.  Work
       in flight always completes and every durable write stays atomic
       -- memory pressure throttles admission, never correctness.
    """

    def __init__(self, max_rss_bytes: int | None) -> None:
        if max_rss_bytes is not None and max_rss_bytes <= 0:
            raise ValueError("max_rss_bytes must be positive")
        self.max_rss_bytes = max_rss_bytes
        self._shedders: list = []
        #: tallies for telemetry (observational only)
        self.checks = 0
        self.sheds = 0
        self.recycles_requested = 0

    def add_shedder(self, callback) -> None:
        """Register a cache-dropping callback run when shedding."""
        self._shedders.append(callback)

    def check(self) -> RssVerdict:
        """Sample RSS and apply the response ladder (shard boundary)."""
        if self.max_rss_bytes is None:
            return RssVerdict(rss_bytes=0)
        self.checks += 1
        rss = current_rss_bytes()
        verdict = RssVerdict(rss_bytes=rss)
        if rss < SOFT_FRACTION * self.max_rss_bytes:
            return verdict
        self.shed()
        verdict.shed = True
        verdict.rss_bytes = current_rss_bytes()
        if verdict.rss_bytes >= self.max_rss_bytes:
            verdict.recycle = True
            self.recycles_requested += 1
        return verdict

    def shed(self) -> None:
        """Drop every registered cache and force a full collection.

        Shedders stay registered (caches refill between checks), so
        they must be idempotent -- ``cache.clear``-style callbacks.
        """
        self.sheds += 1
        for callback in self._shedders:
            callback()
        gc.collect()
