"""Process-level robustness: kill -9, exit codes, two-strike drain.

These tests run ``arest serve`` as a real subprocess and do to it what
operators (and kernels) do: SIGKILL mid-ingest, SIGTERM for a graceful
drain, a second signal to abort one, and a port squatter to force a
bind failure.  The contracts under test:

- no acknowledged (202) trace is ever lost or double-counted across a
  ``kill -9`` + restart (the state dir carries everything);
- exit 0 + manifest ``ok`` for a clean drain, exit 130 + manifest
  ``interrupted`` for a two-strike abort, exit 2 for a bind failure;
- ``--port 0`` prints a machine-parseable bound address as the first
  stdout line.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.state import batch_aggregate
from repro.service.wire import trace_to_json
from tests.service.conftest import corpus

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _serve(*extra: str) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline()
    try:
        address = json.loads(line)
    except json.JSONDecodeError:  # pragma: no cover - diagnostics
        proc.kill()
        raise AssertionError(
            f"first stdout line is not JSON: {line!r}\n"
            f"{proc.stderr.read()}"
        )
    assert address["kind"] == "arest-serve"
    assert address["event"] == "listening"
    return proc, address["host"], address["port"]


def _post(host: str, port: int, traces) -> dict:
    body = "\n".join(json.dumps(trace_to_json(t)) for t in traces)
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("POST", "/trace", body=body)
    response = conn.getresponse()
    payload = json.loads(response.read())
    conn.close()
    assert response.status == 202, payload
    return payload


def _get(host: str, port: int, path: str) -> bytes:
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("GET", path)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    assert response.status == 200
    return data


def _wait_depth_zero(host: str, port: int, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        doc = json.loads(_get(host, port, "/healthz"))
        if doc["queue_depth"] == 0:
            return
        time.sleep(0.05)
    raise AssertionError("queue never drained")


class TestKillNine:
    def test_no_acknowledged_trace_lost_or_double_counted(self, tmp_path):
        traces = corpus(12)
        state_dir = str(tmp_path / "state")
        proc, host, port = _serve(
            "--state-dir", state_dir, "--snapshot-every", "4"
        )
        try:
            for i in range(0, len(traces), 3):
                _post(host, port, traces[i : i + 3])
        finally:
            # SIGKILL right after the last 202: workers may be mid-fold,
            # a compaction may be mid-flight -- the journal has it all
            proc.kill()
            proc.wait(timeout=10)

        proc, host, port = _serve(
            "--state-dir", state_dir, "--snapshot-every", "4"
        )
        try:
            _wait_depth_zero(host, port)
            served = _get(host, port, "/segments")
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        # byte-identical to a run that never crashed
        assert served == batch_aggregate(traces).segments_json()

    def test_repeated_crashes_converge(self, tmp_path):
        traces = corpus(8)
        state_dir = str(tmp_path / "state")
        for round_no in range(2):
            half = traces[round_no * 4 : round_no * 4 + 4]
            proc, host, port = _serve(
                "--state-dir", state_dir, "--snapshot-every", "3"
            )
            try:
                _post(host, port, half)
            finally:
                proc.kill()
                proc.wait(timeout=10)
        proc, host, port = _serve(
            "--state-dir", state_dir, "--snapshot-every", "3"
        )
        try:
            _wait_depth_zero(host, port)
            served = _get(host, port, "/segments")
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        assert served == batch_aggregate(traces).segments_json()


class TestExitCodes:
    def test_sigterm_drains_to_exit_zero_and_manifest_ok(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        proc, host, port = _serve(
            "--state-dir",
            str(tmp_path / "state"),
            "--telemetry-dir",
            str(telemetry),
        )
        _post(host, port, corpus(4))
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        manifest = json.loads((telemetry / "manifest.json").read_text())
        assert manifest["exit_status"] == "ok"

    def test_second_strike_aborts_with_130_and_manifest_interrupted(
        self, tmp_path
    ):
        telemetry = tmp_path / "telemetry"
        proc, host, port = _serve(
            "--state-dir",
            str(tmp_path / "state"),
            "--telemetry-dir",
            str(telemetry),
            "--queue-capacity",
            "32768",
        )
        # queue ~20k traces (at ~0.1 ms each, seconds of drain work) so
        # the abort strike decisively beats the drain; the strikes are
        # spaced out because two pending SIGINTs coalesce into one
        body_lines = [
            json.dumps(trace_to_json(t)) for t in corpus(30)
        ] * 67  # ~2k lines per request
        body = "\n".join(body_lines)
        for _ in range(10):
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("POST", "/trace", body=body)
            response = conn.getresponse()
            assert response.status == 202, response.read()
            response.read()
            conn.close()
        proc.send_signal(signal.SIGINT)
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=60) == 130
        manifest = json.loads((telemetry / "manifest.json").read_text())
        assert manifest["exit_status"] == "interrupted"

    def test_bind_failure_exits_2_before_any_stdout(self, tmp_path):
        import socket

        squatter = socket.socket()
        squatter.bind(("127.0.0.1", 0))
        squatter.listen(1)
        port = squatter.getsockname()[1]
        try:
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "--state-dir",
                    str(tmp_path / "state"),
                    "--port",
                    str(port),
                ],
                capture_output=True,
                text=True,
                timeout=30,
                env=_env(),
            )
        finally:
            squatter.close()
        assert proc.returncode == 2
        assert proc.stdout == ""
        assert "cannot bind" in proc.stderr
