#!/usr/bin/env python3
"""SR policies and binding SIDs: mid-path stack growth (paper Sec. 6.2).

The paper observes that "SR policies allow one hop on a path to
dynamically replace certain SIDs with new, potentially deeper, stacks".
This example builds a chain whose ingress steers every tunnel into an
SR policy at a mid-path head-end, then shows:

1. the traceroute view -- the binding SID rides to the head-end, where
   the quoted stack suddenly changes;
2. what AReST makes of it -- the BSID hop is LSO/LVR territory while
   the surrounding node-SID runs stay CO, the exact mixed picture the
   paper reports for Google and Amazon.

Run:  python examples/sr_policy_splice.py
"""

from repro.core.detector import ArestDetector
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import Vendor
from repro.probing.tnt import TntProber

ASN = 65_001


def build() -> tuple[Network, int, object, ForwardingEngine, TunnelController]:
    net = Network()
    vp = net.add_router("vp", asn=64_900, role=RouterRole.VANTAGE)
    routers, prev = [], vp
    for i in range(8):
        router = net.add_router(f"r{i}", asn=ASN, vendor=Vendor.CISCO)
        net.add_link(prev, router)
        routers.append(router)
        prev = router
    prefix = net.announce_prefix(routers[-1], 24)
    igp = ShortestPaths(net)
    sr = SegmentRoutingDomain(net, asn=ASN, seed=1)
    for router in routers:
        sr.enroll(router)
    controller = TunnelController(net, igp, LdpState(net, seed=1), {ASN: sr})
    controller.set_policy(TunnelPolicy(asn=ASN, sr_policy_share=1.0))
    engine = ForwardingEngine(net, igp, controller)
    return net, vp.router_id, prefix.address_at(5), engine, controller


def main() -> None:
    net, vp, target, engine, controller = build()

    program = controller.program_for(
        net.routers_in_as(ASN)[0].router_id,
        net.owner_of(target),
    )
    assert program is not None
    print(
        f"ingress program: labels={program.labels} "
        "(node SID of the head-end + the policy's binding SID)\n"
    )

    trace = TntProber(engine, seed=1).trace(vp, target, vp_name="policy-vp")
    print(trace)

    registry = controller.policy_registry(ASN)
    bsid = program.labels[1]
    policy = next(
        p
        for rid in [r.router_id for r in net.routers_in_as(ASN)]
        for p in registry.policies_at(rid)
        if p.binding_sid == bsid
    )
    print(
        f"\nat the head-end (router #{policy.head_end}) the BSID "
        f"{policy.binding_sid} is popped and the policy's segment list "
        f"{policy.segment_labels} is spliced in -- the stack changed "
        "mid-path."
    )

    print("\nAReST's view of the same trace:")
    for segment in ArestDetector().detect(trace, {}):
        print(
            f"  {segment.flag.name:<4} labels={segment.top_labels} "
            f"depths={segment.stack_depths}"
        )
    print(
        "\nThe node-SID stretches raise CO; the binding-SID hop raises a "
        "stack flag at best -- the LSO-alongside-strong-evidence pattern "
        "the paper reads as advanced SR (Sec. 6.3)."
    )


if __name__ == "__main__":
    main()
