"""AS roles and SR-deployment confirmation sources (Table 5)."""

from __future__ import annotations

import enum


class AsRole(enum.Enum):
    """Position in the AS hierarchy (CAIDA AS-relationship derived)."""

    STUB = "Stub"
    CONTENT = "Content"
    TRANSIT = "Transit"
    TIER1 = "Tier-1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Confirmation(enum.Enum):
    """Where the SR-MPLS deployment confirmation came from.

    Matches Table 5's colour coding: red = Cisco private communication,
    blue = the operator survey, green = both, black = no confirmation
    (CAIDA-rank selection).
    """

    CISCO = "cisco"
    SURVEY = "survey"
    BOTH = "both"
    NONE = "none"

    @property
    def confirmed(self) -> bool:
        """True for Cisco-, survey- or doubly-confirmed ASes."""
        return self is not Confirmation.NONE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
