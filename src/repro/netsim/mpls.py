"""MPLS label stack primitives (RFC 3032).

A label stack entry (LSE) carries a 20-bit label, a 3-bit traffic class, a
bottom-of-stack bit, and an 8-bit TTL (Fig. 2 of the paper).  The simulator
threads real :class:`LabelStack` objects through its forwarding plane so
ICMP quoting (RFC 4950) can expose exactly what a real ``time-exceeded``
message would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Iterator

MAX_LABEL = 2**20 - 1
MAX_TC = 2**3 - 1
MAX_TTL = 2**8 - 1


class ReservedLabel(enum.IntEnum):
    """Special-purpose labels (RFC 3032 / RFC 7274).

    Values 0-15 are reserved; values 16-255 are set aside for future
    special purposes, which is why vendor label pools start at 16 or
    higher (Table 1 caption in the paper).
    """

    IPV4_EXPLICIT_NULL = 0
    ROUTER_ALERT = 1
    IPV6_EXPLICIT_NULL = 2
    IMPLICIT_NULL = 3
    ENTROPY_LABEL_INDICATOR = 7
    GAL = 13
    OAM_ALERT = 14
    EXTENSION = 15


#: First label value usable for ordinary forwarding.
FIRST_UNRESERVED_LABEL = 16


@lru_cache(maxsize=1 << 16)
def _cached_plain_lse(
    label: int, tc: int, bottom: bool, ttl: int
) -> "LabelStackEntry":
    return LabelStackEntry(label=label, tc=tc, bottom_of_stack=bottom, ttl=ttl)


@lru_cache(maxsize=1 << 16)
def _cached_probe_lse(
    label: int, tc: int, bottom: bool, ttl_value: int
) -> "LabelStackEntry":
    # import here to avoid a module cycle (walkcache imports mpls); the
    # pooled SymTtl keeps the probe-provenance flag the recorder reads
    from repro.netsim.walkcache import _PROBE_TTL_POOL

    return LabelStackEntry(
        label=label, tc=tc, bottom_of_stack=bottom, ttl=_PROBE_TTL_POOL[ttl_value]
    )


def _cached_lse(label: int, tc: int, bottom: bool, ttl: int) -> "LabelStackEntry":
    """A memoized LSE: per-hop swap/decrement rebuilds the same few
    thousand (label, tc, bottom, ttl) combinations over and over.

    Probe-derived symbolic TTLs (:class:`~repro.netsim.walkcache.SymTtl`
    with ``probe=True``) hash equal to their plain-int value, so they get
    a cache of their own keyed by the concrete value.
    """
    if getattr(ttl, "probe", False):
        return _cached_probe_lse(label, tc, bottom, int(ttl))
    return _cached_plain_lse(label, tc, bottom, ttl)


@dataclass(frozen=True, slots=True)
class LabelStackEntry:
    """One 32-bit MPLS label stack entry."""

    label: int
    tc: int = 0
    bottom_of_stack: bool = False
    ttl: int = MAX_TTL

    def __post_init__(self) -> None:
        if not 0 <= self.label <= MAX_LABEL:
            raise ValueError(f"label out of 20-bit range: {self.label}")
        if not 0 <= self.tc <= MAX_TC:
            raise ValueError(f"traffic class out of 3-bit range: {self.tc}")
        if not 0 <= self.ttl <= MAX_TTL:
            raise ValueError(f"LSE-TTL out of 8-bit range: {self.ttl}")

    def with_ttl(self, ttl: int) -> "LabelStackEntry":
        """A copy with the TTL replaced."""
        return replace(self, ttl=ttl)

    def with_label(self, label: int) -> "LabelStackEntry":
        """A copy with the label replaced."""
        return replace(self, label=label)

    def decremented(self) -> "LabelStackEntry":
        """Return a copy with TTL decremented by one.

        Raises :class:`ValueError` if the TTL is already zero; the
        forwarding engine must check for expiry before decrementing past
        zero, as a real LSR would drop the packet and emit ICMP.
        """
        if self.ttl == 0:
            raise ValueError("cannot decrement an expired LSE-TTL")
        return replace(self, ttl=self.ttl - 1)

    def encode(self) -> int:
        """Pack into the 32-bit on-wire representation (Fig. 2)."""
        return (
            (self.label << 12)
            | (self.tc << 9)
            | (int(self.bottom_of_stack) << 8)
            | self.ttl
        )

    @classmethod
    def decode(cls, word: int) -> "LabelStackEntry":
        """Unpack a 32-bit on-wire LSE."""
        if not 0 <= word <= 2**32 - 1:
            raise ValueError(f"LSE word out of 32-bit range: {word}")
        return cls(
            label=(word >> 12) & MAX_LABEL,
            tc=(word >> 9) & MAX_TC,
            bottom_of_stack=bool((word >> 8) & 1),
            ttl=word & MAX_TTL,
        )

    def __str__(self) -> str:
        marker = "|S" if self.bottom_of_stack else ""
        return f"L={self.label},ttl={self.ttl}{marker}"


class LabelStack:
    """An ordered MPLS label stack; index 0 is the top (active) entry.

    The stack maintains the bottom-of-stack invariant: exactly the last
    entry has ``bottom_of_stack=True`` (when non-empty).
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[LabelStackEntry] = ()) -> None:
        self._entries: list[LabelStackEntry] = []
        for entry in entries:
            self._entries.append(entry)
        self._fix_bottom()

    @classmethod
    def from_labels(cls, labels: Iterable[int], ttl: int = MAX_TTL) -> "LabelStack":
        """Build a stack from raw label values, top first."""
        return cls(LabelStackEntry(label=label, ttl=ttl) for label in labels)

    def _fix_bottom(self) -> None:
        for i, entry in enumerate(self._entries):
            is_bottom = i == len(self._entries) - 1
            if entry.bottom_of_stack != is_bottom:
                self._entries[i] = replace(entry, bottom_of_stack=is_bottom)

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[LabelStackEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> LabelStackEntry:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelStack):
            return NotImplemented
        return self._entries == other._entries

    @property
    def depth(self) -> int:
        """Number of entries in the stack."""
        return len(self._entries)

    @property
    def top(self) -> LabelStackEntry:
        """The active (first) entry."""
        if not self._entries:
            raise IndexError("empty label stack has no top")
        return self._entries[0]

    def labels(self) -> tuple[int, ...]:
        """Raw label values, top first."""
        return tuple(entry.label for entry in self._entries)

    def copy(self) -> "LabelStack":
        """An independent copy of the stack."""
        return LabelStack(self._entries)

    # -- LSR operations (Sec. 2.1 of the paper) ----------------------------

    def push(self, entry: LabelStackEntry) -> None:
        """PUSH: prepend an LSE on top of the stack."""
        self._entries.insert(0, entry)
        self._fix_bottom()

    def pop(self) -> LabelStackEntry:
        """POP: remove and return the top LSE."""
        if not self._entries:
            raise IndexError("pop from empty label stack")
        entry = self._entries.pop(0)
        self._fix_bottom()
        return entry

    def swap(self, new_label: int, memoize: bool = False) -> None:
        """SWAP: replace the top label, keeping TC and TTL.

        ``memoize`` serves the result from the shared LSE cache; off, it
        copies through :func:`dataclasses.replace` as the pre-memoization
        engine did (identical entries either way).
        """
        if not self._entries:
            raise IndexError("swap on empty label stack")
        entry = self._entries[0]
        if memoize:
            self._entries[0] = _cached_lse(
                new_label, entry.tc, entry.bottom_of_stack, entry.ttl
            )
        else:
            self._entries[0] = entry.with_label(new_label)

    def decrement_ttl(self, memoize: bool = False) -> None:
        """Decrement the top LSE-TTL (every transit LSR does this)."""
        if not self._entries:
            raise IndexError("TTL decrement on empty label stack")
        entry = self._entries[0]
        if memoize:
            if entry.ttl == 0:
                raise ValueError("cannot decrement an expired LSE-TTL")
            self._entries[0] = _cached_lse(
                entry.label, entry.tc, entry.bottom_of_stack, entry.ttl - 1
            )
        else:
            self._entries[0] = entry.decremented()

    def set_top_ttl(self, ttl: int, memoize: bool = False) -> None:
        """Overwrite the top entry's TTL."""
        if not self._entries:
            raise IndexError("TTL set on empty label stack")
        entry = self._entries[0]
        if memoize:
            self._entries[0] = _cached_lse(
                entry.label, entry.tc, entry.bottom_of_stack, ttl
            )
        else:
            self._entries[0] = entry.with_ttl(ttl)

    # -- wire format --------------------------------------------------------

    def encode(self) -> tuple[int, ...]:
        """The 32-bit on-wire words, top first."""
        return tuple(entry.encode() for entry in self._entries)

    @classmethod
    def decode(cls, words: Iterable[int]) -> "LabelStack":
        """Rebuild a stack from on-wire words."""
        return cls(LabelStackEntry.decode(word) for word in words)

    def __str__(self) -> str:
        inner = "; ".join(str(e) for e in self._entries)
        return f"[{inner}]"

    def __repr__(self) -> str:
        return f"LabelStack({self._entries!r})"
