"""Fig. 11 -- interworking mode proportions.

The paper: ~90% of SR tunnels are full-SR; among the hybrid ones
SR->LDP dominates at 95%, LDP->SR ~2%, LDP-SR-LDP ~2%, SR-LDP-SR ~1%.
"""

from collections import Counter

from repro.core.interworking import InterworkingMode
from repro.util.tables import format_table

from benchmarks.conftest import emit

_HYBRID = (
    InterworkingMode.SR_TO_LDP,
    InterworkingMode.LDP_TO_SR,
    InterworkingMode.LDP_SR_LDP,
    InterworkingMode.SR_LDP_SR,
    InterworkingMode.OTHER,
)


def test_bench_fig11_interworking(benchmark, portfolio_results):
    def aggregate() -> Counter:
        totals: Counter = Counter()
        for result in portfolio_results.values():
            totals.update(result.analysis.interworking_modes)
        return totals

    totals = benchmark(aggregate)
    sr_tunnels = sum(
        c
        for mode, c in totals.items()
        if mode is not InterworkingMode.FULL_LDP
    )
    hybrid = sum(totals[m] for m in _HYBRID)
    rows = [
        (str(mode), totals[mode], f"{totals[mode] / hybrid:.1%}")
        for mode in _HYBRID
        if hybrid
    ]
    emit(
        format_table(
            ["Mode", "Tunnels", "Share of interworking"],
            rows,
            title="Fig. 11 -- interworking modes",
        )
    )
    emit(
        f"full-SR share of SR tunnels: "
        f"{(sr_tunnels - hybrid) / sr_tunnels:.1%} (paper: 90%)"
    )

    # Shape: full-SR dominates; SR->LDP is by far the leading hybrid
    # mode; every other mode is a small minority.
    assert hybrid > 0
    assert (sr_tunnels - hybrid) / sr_tunnels >= 0.7
    assert totals[InterworkingMode.SR_TO_LDP] / hybrid >= 0.7
    for mode in (
        InterworkingMode.LDP_TO_SR,
        InterworkingMode.LDP_SR_LDP,
        InterworkingMode.SR_LDP_SR,
    ):
        assert totals[mode] / hybrid <= 0.2, mode
