"""Longitudinal SR-MPLS adoption tracking (the paper's future work).

Sec. 9: "Future work plans to focus on ... longitudinal analyses to
track the evolution of SR-MPLS adoption patterns over time."  This
module implements that study over the simulator: the portfolio's
deployment scenarios evolve year by year (each AS starts its SR
migration at some adoption year and ramps its SR share up), the
campaign re-runs per year, and the tracker reports the adoption curve
AReST would have measured.

The evolution model is deliberately simple and fully deterministic:

- every AS that (per the 2025-portfolio ground truth) deploys SR gets an
  adoption year hashed into [first_year, reference_year]; survey/Cisco-
  confirmed ASes adopt earlier on average (they were the early movers);
- before its adoption year an AS runs classic LDP; from the adoption
  year on, its SR share ramps linearly to the 2025 value over
  ``ramp_years``;
- ASes that do not deploy SR by 2025 never do within the window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.campaign.runner import CampaignRunner
from repro.topogen.portfolio import AsSpec, Portfolio, default_portfolio
from repro.util.determinism import unit_hash

#: the paper's measurement year: scenarios are calibrated to this point
REFERENCE_YEAR = 2025


@dataclass(frozen=True, slots=True)
class AdoptionSnapshot:
    """What AReST would have measured in one year."""

    year: int
    ases_analyzed: int
    ases_with_sr_evidence: int
    sr_interfaces: int
    mpls_interfaces: int

    @property
    def detection_share(self) -> float:
        """Fraction of analyzed ASes with strong SR evidence."""
        if self.ases_analyzed == 0:
            return 0.0
        return self.ases_with_sr_evidence / self.ases_analyzed

    @property
    def sr_interface_share(self) -> float:
        """SR interfaces over all MPLS-involved interfaces."""
        total = self.sr_interfaces + self.mpls_interfaces
        return self.sr_interfaces / total if total else 0.0


def adoption_year(spec: AsSpec, first_year: int, seed: int = 0) -> int:
    """The year this AS begins its SR migration (deterministic)."""
    window = REFERENCE_YEAR - first_year
    draw = unit_hash("adoption", seed, spec.as_id)
    if spec.confirmation.confirmed:
        # early movers: the confirmed deployments skew to the window's
        # first half
        draw *= 0.6
    return first_year + int(draw * window)


def scenario_in_year(
    spec: AsSpec,
    year: int,
    first_year: int,
    ramp_years: int = 3,
    seed: int = 0,
):
    """The AS's deployment scenario as it stood in ``year``."""
    scenario = spec.scenario
    if not scenario.deploys_sr:
        return scenario
    start = adoption_year(spec, first_year, seed)
    if year < start:
        # pre-migration: the same network, but running LDP only
        return replace(
            scenario,
            deploys_sr=False,
            sr_share=0.0,
            sr_policy_share=0.0,
            uhp=False,
            heterogeneous_srgb=False,
        )
    progress = min(1.0, (year - start + 1) / max(1, ramp_years))
    return replace(
        scenario,
        sr_share=min(1.0, scenario.sr_share * progress)
        if progress < 1.0
        else scenario.sr_share,
        sr_policy_share=scenario.sr_policy_share * progress,
    )


class AdoptionTracker:
    """Runs yearly campaigns over an evolving portfolio."""

    def __init__(
        self,
        portfolio: Portfolio | None = None,
        first_year: int = 2018,
        last_year: int = REFERENCE_YEAR,
        as_ids: list[int] | None = None,
        seed: int = 0,
        targets_per_as: int = 12,
        vps_per_as: int = 2,
    ) -> None:
        if last_year < first_year:
            raise ValueError("last_year must not precede first_year")
        self._portfolio = portfolio or default_portfolio()
        self._first_year = first_year
        self._last_year = last_year
        self._seed = seed
        self._targets = targets_per_as
        self._vps = vps_per_as
        if as_ids is None:
            as_ids = [s.as_id for s in self._portfolio.analyzed()]
        self._as_ids = as_ids

    def run(self) -> list[AdoptionSnapshot]:
        """One snapshot per year, chronological."""
        snapshots = []
        for year in range(self._first_year, self._last_year + 1):
            snapshots.append(self._run_year(year))
        return snapshots

    def _run_year(self, year: int) -> AdoptionSnapshot:
        specs = tuple(
            replace(
                self._portfolio.spec(as_id),
                scenario=scenario_in_year(
                    self._portfolio.spec(as_id),
                    year,
                    self._first_year,
                    seed=self._seed,
                ),
            )
            for as_id in self._as_ids
        )
        runner = CampaignRunner(
            portfolio=Portfolio(specs),
            seed=self._seed,
            targets_per_as=self._targets,
            vps_per_as=self._vps,
        )
        detected = sr_ifaces = mpls_ifaces = 0
        for as_id in self._as_ids:
            result = runner.run_as(as_id)
            analysis = result.analysis
            # strong evidence only: LSO fires on classic service stacks
            # too, which would mask the adoption signal entirely
            detected += analysis.has_sr_evidence(strong_only=True)
            sr_ifaces += len(analysis.sr_addresses)
            mpls_ifaces += len(analysis.mpls_addresses)
        return AdoptionSnapshot(
            year=year,
            ases_analyzed=len(self._as_ids),
            ases_with_sr_evidence=detected,
            sr_interfaces=sr_ifaces,
            mpls_interfaces=mpls_ifaces,
        )


@dataclass(frozen=True, slots=True)
class ReDetectionSnapshot:
    """Strong-evidence tally from re-detecting one year's archives."""

    year: int
    datasets: int
    traces: int
    ases_analyzed: int
    ases_with_sr_evidence: int

    @property
    def detection_share(self) -> float:
        """Fraction of archived target ASes with strong SR evidence."""
        if self.ases_analyzed == 0:
            return 0.0
        return self.ases_with_sr_evidence / self.ases_analyzed


def re_detect_adoption(
    archives_by_year: Mapping[int, Iterable],
    fingerprints: Mapping | None = None,
    detector=None,
    chunk: int = 4096,
) -> list[ReDetectionSnapshot]:
    """Adoption curve from *archived* JSONL datasets -- no re-probing.

    The longitudinal question the tracker answers by re-running
    campaigns can also be asked of data already on disk: given each
    year's ``dump_jsonl`` archives, which target ASes show strong SR
    evidence?  This streams every archive through the sanitizer into
    bounded columnar chunks and runs
    :meth:`~repro.core.columnar.ColumnarDetector.detect_batch` with the
    archive header's ``target_asn`` ownership mask -- the fast
    re-detection path (see OPERATIONS.md), so decade-scale archives
    re-analyze in one sitting.

    ``fingerprints`` is an optional address->fingerprint mapping applied
    to every archive (a merged fingerprint DB); without it detection
    still raises the fingerprint-free strong flags (CO), so the curve
    degrades gracefully rather than collapsing.
    """
    from repro.campaign.dataset import TraceDataset
    from repro.core.columnar import ColumnarDetector
    from repro.core.flags import STRONG_FLAGS
    from repro.probing.sanitize import TraceSanitizer

    if detector is None:
        detector = ColumnarDetector()
    fingerprints = fingerprints or {}
    sanitizer = TraceSanitizer()
    snapshots = []
    for year in sorted(archives_by_year):
        datasets = traces = 0
        ases_analyzed: set[int] = set()
        ases_with: set[int] = set()
        for path in archives_by_year[year]:
            datasets += 1
            asn = TraceDataset.read_header(path).target_asn
            ases_analyzed.add(asn)

            def sanitized():
                for raw in TraceDataset.iter_jsonl(path):
                    cleaned = sanitizer.sanitize(raw)
                    if cleaned.trace is not None:
                        yield cleaned.trace

            pending: list = []
            for trace in sanitized():
                traces += 1
                pending.append(trace)
                if len(pending) >= chunk:
                    if asn not in ases_with and _chunk_has_strong(
                        detector, pending, fingerprints, asn, STRONG_FLAGS
                    ):
                        ases_with.add(asn)
                    pending = []
            if pending and asn not in ases_with and _chunk_has_strong(
                detector, pending, fingerprints, asn, STRONG_FLAGS
            ):
                ases_with.add(asn)
        snapshots.append(
            ReDetectionSnapshot(
                year=year,
                datasets=datasets,
                traces=traces,
                ases_analyzed=len(ases_analyzed),
                ases_with_sr_evidence=len(ases_with),
            )
        )
    return snapshots


def _chunk_has_strong(detector, traces, fingerprints, asn, strong) -> bool:
    from repro.core.columnar import TraceBatch

    batch = TraceBatch.from_traces(traces, fingerprints)
    return any(
        segment.flag in strong
        for segments in detector.detect_batch(batch, asn=asn)
        for segment in segments
    )
