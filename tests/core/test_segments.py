"""Tests for the DetectedSegment record invariants."""

import pytest

from repro.core.flags import Flag
from repro.core.segments import DetectedSegment
from repro.netsim.addressing import IPv4Address


def seg(flag, indices, labels=None, depths=None):
    n = len(indices)
    return DetectedSegment(
        flag=flag,
        hop_indices=tuple(indices),
        addresses=tuple(
            IPv4Address.from_string(f"10.0.0.{i + 1}") for i in range(n)
        ),
        top_labels=tuple(labels or [16_005] * n),
        stack_depths=tuple(depths or [1] * n),
    )


class TestInvariants:
    def test_consecutive_flags_need_two_hops(self):
        with pytest.raises(ValueError):
            seg(Flag.CVR, [3])
        with pytest.raises(ValueError):
            seg(Flag.CO, [3])
        assert seg(Flag.CO, [3, 4]).length == 2

    def test_stack_flags_are_single_hop(self):
        for flag in (Flag.LSVR, Flag.LVR, Flag.LSO):
            assert seg(flag, [2]).length == 1
            with pytest.raises(ValueError):
                seg(flag, [2, 3])

    def test_contiguity_enforced(self):
        with pytest.raises(ValueError):
            seg(Flag.CO, [1, 3])

    def test_parallel_tuple_lengths(self):
        with pytest.raises(ValueError):
            DetectedSegment(
                flag=Flag.CO,
                hop_indices=(1, 2),
                addresses=(IPv4Address.from_string("10.0.0.1"),),
                top_labels=(16_005, 16_005),
                stack_depths=(1, 1),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DetectedSegment(
                flag=Flag.LSO,
                hop_indices=(),
                addresses=(),
                top_labels=(),
                stack_depths=(),
            )


class TestProperties:
    def test_signal_strength(self):
        assert seg(Flag.CVR, [1, 2]).signal_strength == 5
        assert seg(Flag.LSO, [1]).signal_strength == 1

    def test_max_stack_depth(self):
        s = seg(Flag.CO, [1, 2], depths=[2, 3])
        assert s.max_stack_depth == 3

    def test_key_ignores_position(self):
        a = seg(Flag.CO, [1, 2])
        b = seg(Flag.CO, [5, 6])
        assert a.key() == b.key()  # same addresses + labels + flag

    def test_key_distinguishes_flags(self):
        a = seg(Flag.LSO, [1])
        b = seg(Flag.LVR, [1])
        assert a.key() != b.key()
