"""Distributed tracing: context propagation, clock anchoring, timelines.

One campaign is one trace.  The supervisor mints a W3C-traceparent-style
:class:`TraceContext` (``trace_id`` / ``span_id``) when its telemetry
session starts; the context rides every task envelope -- the supervised
executor's payload tuples, the lease executor's duplex-pipe messages,
the service's worker-pool recorder -- so every span any process records
lands in ``telemetry.jsonl`` tagged with the one campaign-wide trace id
and parented under the supervisor's root span.

Cross-process timestamps need one more ingredient: workers stamp span
starts with their *own* monotonic clock, whose zero is arbitrary per
process.  Each recorder therefore captures a :class:`ClockAnchor` --
one ``(unix wall-clock, monotonic clock)`` pair -- that ships with its
export and lands in the stream as an ``anchor`` record; readers
normalize every span start to wall-clock time through the anchor of
the batch it arrived in.  Two workers' spans then order correctly
against each other even though neither ever saw the other's clock.

Reconstruction (:func:`load_timeline`) turns the stream back into one
tree of wall-clock intervals and derives the operator surfaces:

- :func:`render_timeline` -- the ``arest timeline <dir>`` text view
  (per-scope Gantt bars, critical path, straggler report);
- :func:`critical_path` -- the chain of spans covering the run's
  wall-clock (each link is the last-finishing child of the previous);
- :func:`stragglers` -- scopes at or above the p95 total duration,
  with the stage they were last seen in;
- :func:`trace_event_json` -- Chrome/Perfetto trace-event JSON
  (``arest timeline --trace-json``).

This module also owns the fixed histogram bucket boundaries
(:data:`LATENCY_BUCKETS`): per-stage latency distributions are only
comparable across runs and mergeable across processes because every
recorder bins into the same deterministic edges.

Everything here is observational.  Trace ids, anchors and histograms
live in telemetry artifacts only; results and checkpoints never see
them (the byte-identity contract is test-enforced with tracing on and
off).
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import load_manifest
from repro.obs.sink import EVENTS_FILENAME, load_events

__all__ = [
    "LATENCY_BUCKETS",
    "ClockAnchor",
    "CriticalSegment",
    "LatencyHistogram",
    "Straggler",
    "Timeline",
    "TimelineSpan",
    "TraceContext",
    "critical_path",
    "load_timeline",
    "merge_histogram_dicts",
    "render_timeline",
    "stragglers",
    "timeline_from_records",
    "timeline_report_dict",
    "trace_event_json",
]


# -- context propagation ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One W3C-traceparent-style propagation context.

    ``trace_id`` names the whole campaign (32 hex chars); ``span_id``
    names the span the receiver should parent under (16 hex chars) --
    the supervisor's root span when the context crosses a process
    boundary.
    """

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context from OS entropy."""
        return cls(
            trace_id=os.urandom(16).hex(), span_id=os.urandom(8).hex()
        )

    def traceparent(self) -> str:
        """The wire form: ``00-<trace_id>-<span_id>-01``."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse(cls, header: str) -> "TraceContext":
        """Parse a traceparent header; raises ``ValueError`` on junk."""
        parts = str(header).split("-")
        if len(parts) != 4:
            raise ValueError(f"malformed traceparent: {header!r}")
        version, trace_id, span_id, _flags = parts
        if version != "00":
            raise ValueError(f"unsupported traceparent version: {header!r}")
        if len(trace_id) != 32 or len(span_id) != 16:
            raise ValueError(f"malformed traceparent ids: {header!r}")
        int(trace_id, 16)
        int(span_id, 16)
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass(frozen=True, slots=True)
class ClockAnchor:
    """One process's ``(wall clock, monotonic clock)`` correspondence.

    ``to_wall`` maps a monotonic reading from the same process to unix
    time; that is the whole cross-process skew fix -- every process
    reports its own offset, readers normalize, nobody compares raw
    monotonic values across pid boundaries.
    """

    unix: float
    clock: float

    @classmethod
    def capture(cls, clock=time.monotonic) -> "ClockAnchor":
        return cls(unix=time.time(), clock=clock())

    def to_wall(self, reading: float) -> float:
        return self.unix + (reading - self.clock)

    def as_dict(self) -> dict:
        return {"unix": self.unix, "clock": self.clock}

    @classmethod
    def from_dict(cls, record: dict) -> "ClockAnchor":
        return cls(
            unix=float(record.get("unix", 0.0)),
            clock=float(record.get("clock", 0.0)),
        )


# -- deterministic latency histograms --------------------------------------------

#: fixed bucket upper bounds (seconds) for every per-stage latency
#: histogram.  Deterministic by construction: the edges never depend on
#: the data, so histograms merge across processes by vector addition
#: and two runs' distributions are directly comparable.  Log-spaced
#: from 10us to 10s -- simulated probes sit at the bottom, whole-shard
#: stages at the top.
LATENCY_BUCKETS = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (one stage, one recorder).

    ``counts`` has one slot per :data:`LATENCY_BUCKETS` edge plus the
    overflow (+Inf) slot.  Observation is one bisect and two adds --
    cheap enough for per-trace hot loops.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.sum += seconds
        self.count += 1

    def observe_many(self, samples: list[float]) -> None:
        """Bin a batch of observations at once.

        Sorting once and bisecting per *edge* (19 bisects total) beats
        per-sample observe calls as soon as the batch outgrows the
        bucket table, which is why hot loops may collect raw seconds
        in a plain list and flush it here outside the loop.
        """
        if not samples:
            return
        ordered = sorted(samples)
        counts = self.counts
        below = 0
        for index, edge in enumerate(LATENCY_BUCKETS):
            at_or_below = bisect_right(ordered, edge)
            counts[index] += at_or_below - below
            below = at_or_below
        counts[-1] += len(ordered) - below
        self.sum += sum(ordered)
        self.count += len(ordered)

    def as_dict(self) -> dict:
        """JSON view: {"buckets": [...], "sum": s, "count": n}."""
        return {
            "buckets": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def merge_histogram_dicts(into: dict, part: dict) -> dict:
    """Fold one histogram-dict mapping into another (in place).

    Both are ``{stage: {"buckets": [...], "sum": s, "count": n}}``.
    Vector addition bucket by bucket -- merge order cannot matter, so
    aggregation across processes and resumed runs is well defined.
    """
    for stage, hist in part.items():
        buckets = [int(v) for v in hist.get("buckets", ())]
        if len(buckets) != len(LATENCY_BUCKETS) + 1:
            continue  # foreign bucket layout: refuse to mis-merge
        merged = into.get(stage)
        if merged is None:
            into[stage] = {
                "buckets": buckets,
                "sum": float(hist.get("sum", 0.0)),
                "count": int(hist.get("count", 0)),
            }
            continue
        merged["buckets"] = [
            a + b for a, b in zip(merged["buckets"], buckets)
        ]
        merged["sum"] += float(hist.get("sum", 0.0))
        merged["count"] += int(hist.get("count", 0))
    return into


# -- timeline reconstruction -----------------------------------------------------


@dataclass(slots=True)
class TimelineSpan:
    """One span normalized to wall-clock time."""

    scope: object
    stage: str
    path: str
    start: float  # unix seconds (anchor-normalized)
    end: float
    trace_id: str
    span_id: str
    parent_span_id: str | None
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class Timeline:
    """One run's reconstructed trace tree."""

    directory: Path | None
    manifest: dict | None
    #: every anchored span, in stream order
    spans: list[TimelineSpan]
    #: span_id -> children, sorted by start
    children: dict[str, list[TimelineSpan]]
    #: spans whose parent_span_id resolves to no recorded span
    roots: list[TimelineSpan]
    #: trace ids seen (a healthy run has exactly one)
    trace_ids: set[str]
    #: corrupt lines the event loader dropped
    dropped_lines: int = 0
    #: children trimmed into their parent's interval (residual skew)
    skew_clamped: int = 0

    @property
    def trace_id(self) -> str | None:
        if self.manifest is not None and self.manifest.get("trace_id"):
            return str(self.manifest["trace_id"])
        if len(self.trace_ids) == 1:
            return next(iter(self.trace_ids))
        return None

    def root(self) -> TimelineSpan | None:
        """The run's root span: the longest parentless interval."""
        if not self.roots:
            return None
        return max(self.roots, key=lambda s: s.seconds)

    def wall_seconds(self) -> float:
        """Measured wall clock: the manifest's, else the root span's."""
        if self.manifest is not None:
            duration = self.manifest.get("duration_seconds")
            if duration:
                return float(duration)
        root = self.root()
        return root.seconds if root is not None else 0.0


#: span-record fields that are structure, not caller attributes
_SPAN_FIELDS = frozenset(
    (
        "kind",
        "scope",
        "stage",
        "path",
        "seconds",
        "start",
        "trace_id",
        "span_id",
        "parent_span_id",
    )
)


def timeline_from_records(
    records: list[dict],
    manifest: dict | None = None,
    dropped: int = 0,
    directory: Path | None = None,
) -> Timeline:
    """Rebuild the trace tree from raw event records.

    Only traced spans (carrying ``span_id`` and ``start``) enter the
    timeline; the anchor in force is tracked per scope in stream order
    -- each durable batch writes its anchor first, so a scope that
    appears in several batches (a resumed run) normalizes each batch
    through the clock that actually produced it.
    """
    anchors: dict[object, ClockAnchor] = {}
    spans: list[TimelineSpan] = []
    trace_ids: set[str] = set()
    for record in records:
        kind = record.get("kind")
        scope = record.get("scope")
        if kind == "anchor":
            anchors[scope] = ClockAnchor.from_dict(record)
            continue
        if kind != "span" or "span_id" not in record:
            continue
        anchor = anchors.get(scope)
        if anchor is None or "start" not in record:
            continue  # untraced span: lives in the tables, not here
        start = anchor.to_wall(float(record["start"]))
        seconds = max(0.0, float(record.get("seconds", 0.0)))
        trace_id = str(record.get("trace_id", ""))
        trace_ids.add(trace_id)
        spans.append(
            TimelineSpan(
                scope=scope,
                stage=str(record.get("stage", "unknown")),
                path=str(record.get("path", "")),
                start=start,
                end=start + seconds,
                trace_id=trace_id,
                span_id=str(record["span_id"]),
                parent_span_id=(
                    str(record["parent_span_id"])
                    if record.get("parent_span_id")
                    else None
                ),
                attrs={
                    k: v
                    for k, v in record.items()
                    if k not in _SPAN_FIELDS
                },
            )
        )
    by_id = {span.span_id: span for span in spans}
    children: dict[str, list[TimelineSpan]] = {}
    roots: list[TimelineSpan] = []
    for span in spans:
        parent = span.parent_span_id
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))
    timeline = Timeline(
        directory=directory,
        manifest=manifest,
        spans=spans,
        children=children,
        roots=roots,
        trace_ids=trace_ids,
        dropped_lines=dropped,
    )
    _clamp_into_parents(timeline)
    return timeline


def _clamp_into_parents(timeline: Timeline) -> None:
    """Trim children into their parent's interval, top down.

    Within one process nesting is exact (same clock, strict span
    stack).  Across processes the anchors leave residual skew -- two
    ``time.time()`` reads microseconds apart -- so a child can poke a
    hair past its parent.  The clamp repairs that, making
    child-within-parent an invariant of every reconstructed timeline.
    """
    stack = list(timeline.roots)
    while stack:
        parent = stack.pop()
        for child in timeline.children.get(parent.span_id, ()):
            start = min(max(child.start, parent.start), parent.end)
            end = max(min(child.end, parent.end), start)
            if (start, end) != (child.start, child.end):
                timeline.skew_clamped += 1
                child.start, child.end = start, end
            stack.append(child)


def load_timeline(directory: str | Path) -> Timeline:
    """Reconstruct the timeline of one telemetry directory."""
    directory = Path(directory)
    manifest = load_manifest(directory)
    records, dropped = load_events(directory / EVENTS_FILENAME)
    return timeline_from_records(
        records, manifest=manifest, dropped=dropped, directory=directory
    )


# -- derived views ---------------------------------------------------------------


@dataclass(slots=True)
class CriticalSegment:
    """One link of the critical path and its exclusive contribution."""

    span: TimelineSpan
    #: seconds this span accounts for on its own (its duration minus
    #: the on-path child's overlap); segment sums telescope to the
    #: root's duration
    exclusive_seconds: float


def critical_path(timeline: Timeline) -> list[CriticalSegment]:
    """The chain of spans covering the run's wall clock.

    Standard trace-analysis walk: start at the root, descend into the
    *last-finishing* child at every level (the one gating the parent's
    completion).  Each link's exclusive time is its duration minus the
    on-path child's -- so the sum over the path equals the root span's
    duration, and comparing that sum to the manifest wall clock tells
    you how much of the run the trace actually explains.
    """
    root = timeline.root()
    if root is None:
        return []
    segments: list[CriticalSegment] = []
    current = root
    while True:
        kids = timeline.children.get(current.span_id, ())
        if not kids:
            segments.append(CriticalSegment(current, current.seconds))
            return segments
        gating = max(kids, key=lambda s: (s.end, s.seconds, s.span_id))
        segments.append(
            CriticalSegment(current, current.seconds - gating.seconds)
        )
        current = gating


@dataclass(slots=True)
class Straggler:
    """One scope at or above the p95 total duration."""

    scope: object
    seconds: float
    #: the deepest stage still running when the scope's work ended --
    #: the "where was it stuck" answer for straggler triage
    last_stage: str


def _scope_intervals(timeline: Timeline) -> dict[object, list[TimelineSpan]]:
    """Worker-level spans per scope: the root's direct children."""
    root = timeline.root()
    if root is None:
        return {}
    per_scope: dict[object, list[TimelineSpan]] = {}
    for span in timeline.children.get(root.span_id, ()):
        per_scope.setdefault(span.scope, []).append(span)
    return per_scope


def stragglers(timeline: Timeline, quantile: float = 0.95) -> list[Straggler]:
    """Scopes whose total top-level duration reaches the p95.

    Needs at least two scopes to be meaningful; with fewer, or with a
    degenerate distribution, returns the slowest scope alone.
    """
    per_scope = _scope_intervals(timeline)
    if not per_scope:
        return []
    totals = {
        scope: sum(span.seconds for span in spans)
        for scope, spans in per_scope.items()
    }
    ordered = sorted(totals.values())
    index = min(
        len(ordered) - 1, max(0, int(quantile * len(ordered) + 0.5) - 1)
    )
    threshold = ordered[index]
    out: list[Straggler] = []
    for scope, spans in per_scope.items():
        total = totals[scope]
        if total < threshold:
            continue
        # last stage: the deepest descendant whose interval ends last
        last = max(spans, key=lambda s: s.end)
        while True:
            kids = timeline.children.get(last.span_id, ())
            if not kids:
                break
            last = max(kids, key=lambda s: s.end)
        out.append(
            Straggler(scope=scope, seconds=total, last_stage=last.stage)
        )
    out.sort(key=lambda s: (-s.seconds, str(s.scope)))
    return out


# -- rendering -------------------------------------------------------------------


def render_timeline(timeline: Timeline, width: int = 48) -> str:
    """The ``arest timeline <dir>`` text view."""
    lines: list[str] = []
    trace_id = timeline.trace_id
    wall = timeline.wall_seconds()
    lines.append(
        f"trace {trace_id or '(unknown)'}  wall {wall:.3f}s  "
        f"{len(timeline.spans)} span(s)"
    )
    if len(timeline.trace_ids) > 1:
        lines.append(
            f"WARNING: {len(timeline.trace_ids)} distinct trace ids in "
            f"one stream (mixed runs?)"
        )
    if timeline.dropped_lines:
        lines.append(
            f"WARNING: dropped {timeline.dropped_lines} corrupt telemetry "
            f"line(s) (crash-truncated stream)"
        )
    root = timeline.root()
    if root is None:
        lines.append("(no traced spans recorded)")
        return "\n".join(lines)

    span_of_run = max(root.end - root.start, 1e-9)

    def bar(span: TimelineSpan) -> str:
        lo = int((span.start - root.start) / span_of_run * width)
        hi = int((span.end - root.start) / span_of_run * width)
        hi = max(hi, lo + 1)
        return "." * lo + "#" * (hi - lo) + "." * max(0, width - hi)

    per_scope = _scope_intervals(timeline)
    if per_scope:
        lines.append("")
        lines.append("Per-scope timeline (time runs left to right):")
        ordered = sorted(
            per_scope.items(),
            key=lambda item: min(s.start for s in item[1]),
        )
        for scope, spans in ordered:
            label = f"AS#{scope}" if isinstance(scope, int) else str(scope)
            for span in sorted(spans, key=lambda s: s.start):
                offset = span.start - root.start
                lines.append(
                    f"  {label:<16} |{bar(span)}| "
                    f"{offset:>8.3f}s +{span.seconds:.3f}s {span.stage}"
                )

    segments = critical_path(timeline)
    covered = sum(s.exclusive_seconds for s in segments)
    share = covered / wall if wall else 0.0
    lines.append("")
    lines.append(
        f"Critical path ({covered:.3f}s, {share:.1%} of wall clock):"
    )
    for segment in segments:
        span = segment.span
        label = (
            f"AS#{span.scope}" if isinstance(span.scope, int)
            else str(span.scope)
        )
        lines.append(
            f"  {label:<16} {span.path:<28} +{span.seconds:.3f}s "
            f"(exclusive {segment.exclusive_seconds:.3f}s)"
        )

    slow = stragglers(timeline)
    if slow:
        lines.append("")
        lines.append("Stragglers (>= p95 scope duration):")
        for straggler in slow:
            label = (
                f"AS#{straggler.scope}"
                if isinstance(straggler.scope, int)
                else str(straggler.scope)
            )
            lines.append(
                f"  {label:<16} {straggler.seconds:.3f}s  "
                f"last stage: {straggler.last_stage}"
            )
    if timeline.skew_clamped:
        lines.append("")
        lines.append(
            f"(normalized {timeline.skew_clamped} span bound(s) for "
            f"residual cross-process clock skew)"
        )
    return "\n".join(lines)


def trace_event_json(timeline: Timeline) -> dict:
    """Chrome/Perfetto trace-event JSON (the ``--trace-json`` artifact).

    Complete events (``ph: "X"``) with microsecond timestamps relative
    to the earliest span.  Each scope renders as its own thread, named
    through the conventional ``thread_name`` metadata events.  Parent
    references ride in ``args`` and -- by construction -- only ever
    point at spans present in the document.
    """
    events: list[dict] = []
    if not timeline.spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    origin = min(span.start for span in timeline.spans)
    known = {span.span_id for span in timeline.spans}
    tids = {
        scope: index
        for index, scope in enumerate(
            sorted({span.scope for span in timeline.spans}, key=str), 1
        )
    }
    for scope, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {
                    "name": (
                        f"AS#{scope}" if isinstance(scope, int)
                        else str(scope)
                    )
                },
            }
        )
    for span in sorted(
        timeline.spans, key=lambda s: (s.start, s.span_id)
    ):
        args = {
            "scope": str(span.scope),
            "path": span.path,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        parent = span.parent_span_id
        if parent is not None and parent in known:
            args["parent_span_id"] = parent
        for key, value in span.attrs.items():
            args[key] = value if isinstance(value, (int, float)) else str(
                value
            )
        events.append(
            {
                "name": span.stage,
                "cat": "arest",
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.seconds * 1e6, 3),
                "pid": 1,
                "tid": tids[span.scope],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def timeline_report_dict(timeline: Timeline) -> dict:
    """Machine-readable ``arest timeline --json`` view (CI's parser)."""
    segments = critical_path(timeline)
    covered = sum(s.exclusive_seconds for s in segments)
    wall = timeline.wall_seconds()
    return {
        "trace_id": timeline.trace_id,
        "wall_seconds": wall,
        "spans": len(timeline.spans),
        "scopes": sorted(
            {str(span.scope) for span in timeline.spans}
        ),
        "trace_ids": sorted(timeline.trace_ids),
        "dropped_lines": timeline.dropped_lines,
        "skew_clamped": timeline.skew_clamped,
        "critical_path": [
            {
                "scope": str(segment.span.scope),
                "stage": segment.span.stage,
                "path": segment.span.path,
                "seconds": segment.span.seconds,
                "exclusive_seconds": segment.exclusive_seconds,
            }
            for segment in segments
        ],
        "critical_path_seconds": covered,
        "critical_path_share": covered / wall if wall else 0.0,
        "stragglers": [
            {
                "scope": str(straggler.scope),
                "seconds": straggler.seconds,
                "last_stage": straggler.last_stage,
            }
            for straggler in stragglers(timeline)
        ],
    }


def write_trace_json(timeline: Timeline, path: str | Path) -> None:
    """Atomically write the Perfetto artifact next to a report."""
    from repro.util.atomicio import atomic_write_text

    atomic_write_text(
        Path(path),
        json.dumps(trace_event_json(timeline), sort_keys=True) + "\n",
    )
