"""Trace dataset container with JSONL (de)serialization.

The paper publishes its collected traces; this container plays that
role for the simulated campaign.  Serialization is line-oriented JSON
(one trace per line) so datasets stream without loading whole files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.netsim.addressing import IPv4Address
from repro.probing.records import QuotedLse, Trace, TraceHop
from repro.util.atomicio import atomic_writer


@dataclass(slots=True)
class TraceDataset:
    """A batch of traces collected toward one AS of interest."""

    target_asn: int
    traces: list[Trace] = field(default_factory=list)
    #: free-form campaign metadata (seed, VP list, dates, ...)
    metadata: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def add(self, trace: Trace) -> None:
        """Append one trace."""
        self.traces.append(trace)

    def extend(self, traces: Iterable[Trace]) -> None:
        """Append many traces."""
        self.traces.extend(traces)

    # -- aggregate views -----------------------------------------------------

    def distinct_addresses(self) -> set[IPv4Address]:
        """Every responding address across all traces."""
        addresses: set[IPv4Address] = set()
        for trace in self.traces:
            addresses.update(trace.addresses())
        return addresses

    def traces_from_vp(self, vp: str) -> list[Trace]:
        """The traces one vantage point collected."""
        return [t for t in self.traces if t.vp == vp]

    def vantage_points(self) -> list[str]:
        """Sorted names of the contributing VPs."""
        return sorted({t.vp for t in self.traces})

    # -- serialization ----------------------------------------------------------

    def dump_jsonl(self, path: str | Path) -> None:
        """Write the dataset as line-oriented JSON.

        The write is atomic (tmp file + fsync + rename): a crash at any
        instant leaves either the previous file or the complete new
        one, never a torn dataset.
        """
        with atomic_writer(path) as fh:
            header = {
                "kind": "header",
                "target_asn": self.target_asn,
                "metadata": self.metadata,
            }
            fh.write(json.dumps(header) + "\n")
            for trace in self.traces:
                fh.write(json.dumps(_trace_to_json(trace)) + "\n")

    @classmethod
    def read_header(cls, path: str | Path) -> "TraceDataset":
        """Read only the header line: an *empty* dataset shell.

        Constant-cost access to ``target_asn`` and ``metadata`` --
        what `arest detect`-style consumers need before deciding how to
        stream the body.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
        if not header_line:
            raise ValueError(f"empty dataset file: {path}")
        header = _parse_dataset_line(header_line, path, lineno=1)
        if header.get("kind") != "header":
            raise ValueError(f"missing dataset header in {path}")
        return cls(
            target_asn=int(header["target_asn"]),
            metadata=dict(header.get("metadata", {})),
        )

    @classmethod
    def iter_jsonl(cls, path: str | Path) -> Iterator[Trace]:
        """Stream traces from a :meth:`dump_jsonl` file, one at a time.

        Constant memory: each line is decoded, yielded and dropped, so
        paper-scale datasets never need to fit in RAM.  The header is
        validated (use :meth:`read_header` to read it); a malformed
        body line raises :class:`ValueError` naming the file and the
        1-based line number, exactly like the eager loader.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line:
                raise ValueError(f"empty dataset file: {path}")
            header = _parse_dataset_line(header_line, path, lineno=1)
            if header.get("kind") != "header":
                raise ValueError(f"missing dataset header in {path}")
            for lineno, line in enumerate(fh, start=2):
                if line.strip():
                    yield _trace_from_json(
                        _parse_dataset_line(line, path, lineno)
                    )

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "TraceDataset":
        """Read a whole dataset eagerly (thin wrapper over streaming).

        A malformed line raises a :class:`ValueError` naming the file
        and the 1-based line number, so quarantine and salvage logs
        point straight at the damage.  Prefer :meth:`iter_jsonl` when
        the dataset may not fit in memory.
        """
        dataset = cls.read_header(path)
        for trace in cls.iter_jsonl(path):
            dataset.add(trace)
        return dataset


def trace_to_json(trace: Trace) -> dict:
    """Public wire codec: one trace as a JSON-able dict.

    This is the exact per-line schema :meth:`TraceDataset.dump_jsonl`
    writes, re-exported for wire surfaces (the streaming service's
    ``POST /trace`` body) so datasets on disk and traces on the wire
    can never drift apart.
    """
    return _trace_to_json(trace)


def trace_from_json(record: dict) -> Trace:
    """Inverse of :func:`trace_to_json` (raises ``ValueError``/``KeyError``
    on records that are not well-formed trace objects)."""
    return _trace_from_json(record)


def _parse_dataset_line(line: str, path: Path, lineno: int) -> dict:
    """Parse one JSONL line, contextualizing any decode error."""
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: line {lineno}: malformed JSON ({exc.msg} at "
            f"column {exc.colno})"
        ) from exc


def _hop_to_json(hop: TraceHop) -> dict:
    record: dict = {"ttl": hop.probe_ttl}
    if hop.address is not None:
        record["addr"] = str(hop.address)
    if hop.rtt_ms is not None:
        record["rtt"] = hop.rtt_ms
    if hop.reply_ip_ttl is not None:
        record["rttl"] = hop.reply_ip_ttl
    if hop.lses:
        record["lses"] = [
            [e.label, e.tc, int(e.bottom_of_stack), e.ttl] for e in hop.lses
        ]
    if hop.tnt_revealed:
        record["tnt"] = True
    if hop.destination_reply:
        record["dst"] = True
    if hop.truth_router_id is not None:
        record["t_rid"] = hop.truth_router_id
    if hop.truth_asn is not None:
        record["t_asn"] = hop.truth_asn
    if hop.truth_planes:
        record["t_planes"] = list(hop.truth_planes)
    if not hop.truth_uniform:
        record["t_pipe"] = True
    return record


def _hop_from_json(record: dict) -> TraceHop:
    lses = None
    if "lses" in record:
        lses = tuple(
            QuotedLse(label=l, tc=tc, bottom_of_stack=bool(s), ttl=ttl)
            for l, tc, s, ttl in record["lses"]
        )
    return TraceHop(
        probe_ttl=record["ttl"],
        address=(
            IPv4Address.from_string(record["addr"])
            if "addr" in record
            else None
        ),
        rtt_ms=record.get("rtt"),
        reply_ip_ttl=record.get("rttl"),
        lses=lses,
        tnt_revealed=record.get("tnt", False),
        destination_reply=record.get("dst", False),
        truth_router_id=record.get("t_rid"),
        truth_asn=record.get("t_asn"),
        truth_planes=tuple(record.get("t_planes", ())),
        truth_uniform=not record.get("t_pipe", False),
    )


def _trace_to_json(trace: Trace) -> dict:
    record = {
        "kind": "trace",
        "vp": trace.vp,
        "vp_rid": trace.vp_router_id,
        "dst": str(trace.destination),
        "flow": trace.flow_id,
        "reached": trace.reached,
        "hops": [_hop_to_json(h) for h in trace.hops],
    }
    if trace.epoch_span is not None:
        # only churned campaigns carry the key: static datasets (and
        # their checkpoints) stay byte-identical to the pre-churn format
        record["epochs"] = list(trace.epoch_span)
    return record


def _trace_from_json(record: dict) -> Trace:
    if record.get("kind") != "trace":
        raise ValueError(f"not a trace record: {record.get('kind')!r}")
    epochs = record.get("epochs")
    return Trace(
        vp=record["vp"],
        vp_router_id=record["vp_rid"],
        destination=IPv4Address.from_string(record["dst"]),
        flow_id=record["flow"],
        hops=tuple(_hop_from_json(h) for h in record["hops"]),
        reached=record["reached"],
        epoch_span=(epochs[0], epochs[1]) if epochs is not None else None,
    )
