"""Deployment scenarios: how an AS's control planes are instantiated.

A :class:`DeploymentScenario` captures everything the topology builder
needs to turn an abstract AS into configured routers: SR vs. LDP mix,
traceroute visibility knobs, vendor mix, fingerprintability, and tunnel
policies.  :func:`apply_scenario` realizes the scenario over the routers
of one AS inside a :class:`~repro.netsim.topology.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Network, Router, RouterRole
from repro.netsim.tunnels import TunnelPolicy
from repro.netsim.vendors import LabelRange, Vendor
from repro.util.determinism import unit_hash


@dataclass(frozen=True, slots=True)
class DeploymentScenario:
    """Simulation parameters for one AS."""

    #: ground truth: does this AS run SR-MPLS at all?
    deploys_sr: bool
    #: does the AS run MPLS at all (False = plain IP network)?
    mpls: bool
    #: fraction of MPLS routers that are SR-enabled (1.0 = full SR;
    #: intermediate values create LDP islands and interworking tunnels)
    sr_share: float
    #: fraction of routers configured with ttl-propagate (visibility)
    propagate_share: float
    #: fraction of routers implementing RFC 4950 quoting
    rfc4950_share: float
    #: (vendor, weight) pairs for hardware assignment
    vendor_weights: tuple[tuple[Vendor, float], ...]
    #: fraction of routers answering SNMPv3 (exact fingerprints)
    snmp_share: float
    #: fraction of routers answering ping (TTL fingerprint's second half)
    ping_share: float
    #: probability an SR tunnel gets a TE waypoint stack
    te_share: float
    #: probability a tunnel carries service SIDs (deep stacks)
    service_share: float
    #: probability an SR tunnel is steered through an SR policy (binding
    #: SID splice at a mid-path head-end, RFC 9256)
    sr_policy_share: float = 0.0
    #: probability a tunnel carries an RFC 6790 entropy-label pair
    entropy_share: float = 0.0
    #: probability a classic tunnel rides an RSVP-TE LSP instead of LDP
    rsvp_te_share: float = 0.0
    #: probability a router answers any given expiring probe (ICMP rate
    #: limiting; 1.0 = always)
    icmp_response_rate: float = 1.0
    #: intra-AS topology generator: "ring" (flat meshed core) or "pop"
    #: (two-tier PoP pairs)
    topology_style: str = "ring"
    #: topology sizing
    n_core: int = 8
    n_edge: int = 3
    n_border: int = 2
    n_customers: int = 2
    #: operator-customized SRGB (None = vendor defaults; Sec. 3: ~30%)
    custom_srgb: LabelRange | None = None
    #: per-router SRGB bases differ (exercises AReST suffix matching)
    heterogeneous_srgb: bool = False
    #: ultimate-hop popping: node-SID labels survive to the segment
    #: endpoint, producing unshrinking stacks (advanced SR, Sec. 6.2)
    uhp: bool = False
    #: signal explicit-null instead of PHP (label 0 at segment endpoints)
    explicit_null: bool = False
    #: the legacy LDP island sits at the *ingress* side (migration began
    #: at the PEs): hybrid tunnels then run LDP first (LDP->SR mode)
    ldp_at_ingress: bool = False

    def __post_init__(self) -> None:
        for name in (
            "sr_share",
            "propagate_share",
            "rfc4950_share",
            "snmp_share",
            "ping_share",
            "te_share",
            "service_share",
            "sr_policy_share",
            "entropy_share",
            "rsvp_te_share",
            "icmp_response_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.deploys_sr and not self.mpls:
            raise ValueError("SR-MPLS requires MPLS")
        if not self.vendor_weights:
            raise ValueError("vendor_weights must not be empty")
        if self.topology_style not in ("ring", "pop"):
            raise ValueError(
                f"unknown topology style: {self.topology_style!r}"
            )

    @property
    def total_routers(self) -> int:
        """Core + edge + border router count."""
        return self.n_core + self.n_edge + self.n_border


@dataclass(slots=True)
class AppliedDeployment:
    """What :func:`apply_scenario` produced for one AS."""

    asn: int
    sr_domain: SegmentRoutingDomain | None
    policy: TunnelPolicy
    sr_routers: list[int] = field(default_factory=list)
    ldp_only_routers: list[int] = field(default_factory=list)


def pick_vendor(
    weights: tuple[tuple[Vendor, float], ...], *key: object
) -> Vendor:
    """Deterministic weighted vendor draw."""
    total = sum(w for _v, w in weights)
    draw = unit_hash("vendor", *key) * total
    acc = 0.0
    for vendor, weight in weights:
        acc += weight
        if draw < acc:
            return vendor
    return weights[-1][0]


def apply_scenario(
    network: Network,
    asn: int,
    scenario: DeploymentScenario,
    seed: int = 0,
) -> AppliedDeployment:
    """Configure every router of ``asn`` according to the scenario.

    - assigns vendors and visibility flags;
    - enables SR on ``sr_share`` of the MPLS routers (border routers are
      biased toward SR so interworking tunnels start SR-side, matching
      the paper's dominant SR->LDP mode);
    - enrolls SR routers into a :class:`SegmentRoutingDomain` with the
    scenario's SRGB policy;
    - adds mapping-server entries for LDP-only routers so SR ingresses
      can still tunnel across LDP islands (RFC 8661);
    - returns the per-AS tunnel policy to register with the controller.
    """
    routers = [
        r for r in network.routers_in_as(asn) if r.role is not RouterRole.VANTAGE
    ]
    if not routers:
        raise ValueError(f"AS{asn} has no routers to configure")
    applied = AppliedDeployment(
        asn=asn,
        sr_domain=None,
        policy=TunnelPolicy(
            asn=asn,
            te_waypoint_share=scenario.te_share,
            service_sid_share=scenario.service_share,
            sr_policy_share=scenario.sr_policy_share,
            entropy_share=scenario.entropy_share,
            rsvp_te_share=scenario.rsvp_te_share,
            seed=seed,
        ),
    )
    for router in routers:
        router.vendor = pick_vendor(
            scenario.vendor_weights, seed, asn, router.router_id
        )
        router.ttl_propagate = (
            unit_hash("prop", seed, asn, router.router_id)
            < scenario.propagate_share
        )
        # RFC 4950 support is an OS capability: within one AS the fleet
        # runs the same image, so quoting is uniform per AS -- the share
        # is the probability the whole AS quotes (mixed tunnel types per
        # AS then come from per-ingress ttl-propagate settings).
        router.rfc4950 = (
            unit_hash("4950", seed, asn) < scenario.rfc4950_share
        )
        router.snmp_responsive = (
            unit_hash("snmp", seed, asn, router.router_id)
            < scenario.snmp_share
        )
        router.responds_to_ping = (
            unit_hash("ping", seed, asn, router.router_id)
            < scenario.ping_share
        )
        router.icmp_response_rate = scenario.icmp_response_rate
    if not scenario.mpls:
        return applied

    sr_routers = _select_sr_routers(network, routers, scenario, seed)
    domain: SegmentRoutingDomain | None = None
    if sr_routers:
        domain = SegmentRoutingDomain(
            network,
            asn=asn,
            seed=seed,
            php=not scenario.uhp,
            explicit_null=scenario.explicit_null,
        )
        for router in sr_routers:
            srgb = _srgb_for(router, scenario, seed)
            domain.enroll(router, srgb=srgb)
            applied.sr_routers.append(router.router_id)
    sr_ids = {r.router_id for r in sr_routers}
    ldp_only = {r.router_id for r in routers} - sr_ids
    for router in routers:
        if router.router_id in sr_ids:
            # Only SR routers *bordering* the LDP island speak both
            # protocols: they are the RFC 8661 stitching points.  Other
            # SR routers drop LDP entirely (the simplification operators
            # cite as a main SR motivation, Sec. 3).
            if any(
                n in ldp_only
                for n in network.neighbors(router.router_id)
            ):
                router.ldp_enabled = True
        else:
            router.ldp_enabled = True
            applied.ldp_only_routers.append(router.router_id)
            if domain is not None:
                domain.add_mapping_server_entry(router)
    applied.sr_domain = domain
    return applied


def _select_sr_routers(
    network: Network,
    routers: list[Router],
    scenario: DeploymentScenario,
    seed: int,
) -> list[Router]:
    """SR-enable all routers except one *connected* LDP island.

    Incremental SR migrations leave contiguous legacy regions behind,
    not scattered boxes.  The island grows by BFS from a PE on the
    egress side, so hybrid tunnels overwhelmingly run SR first and LDP
    last (the paper's dominant SR->LDP mode); borders stay SR-side so
    tunnels enter through the SR cloud.
    """
    if not scenario.deploys_sr or scenario.sr_share == 0.0:
        return []
    if scenario.sr_share >= 1.0:
        return list(routers)
    island_size = max(1, round(len(routers) * (1.0 - scenario.sr_share)))
    in_as = {r.router_id for r in routers}
    seed_role = (
        RouterRole.BORDER if scenario.ldp_at_ingress else RouterRole.EDGE
    )
    skip_role = (
        RouterRole.EDGE if scenario.ldp_at_ingress else RouterRole.BORDER
    )
    seeds = sorted(
        (r for r in routers if r.role is seed_role),
        key=lambda r: unit_hash("island-seed", seed, r.router_id),
    ) or sorted(
        routers, key=lambda r: unit_hash("island-seed", seed, r.router_id)
    )
    island: set[int] = set()
    queue = [seeds[0].router_id]
    while queue and len(island) < island_size:
        rid = queue.pop(0)
        if rid in island:
            continue
        if network.router(rid).role is skip_role:
            continue  # keep the far side of the AS in the SR cloud
        island.add(rid)
        for neighbor in network.neighbors(rid):
            if neighbor in in_as and neighbor not in island:
                queue.append(neighbor)
    return [r for r in routers if r.router_id not in island]


#: the domain-wide SRGB used when the operator aligns ranges across a
#: multi-vendor network (RFC 8402 recommendation; Cisco-compatible)
_ALIGNED_SRGB = LabelRange(16_000, 23_999)


def _srgb_for(
    router: Router, scenario: DeploymentScenario, seed: int
) -> LabelRange | None:
    """The SRGB one router enrolls with.

    Real domains keep one consistent SRGB across all routers -- vendor
    defaults differ (Arista starts at 900,000!), so operators align on a
    common block for interoperability (Sec. 3: the main reason 30%
    customize).  The rare misaligned case is the ``heterogeneous_srgb``
    scenario, which produces AReST's suffix-based matches.
    """
    if scenario.heterogeneous_srgb:
        # Per-router bases differing by whole thousands: labels change
        # hop by hop but keep their decimal suffix (footnote 4).
        step = int(unit_hash("hetero", seed, router.router_id) * 8)
        base = 13_000 + step * 1_000
        return LabelRange(base, base + 7_999)
    if scenario.custom_srgb is not None:
        return scenario.custom_srgb
    return _ALIGNED_SRGB
