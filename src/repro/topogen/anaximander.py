"""Anaximander-style target selection (Marechal et al., PAM 2022).

The real Anaximander mines BGP RIBs for prefixes whose AS paths transit
the AS of interest, prunes redundant targets, and schedules the
remainder for efficient probing.  Over the simulated internetwork the
same three stages apply:

1. **collection** -- every prefix announced inside or behind the target
   AS (the simulated equivalent of "expected to transit the AS");
2. **pruning** -- cap the number of addresses drawn per /24 (probing
   several hosts of one prefix rarely reveals new routers);
3. **scheduling** -- interleave prefixes round-robin so consecutive
   probes exercise different parts of the AS (Anaximander's probing-
   reduction ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addressing import IPv4Address, IPv4Prefix
from repro.topogen.internet import MeasurementNetwork
from repro.util.determinism import DeterministicRng


@dataclass(frozen=True, slots=True)
class TargetList:
    """Scheduled probing targets for one AS of interest."""

    asn: int
    addresses: tuple[IPv4Address, ...]

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return iter(self.addresses)


def build_target_list(
    net: MeasurementNetwork,
    per_prefix: int = 3,
    limit: int | None = None,
    seed: int = 0,
) -> TargetList:
    """Produce the ordered target list for one measurement network."""
    if per_prefix < 1:
        raise ValueError("per_prefix must be >= 1")
    rng = DeterministicRng("anaximander", seed, net.target_asn)
    per_prefix_targets: list[list[IPv4Address]] = []
    for prefix in net.target_prefixes:
        per_prefix_targets.append(
            _sample_prefix(rng, prefix, per_prefix)
        )
    scheduled = _round_robin(per_prefix_targets)
    if limit is not None:
        scheduled = scheduled[:limit]
    return TargetList(asn=net.target_asn, addresses=tuple(scheduled))


def _sample_prefix(
    rng: DeterministicRng, prefix: IPv4Prefix, count: int
) -> list[IPv4Address]:
    size = prefix.num_addresses()
    count = min(count, size)
    offsets = rng.sample(range(size), count)
    return [prefix.address_at(o) for o in sorted(offsets)]


def _round_robin(groups: list[list[IPv4Address]]) -> list[IPv4Address]:
    scheduled: list[IPv4Address] = []
    depth = max((len(g) for g in groups), default=0)
    for i in range(depth):
        for group in groups:
            if i < len(group):
                scheduled.append(group[i])
    return scheduled
