#!/usr/bin/env python3
"""The controlled validation environment: Fig. 6, executable.

The paper's authors validated AReST on a controlled environment before
aiming it at the Internet.  This example runs this repo's version: five
minimal networks, one per detection flag, each engineered so exactly
that flag fires.

Run:  python examples/controlled_validation.py
"""

from repro.testbed import run_all_scenarios


def main() -> None:
    print("Fig. 6 in code: one controlled scenario per AReST flag\n")
    for outcome in run_all_scenarios():
        scenario = outcome.scenario
        verdict = "PASS" if outcome.as_expected else "FAIL"
        print(f"=== {scenario.name} [{verdict}]")
        print(f"    {scenario.description}")
        for line in str(outcome.trace).splitlines()[1:]:
            print("   " + line)
        for segment in outcome.segments:
            stars = "*" * segment.signal_strength
            print(
                f"    -> {segment.flag.name} {stars} "
                f"labels={segment.top_labels} depths={segment.stack_depths}"
            )
        print()
    assert all(o.as_expected for o in run_all_scenarios())
    print("all five flags isolated, exactly as drawn in the paper.")


if __name__ == "__main__":
    main()
