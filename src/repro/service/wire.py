"""Wire schemas for the streaming detection service.

``POST /trace`` bodies are the same line-oriented JSON the on-disk
:class:`~repro.campaign.dataset.TraceDataset` uses -- one trace object
per line (a single bare object is a one-line batch).  Reusing the
dataset codec means a recorded campaign can be replayed into the
service with ``cat dataset.jsonl`` semantics, dataset header lines
included: ``{"kind": "header", ...}`` lines are recognized and skipped
rather than rejected.

Decoding is *total*: :func:`decode_body` never raises on user input.
Every line lands in exactly one bucket -- a decoded
:class:`~repro.probing.records.Trace`, a skipped dataset header, or a
:class:`WireRejection` carrying a machine-readable reason (the label
on ``arest_ingest_rejected_total{reason=...}``).  A malformed line
must never take down the request that carried well-formed neighbours.

Canonical JSON rendering lives here too: :func:`canonical_json` is the
single serializer behind ``GET /segments``, the batch comparison path
(``arest detect --segments-json``) and the equivalence tests, so
"byte-identical" is enforced by construction -- sorted keys, tight
separators, one trailing newline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.campaign.dataset import trace_from_json, trace_to_json
from repro.probing.records import Trace

__all__ = [
    "WireRejection",
    "DecodedBody",
    "canonical_json",
    "decode_body",
    "decode_trace_line",
    "trace_to_json",
]

#: rejection reason labels (stable: they are Prometheus label values)
REASON_BAD_JSON = "bad-json"
REASON_NOT_A_TRACE = "not-a-trace"
REASON_BAD_TRACE = "bad-trace"


@dataclass(frozen=True, slots=True)
class WireRejection:
    """One undecodable input line and why it was refused."""

    lineno: int
    reason: str
    detail: str

    def as_dict(self) -> dict:
        return {
            "line": self.lineno,
            "reason": self.reason,
            "detail": self.detail,
        }


@dataclass(slots=True)
class DecodedBody:
    """Outcome of decoding one request body."""

    traces: list[Trace]
    rejections: list[WireRejection]
    skipped_headers: int = 0


def decode_trace_line(
    line: str, lineno: int = 1
) -> Trace | WireRejection | None:
    """Decode one body line; ``None`` means a skipped dataset header."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        return WireRejection(
            lineno=lineno,
            reason=REASON_BAD_JSON,
            detail=f"{exc.msg} at column {exc.colno}",
        )
    if not isinstance(record, dict):
        return WireRejection(
            lineno=lineno,
            reason=REASON_NOT_A_TRACE,
            detail=f"expected a JSON object, got {type(record).__name__}",
        )
    kind = record.get("kind")
    if kind == "header":
        return None
    if kind != "trace":
        return WireRejection(
            lineno=lineno,
            reason=REASON_NOT_A_TRACE,
            detail=f"kind={kind!r} is not a trace record",
        )
    try:
        return trace_from_json(record)
    except Exception as exc:
        return WireRejection(
            lineno=lineno,
            reason=REASON_BAD_TRACE,
            detail=f"{type(exc).__name__}: {exc}",
        )


def decode_body(body: str) -> DecodedBody:
    """Decode a ``POST /trace`` body (single object or JSONL batch)."""
    decoded = DecodedBody(traces=[], rejections=[])
    for lineno, line in enumerate(body.splitlines(), start=1):
        if not line.strip():
            continue
        outcome = decode_trace_line(line, lineno)
        if outcome is None:
            decoded.skipped_headers += 1
        elif isinstance(outcome, WireRejection):
            decoded.rejections.append(outcome)
        else:
            decoded.traces.append(outcome)
    return decoded


def canonical_json(obj: object) -> bytes:
    """The one byte-stable JSON serialization (see module docstring)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
