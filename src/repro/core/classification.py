"""Per-hop area classification: SR-MPLS / classic MPLS / plain IP.

Implements the conservative rule of Sec. 7: only the strong flags (CVR,
CO, LSVR, LVR) mark a hop as Segment Routing; everything else showing
MPLS evidence (labels, TNT-revealed tunnel content, LSO-flagged stacks)
counts as classic MPLS; the rest is IP.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.core.flags import Flag, STRONG_FLAGS
from repro.core.segments import DetectedSegment
from repro.probing.records import Trace


class HopArea(enum.Enum):
    """The three Sec. 7 areas a hop can belong to."""
    SR = "sr-mpls"
    MPLS = "mpls"
    IP = "ip"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_hops(
    trace: Trace,
    segments: Iterable[DetectedSegment],
    strong_only: bool = True,
) -> list[HopArea]:
    """Classify each hop of a trace into SR / MPLS / IP.

    With ``strong_only`` (the paper's setting for Sec. 7), LSO segments
    count as classic MPLS; pass False to credit LSO to SR instead (the
    optimistic reading discussed in Sec. 6.3).

    A hop that answered *without* LSEs but carries ``truth_planes`` is an
    implicit-tunnel hop; real TNT flags these through its qTTL/u-turn
    heuristics, which the simulation stands in for with the ground-truth
    annotation (the heuristics are near-exact on implicit tunnels).
    """
    sr_flags = STRONG_FLAGS if strong_only else STRONG_FLAGS | {Flag.LSO}
    areas = []
    sr_indices: set[int] = set()
    for segment in segments:
        if segment.flag in sr_flags:
            sr_indices.update(segment.hop_indices)
    for i, hop in enumerate(trace.hops):
        if i in sr_indices:
            areas.append(HopArea.SR)
        elif hop.has_lses or hop.tnt_revealed or hop.truth_planes:
            areas.append(HopArea.MPLS)
        else:
            areas.append(HopArea.IP)
    return areas


def trace_hits_area(areas: Iterable[HopArea], area: HopArea) -> bool:
    """Did the trace traverse at least one hop of the given area?"""
    return any(a is area for a in areas)
