"""Crash-safe file writes: tmp file + fsync + atomic rename.

Campaign artifacts (trace datasets, checkpoints, markdown reports) must
survive a ``kill -9`` delivered at any instant: a reader must always
find either the complete old file or the complete new one, never a torn
or half-flushed hybrid.  POSIX gives exactly one primitive with that
guarantee -- ``rename(2)`` within a filesystem -- so every whole-file
write goes through :func:`atomic_writer`:

1. write to a uniquely-named temporary file *in the target directory*
   (same filesystem, so the rename cannot degrade to copy+delete);
2. flush and ``fsync`` the temporary file (data is on stable storage
   before the name flips);
3. ``os.replace`` it over the target (atomic on POSIX and Windows);
4. ``fsync`` the directory so the new name itself is durable.

Append-mode artifacts (the JSONL checkpoint) cannot be renamed into
place line by line; :func:`durable_append` instead flushes and fsyncs
after the write, bounding a crash's damage to a truncated final line --
which the checkpoint loader already salvages.

Write failures are not all equal: running out of disk
(``ENOSPC``/``EDQUOT``) is an *environmental* condition the caller can
report and degrade on -- refuse new admissions, quarantine the shard,
keep the previous artifact -- whereas a permission error or a bad path
is a bug.  Both helpers therefore classify the former into
:class:`DiskFullError` (still an ``OSError``, so untouched handlers keep
working) so every durability surface can branch on one exception type
instead of pattern-matching errno at each call site.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

#: errnos that mean "the disk (or quota) is full", not "the write is wrong"
_DISK_FULL_ERRNOS = frozenset(
    {errno.ENOSPC} | ({errno.EDQUOT} if hasattr(errno, "EDQUOT") else set())
)


class DiskFullError(OSError):
    """A durable write failed because the filesystem ran out of space.

    Raised (with the original errno preserved) wherever
    :func:`atomic_writer` or :func:`durable_append` hit ``ENOSPC`` or
    ``EDQUOT``.  The guarantee still holds: the previous artifact is
    intact -- atomic writes never renamed the torn temporary into
    place, and a torn durable append is bounded to the final line,
    which the JSONL salvage loop drops on the next load.
    """

    def __init__(self, path: Path, cause: OSError) -> None:
        super().__init__(
            cause.errno,
            f"disk full while writing {path}: {cause.strerror}",
        )
        self.path = path


def is_disk_full(exc: BaseException) -> bool:
    """True when ``exc`` is an out-of-space/quota write failure."""
    return (
        isinstance(exc, OSError) and exc.errno in _DISK_FULL_ERRNOS
    )


def fsync_directory(path: Path) -> None:
    """Flush a directory's metadata so renames within it are durable.

    Best-effort: some platforms/filesystems refuse ``open(2)`` on
    directories; losing the directory sync there degrades durability,
    not atomicity.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(
    path: str | Path, encoding: str = "utf-8"
) -> Iterator[IO[str]]:
    """Context manager yielding a handle whose contents replace ``path``
    atomically on successful exit.

    On any exception the temporary file is removed and the target is
    left untouched.  A crash (even ``SIGKILL``) at any point leaves
    either the old file or the new file, never a mixture.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    fh = tmp.open("w", encoding=encoding)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
    except BaseException as exc:
        fh.close()
        tmp.unlink(missing_ok=True)
        if is_disk_full(exc):
            raise DiskFullError(path, exc) from exc
        raise
    fsync_directory(path.parent)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path``'s contents with ``text``."""
    with atomic_writer(path, encoding=encoding) as fh:
        fh.write(text)


def durable_append(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Append ``text`` and fsync before returning.

    Not atomic -- a crash mid-call can leave a partial tail -- but once
    this returns the bytes are on stable storage, and the damage window
    is bounded to the single in-flight append.

    An out-of-space failure surfaces as :class:`DiskFullError`; the
    partial tail it may leave behind is exactly the torn-final-line case
    the JSONL salvage loop already recovers from.
    """
    path = Path(path)
    try:
        with path.open("a", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError as exc:
        if is_disk_full(exc):
            raise DiskFullError(path, exc) from exc
        raise
