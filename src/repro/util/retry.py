"""Bounded, deterministic retry accounting for the measurement plane.

Real campaigns re-fire unanswered probes after an exponential backoff.
The simulator has no wall clock, so retries are *accounted* rather than
slept: the policy computes the backoff each retry would have cost and a
:class:`RetryAccounting` accumulates it, keeping campaigns bit-for-bit
reproducible while still bounding the per-probe attempt budget.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to re-fire an unanswered probe, and at what cost."""

    #: total attempts per probe (1 = no retries)
    max_attempts: int = 1
    #: virtual backoff before the first retry, in milliseconds
    backoff_base_ms: float = 50.0
    #: multiplier applied to the backoff after each retry
    backoff_factor: float = 2.0
    #: ceiling on any single backoff interval
    backoff_cap_ms: float = 2_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_cap_ms < 0:
            raise ValueError("backoff_cap_ms must be >= 0")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single-attempt policy (the default everywhere)."""
        return cls(max_attempts=1)

    @classmethod
    def default(cls) -> "RetryPolicy":
        """A sensible campaign policy: 3 attempts, 50ms doubling backoff."""
        return cls(max_attempts=3)

    @property
    def enabled(self) -> bool:
        """True when the policy allows at least one retry."""
        return self.max_attempts > 1

    def backoff_ms(self, retry_index: int) -> float:
        """Virtual backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        raw = self.backoff_base_ms * self.backoff_factor ** (retry_index - 1)
        return min(self.backoff_cap_ms, raw)

    def max_backoff_ms(self) -> float:
        """Total virtual backoff if every retry of one probe is used."""
        return sum(
            self.backoff_ms(i) for i in range(1, self.max_attempts)
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (checkpoint config signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class RetryAccounting:
    """What the retries of one probing client actually cost."""

    #: probes attempted at least once
    probes: int = 0
    #: extra attempts beyond the first
    retries: int = 0
    #: probes still unanswered after the full attempt budget
    exhausted: int = 0
    #: total virtual backoff accumulated, in milliseconds
    backoff_ms: float = 0.0

    def merge(self, other: "RetryAccounting") -> None:
        """Accumulate another accounting into this one."""
        self.probes += other.probes
        self.retries += other.retries
        self.exhausted += other.exhausted
        self.backoff_ms += other.backoff_ms

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, record: dict) -> "RetryAccounting":
        """Inverse of :meth:`as_dict`."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in names})
