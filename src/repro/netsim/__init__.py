"""Network simulator substrate for the AReST reproduction.

This package implements the forwarding and control planes the paper's
measurement campaign exercised in the wild:

- :mod:`repro.netsim.addressing` -- IPv4 arithmetic and prefix allocation.
- :mod:`repro.netsim.vendors` -- hardware vendor profiles (Table 1 of the
  paper: default SRGB/SRLB ranges, initial-TTL fingerprint signatures,
  dynamic label pools).
- :mod:`repro.netsim.mpls` -- label stack entries and stack operations
  (RFC 3032).
- :mod:`repro.netsim.topology` -- routers, interfaces, links, networks.
- :mod:`repro.netsim.igp` -- link-state shortest-path routing (IS-IS/OSPF
  stand-in) with deterministic ECMP tie-breaking.
- :mod:`repro.netsim.ldp` -- per-FEC local label allocation (RFC 5036).
- :mod:`repro.netsim.sr` -- SR-MPLS control plane: SRGB/SRLB, node,
  adjacency and prefix SIDs (RFC 8660/8402).
- :mod:`repro.netsim.policies` -- SR policies and binding SIDs (RFC 9256).
- :mod:`repro.netsim.rsvp` -- RSVP-TE signaled LSPs (RFC 3209).
- :mod:`repro.netsim.tunnels` -- ingress label programs (incl. the
  RFC 8661 mapping-server interworking path and RFC 6790 entropy labels).
- :mod:`repro.netsim.forwarding` -- the data plane: push/swap/pop, TTL
  propagation, RFC 4950 ICMP quoting.
- :mod:`repro.netsim.dynamics` -- seeded churn on a virtual probe clock:
  link flaps with reconvergence transients, LSP churn, SR migration
  waves.
- :mod:`repro.netsim.checks` -- configuration linting.
"""

from repro.netsim.addressing import IPv4Address, IPv4Prefix, PrefixAllocator
from repro.netsim.dynamics import ChurnCounters, ChurnPlan, NetworkDynamics
from repro.netsim.faults import FaultCounters, FaultInjector, FaultPlan
from repro.netsim.forwarding import ForwardingEngine
from repro.netsim.igp import ShortestPaths
from repro.netsim.ldp import LdpState
from repro.netsim.mpls import LabelStack, LabelStackEntry, ReservedLabel
from repro.netsim.policies import SrPolicyRegistry
from repro.netsim.rsvp import RsvpTeState
from repro.netsim.sr import SegmentRoutingDomain
from repro.netsim.topology import Link, Network, Router, RouterRole
from repro.netsim.tunnels import TunnelController, TunnelPolicy
from repro.netsim.vendors import LabelRange, Vendor, VendorProfile, VENDOR_PROFILES

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "PrefixAllocator",
    "ChurnCounters",
    "ChurnPlan",
    "NetworkDynamics",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "ForwardingEngine",
    "ShortestPaths",
    "LdpState",
    "LabelStack",
    "LabelStackEntry",
    "ReservedLabel",
    "SrPolicyRegistry",
    "RsvpTeState",
    "SegmentRoutingDomain",
    "Link",
    "Network",
    "Router",
    "RouterRole",
    "TunnelController",
    "TunnelPolicy",
    "LabelRange",
    "Vendor",
    "VendorProfile",
    "VENDOR_PROFILES",
]
