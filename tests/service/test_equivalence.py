"""The service's headline contract, Hypothesis-enforced.

Streaming the same traces -- in any arrival order, any batch split,
with compaction landing at any point, even across a recovery -- must
produce ``GET /segments`` bytes identical to the batch pipeline over
the same set.  The aggregate is order-independent by construction
(set unions and counter additions only); these properties guard the
construction.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings, strategies as st

from repro.service.state import (
    SegmentAggregate,
    ServiceState,
    analyze_trace,
    batch_aggregate,
)
from tests.conftest import scaled_examples
from tests.service.conftest import trace_lists


@st.composite
def _shuffled_with_splits(draw):
    """A trace list, an arrival order, and batch boundaries."""
    traces = draw(trace_lists)
    order = draw(st.permutations(range(len(traces))))
    boundaries = draw(
        st.lists(
            st.integers(min_value=0, max_value=max(len(traces), 1)),
            max_size=3,
        )
    )
    return traces, order, sorted(set(boundaries))


class TestStreamingEqualsBatch:
    @settings(max_examples=scaled_examples(30), deadline=None)
    @given(_shuffled_with_splits())
    def test_any_order_merges_to_the_batch_bytes(self, case):
        traces, order, _boundaries = case
        total = SegmentAggregate()
        for index in order:
            total.merge(analyze_trace(traces[index]))
        assert total.segments_json(65001) == batch_aggregate(
            traces
        ).segments_json(65001)

    @settings(max_examples=scaled_examples(15), deadline=None)
    @given(_shuffled_with_splits())
    def test_durable_store_preserves_the_bytes_across_recovery(self, case):
        traces, order, boundaries = case
        expected = batch_aggregate(traces).segments_json()
        with tempfile.TemporaryDirectory() as tmp:
            state = ServiceState(tmp, snapshot_every=2)
            # accept in the drawn batch splits (journal order)...
            splits = [0, *boundaries, len(traces)]
            seqs: list[int] = []
            for lo, hi in zip(splits, splits[1:]):
                seqs.extend(state.accept(traces[lo:hi]))
            assert sorted(seqs) == list(range(1, len(traces) + 1))
            # ...fold in the drawn arrival order, compacting when due
            for index in order:
                state.ingest(
                    seqs[index], analyze_trace(traces[index])
                )
                if state.compaction_due:
                    state.compact()
            assert state.aggregate.segments_json() == expected

            # a restart (snapshot + journal tail replay) keeps the bytes
            recovered = ServiceState(tmp, snapshot_every=2)
            recovered.recover()
            assert recovered.aggregate.segments_json() == expected
