"""Tests for the Table 4 vantage-point fleet."""

from collections import Counter

from repro.campaign.vantage_points import default_vantage_points


class TestTable4Fidelity:
    def test_fifty_vms(self):
        assert len(default_vantage_points()) == 50

    def test_provider_counts(self):
        # Appendix A: AWS 13, Digital Ocean 1, Google Cloud 21, Vultr 15.
        counts = Counter(vp.provider for vp in default_vantage_points())
        assert counts["Amazon AWS"] == 13
        assert counts["Digital Ocean"] == 1
        assert counts["Google Cloud"] == 21
        assert counts["Vultr"] == 15

    def test_provider_asns(self):
        by_provider = {}
        for vp in default_vantage_points():
            by_provider.setdefault(vp.provider, set()).add(vp.provider_asn)
        assert by_provider["Amazon AWS"] == {64512}
        assert by_provider["Digital Ocean"] == {14061}
        assert by_provider["Google Cloud"] == {16550}
        assert by_provider["Vultr"] == {20473}

    def test_country_spread(self):
        countries = {vp.country for vp in default_vantage_points()}
        assert len(countries) >= 25  # "spread over 28 countries"

    def test_ids_unique_and_sequential(self):
        vps = default_vantage_points()
        assert [vp.vp_id for vp in vps] == [
            f"VM{i}" for i in range(1, 51)
        ]

    def test_known_rows(self):
        vps = {vp.vp_id: vp for vp in default_vantage_points()}
        assert vps["VM1"].city == "Tokyo"
        assert vps["VM14"].provider == "Digital Ocean"
        assert vps["VM27"].city == "Mons"  # the authors' Belgian VP
        assert vps["VM50"].city == "Bangalore"
