"""End-to-end integration tests across the full stack.

These exercise the complete chain -- topology generation, control-plane
convergence, probing, fingerprinting, detection, analysis -- the way the
benchmark harness does, and assert the paper's qualitative results.
"""

import pytest

from repro.analysis.validation import validate_against_truth
from repro.campaign import CampaignRunner, TraceDataset
from repro.core.flags import Flag
from repro.core.interworking import InterworkingMode
from repro.core.pipeline import ArestPipeline
from repro.probing.tunnels import TunnelType
from repro.topogen.bdrmapit import BdrmapIt
from repro.topogen.internet import build_measurement_network
from repro.topogen.portfolio import default_portfolio


class TestDatasetRoundtripThroughPipeline:
    def test_serialized_dataset_reanalyzes_identically(
        self, tmp_path, esnet_result
    ):
        """Detection results must survive a dump/load cycle: the paper
        publishes traces for exactly this workflow."""
        path = tmp_path / "esnet.jsonl"
        esnet_result.dataset.dump_jsonl(path)
        loaded = TraceDataset.load_jsonl(path)
        pipeline = ArestPipeline()
        analysis = pipeline.analyze_as(
            esnet_result.spec.asn, loaded.traces, esnet_result.fingerprints
        )
        assert analysis.flag_counts() == (
            esnet_result.analysis.flag_counts()
        )
        assert analysis.sr_addresses == esnet_result.analysis.sr_addresses


class TestBdrmapitIntegration:
    def test_truth_annotator_equals_perfect_bdrmapit(self, esnet_result):
        spec = esnet_result.spec
        net = build_measurement_network(
            spec,
            esnet_result.dataset.metadata["vps"].split(","),
            seed=1,
        )
        bdrmap = BdrmapIt(net.network, error_rate=0.0)
        pipeline = ArestPipeline()
        via_bdrmap = pipeline.analyze_as(
            spec.asn,
            esnet_result.dataset.traces,
            esnet_result.fingerprints,
            asn_of=bdrmap.asn_of_hop,
        )
        via_truth = pipeline.analyze_as(
            spec.asn,
            esnet_result.dataset.traces,
            esnet_result.fingerprints,
        )
        assert via_bdrmap.flag_counts() == via_truth.flag_counts()

    def test_bdrmap_errors_shrink_coverage(self, esnet_result):
        spec = esnet_result.spec
        net = build_measurement_network(
            spec,
            esnet_result.dataset.metadata["vps"].split(","),
            seed=1,
        )
        noisy = BdrmapIt(net.network, error_rate=0.5, seed=9)
        pipeline = ArestPipeline()
        analysis = pipeline.analyze_as(
            spec.asn,
            esnet_result.dataset.traces,
            esnet_result.fingerprints,
            asn_of=noisy.asn_of_hop,
        )
        full = esnet_result.analysis
        assert len(analysis.sr_addresses) <= len(full.sr_addresses)


class TestCrossScenarioShapes:
    """The paper's comparative claims across deployment styles."""

    def test_sr_detection_requires_visibility(self):
        runner = CampaignRunner(seed=2, vps_per_as=2, targets_per_as=10)
        visible = runner.run_as(15)  # Microsoft: explicit
        hidden = runner.run_as(3)  # NTT Docomo: invisible tunnels
        assert visible.analysis.has_sr_evidence(strong_only=False)
        assert not hidden.analysis.has_sr_evidence(strong_only=False)
        assert hidden.truth.deploys_sr  # ...even though SR runs there

    def test_stub_vs_transit_tunnel_visibility(self):
        runner = CampaignRunner(seed=2, vps_per_as=2, targets_per_as=10)
        stub = runner.run_as(7)  # Proximus
        transit = runner.run_as(28)  # Bell Canada
        assert (
            transit.analysis.explicit_tunnel_share()
            >= stub.analysis.explicit_tunnel_share() * 0.8
        )

    def test_hybrid_as_yields_sr_to_ldp(self):
        runner = CampaignRunner(seed=1, vps_per_as=3, targets_per_as=18)
        result = runner.run_as(17)  # Softbank: hybrid confirmed AS
        modes = result.analysis.interworking_modes
        interworking = {
            m: c
            for m, c in modes.items()
            if m
            not in (InterworkingMode.FULL_SR, InterworkingMode.FULL_LDP)
            and c
        }
        if interworking:  # hybrid islands on the probed paths
            assert (
                modes.get(InterworkingMode.SR_TO_LDP, 0)
                >= max(interworking.values()) * 0.5
            )

    def test_interworking_validation_has_no_segment_fps(self):
        runner = CampaignRunner(seed=1, vps_per_as=3, targets_per_as=18)
        result = runner.run_as(17)
        report = validate_against_truth(result)
        for flag in (Flag.CVR, Flag.CO):
            assert report.per_flag[flag].false_positives == 0


class TestPrecisionGuarantee:
    def test_zero_strong_flag_false_positives(
        self, small_portfolio_results
    ):
        """The paper's central precision claim: across every scenario
        flavour, no strong-flag segment is traditional MPLS."""
        from repro.analysis.validation import validate_against_truth
        from repro.core.flags import STRONG_FLAGS

        for as_id, result in small_portfolio_results.items():
            report = validate_against_truth(result)
            for flag in STRONG_FLAGS:
                assert report.per_flag[flag].false_positives == 0, (
                    as_id,
                    flag,
                )


class TestExcludedAses:
    def test_excluded_ases_discover_too_little(self):
        """The 19 excluded Table 5 ASes have tiny simulated footprints."""
        portfolio = default_portfolio()
        runner = CampaignRunner(seed=2, vps_per_as=2, targets_per_as=8)
        result = runner.run_as(45)  # CFU-NET: excluded (72 addresses)
        analyzed = runner.run_as(46)
        excluded_ifaces = (
            len(result.analysis.sr_addresses)
            + len(result.analysis.mpls_addresses)
            + len(result.analysis.ip_addresses)
        )
        analyzed_ifaces = (
            len(analyzed.analysis.sr_addresses)
            + len(analyzed.analysis.mpls_addresses)
            + len(analyzed.analysis.ip_addresses)
        )
        assert excluded_ifaces < analyzed_ifaces


class TestOpaqueEligibility:
    def test_opaque_tunnels_raise_only_stack_flags(self):
        """Sec. 6.2: opaque tunnels expose one LSE, so only LSVR / LVR /
        LSO can fire -- never the consecutive flags."""
        runner = CampaignRunner(seed=2, vps_per_as=3, targets_per_as=12)
        result = runner.run_as(29)  # China Telecom: pipe-mode tunnels
        tunnel_types = result.analysis.tunnel_types
        assert tunnel_types.get(TunnelType.EXPLICIT, 0) <= (
            tunnel_types.get(TunnelType.OPAQUE, 0)
            + tunnel_types.get(TunnelType.INVISIBLE, 0)
        )
        counts = result.analysis.flag_counts()
        assert counts[Flag.CVR] + counts[Flag.CO] == 0


class TestQuarantineAccounting:
    """Quarantined traces are counted everywhere, never silently lost."""

    def test_reconciliation_invariant_clean(self, small_portfolio_results):
        for as_id, result in small_portfolio_results.items():
            analysis = result.analysis
            assert (
                analysis.traces_analyzed + analysis.traces_quarantined
                == analysis.traces_total
            ), as_id
            assert analysis.traces_quarantined == 0, as_id

    def test_reconciliation_invariant_under_corruption(self):
        from repro.analysis.markdown_report import render_markdown_report
        from repro.netsim.faults import FaultPlan

        runner = CampaignRunner(
            seed=1,
            vps_per_as=2,
            targets_per_as=10,
            fault_plan=FaultPlan.corruption(0.25, seed=1),
        )
        report = runner.run_portfolio(as_ids=[15, 46])
        total = analyzed = quarantined = 0
        for as_id in report:
            analysis = report[as_id].analysis
            assert (
                analysis.traces_analyzed + analysis.traces_quarantined
                == analysis.traces_total
            ), as_id
            assert analysis.traces_total == len(report[as_id].dataset.traces)
            total += analysis.traces_total
            analyzed += analysis.traces_analyzed
            quarantined += analysis.traces_quarantined
        assert analyzed + quarantined == total
        # corruption at 25% must actually exercise the sanitizer
        anomalies = sum(len(report[i].analysis.anomalies) for i in report)
        assert anomalies > 0
        # ...and the accounting surfaces in the campaign-level report
        assert report.traces_quarantined == quarantined
        assert sum(report.anomaly_counts.values()) == anomalies
        if quarantined:
            assert f"{quarantined} trace(s) quarantined" in report.summary()
        markdown = render_markdown_report(report.results)
        assert "Data quality" in markdown

    def test_clean_report_has_no_data_quality_section(
        self, small_portfolio_results
    ):
        from repro.analysis.markdown_report import render_markdown_report

        markdown = render_markdown_report(small_portfolio_results.results)
        assert "Data quality" not in markdown


@pytest.mark.slow
class TestFullSixtyAsSweep:
    def test_all_sixty_ases_run(self):
        """Even the 19 excluded Table 5 ASes build, probe and analyze
        without error -- their footprints are just too small to matter
        (which is why the paper excludes them)."""
        runner = CampaignRunner(seed=3, vps_per_as=2, targets_per_as=6)
        results = runner.run_portfolio(analyzed_only=False)
        assert len(results) == 60
        portfolio = default_portfolio()
        excluded = {s.as_id for s in portfolio.excluded()}
        excluded_footprints = [
            len(results[i].dataset.distinct_addresses()) for i in excluded
        ]
        analyzed_footprints = [
            len(results[i].dataset.distinct_addresses())
            for i in results
            if i not in excluded
        ]
        assert (
            sum(excluded_footprints) / len(excluded_footprints)
            < sum(analyzed_footprints) / len(analyzed_footprints)
        )
