"""Router / link / network model.

A :class:`Network` is a flat graph of :class:`Router` objects connected by
point-to-point :class:`Link` objects.  Routers belong to autonomous systems
(``asn``), carry a hardware :class:`~repro.netsim.vendors.Vendor`, and hold
the per-box configuration knobs that drive what traceroute can observe:

``ttl_propagate``
    Whether this router, when acting as ingress LER, copies the IP TTL
    into the LSE-TTL of pushed labels (``ttl-propagate`` in vendor CLIs).
    Off means the tunnel is *invisible* or *opaque* (Sec. 2.2).

``rfc4950``
    Whether the router quotes the received MPLS label stack in ICMP
    ``time-exceeded`` messages (RFC 4950).  Off downgrades *explicit*
    tunnels to *implicit* ones.

``snmp_responsive``
    Whether the router answers SNMPv3 discovery probes, feeding the
    SNMPv3 fingerprinting dataset of Albakour et al.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.netsim.addressing import IPv4Address, IPv4Prefix, PrefixAllocator
from repro.netsim.vendors import Vendor


class RouterRole(enum.Enum):
    """Coarse role of a router inside its AS."""

    CORE = "core"  # P router
    EDGE = "edge"  # PE router (ingress/egress LER)
    BORDER = "border"  # ASBR facing other ASes
    VANTAGE = "vantage"  # measurement vantage point


@dataclass(slots=True)
class Router:
    """A simulated router (or vantage-point host)."""

    router_id: int
    name: str
    asn: int
    vendor: Vendor = Vendor.UNKNOWN
    role: RouterRole = RouterRole.CORE
    loopback: IPv4Address | None = None
    ttl_propagate: bool = True
    rfc4950: bool = True
    snmp_responsive: bool = False
    sr_enabled: bool = False
    ldp_enabled: bool = False
    #: router never answers traceroute probes (shows as '*')
    icmp_silent: bool = False
    #: probability the router answers any given expiring probe (ICMP
    #: rate limiting / control-plane policing; per-flow deterministic)
    icmp_response_rate: float = 1.0
    #: router answers ICMP echo (needed for TTL fingerprint's second half)
    responds_to_ping: bool = True
    #: interface address facing each neighbour: neighbour id -> address
    interfaces: dict[int, IPv4Address] = field(default_factory=dict)

    def interface_to(self, neighbor_id: int) -> IPv4Address:
        """The interface address facing one neighbour."""
        try:
            return self.interfaces[neighbor_id]
        except KeyError:
            raise KeyError(
                f"router {self.name} has no interface to #{neighbor_id}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(AS{self.asn})"


@dataclass(frozen=True, slots=True)
class Link:
    """A point-to-point link with symmetric IGP cost."""

    a: int
    b: int
    cost: int = 10
    prefix: IPv4Prefix | None = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("self-loop links are not allowed")
        if self.cost <= 0:
            raise ValueError(f"IGP cost must be positive, got {self.cost}")

    def other(self, router_id: int) -> int:
        """The far end of the link from one endpoint."""
        if router_id == self.a:
            return self.b
        if router_id == self.b:
            return self.a
        raise ValueError(f"router #{router_id} not on link {self.a}-{self.b}")

    def endpoints(self) -> tuple[int, int]:
        """Both router ids of the link."""
        return (self.a, self.b)


class Network:
    """The global simulated internetwork.

    Owns routers, links and address space.  Interface and loopback
    addresses are carved out of a per-network supernet so that addresses
    are unique network-wide, and an ``ip -> router`` reverse map supports
    the measurement-side tooling (alias resolution, bdrmapIT-style
    annotation).
    """

    def __init__(self, supernet: str | IPv4Prefix = "10.0.0.0/8") -> None:
        if isinstance(supernet, str):
            supernet = IPv4Prefix.from_string(supernet)
        self._allocator = PrefixAllocator(supernet)
        self._routers: dict[int, Router] = {}
        self._links: list[Link] = []
        self._adjacency: dict[int, dict[int, Link]] = {}
        self._ip_owner: dict[IPv4Address, int] = {}
        #: prefixes announced into BGP by a router (targets live here)
        self._announced: list[tuple[IPv4Prefix, int]] = []
        #: administratively/operationally failed links, as normalized
        #: ``(min_id, max_id)`` endpoint pairs; the links keep their
        #: numbering and interface addresses so a repair restores the
        #: exact pre-failure state
        self._down_links: set[tuple[int, int]] = set()
        self._next_id = 0

    # -- construction -------------------------------------------------------

    def add_router(
        self,
        name: str,
        asn: int,
        vendor: Vendor = Vendor.UNKNOWN,
        role: RouterRole = RouterRole.CORE,
        **config: bool,
    ) -> Router:
        """Create a router, allocating a /32 loopback for it."""
        router_id = self._next_id
        self._next_id += 1
        loopback = self._allocator.allocate(32).network
        router = Router(
            router_id=router_id,
            name=name,
            asn=asn,
            vendor=vendor,
            role=role,
            loopback=loopback,
            **config,
        )
        self._routers[router_id] = router
        self._adjacency[router_id] = {}
        self._ip_owner[loopback] = router_id
        return router

    def add_link(self, a: Router | int, b: Router | int, cost: int = 10) -> Link:
        """Connect two routers with a /31-numbered point-to-point link."""
        a_id = a.router_id if isinstance(a, Router) else a
        b_id = b.router_id if isinstance(b, Router) else b
        for rid in (a_id, b_id):
            if rid not in self._routers:
                raise KeyError(f"unknown router #{rid}")
        if b_id in self._adjacency[a_id]:
            raise ValueError(
                f"duplicate link between #{a_id} and #{b_id}"
            )
        prefix = self._allocator.allocate(31)
        link = Link(a=a_id, b=b_id, cost=cost, prefix=prefix)
        self._links.append(link)
        self._adjacency[a_id][b_id] = link
        self._adjacency[b_id][a_id] = link
        a_ip = prefix.address_at(0)
        b_ip = prefix.address_at(1)
        self._routers[a_id].interfaces[b_id] = a_ip
        self._routers[b_id].interfaces[a_id] = b_ip
        self._ip_owner[a_ip] = a_id
        self._ip_owner[b_ip] = b_id
        return link

    def announce_prefix(self, router: Router | int, length: int = 24) -> IPv4Prefix:
        """Allocate a destination prefix originated by ``router``.

        Traceroute targets are drawn from announced prefixes; packets to
        any address inside the prefix are delivered to the announcing
        router, which answers on the target's behalf (the simulated
        equivalent of a customer network behind a PE).
        """
        rid = router.router_id if isinstance(router, Router) else router
        if rid not in self._routers:
            raise KeyError(f"unknown router #{rid}")
        prefix = self._allocator.allocate(length)
        self._announced.append((prefix, rid))
        return prefix

    # -- dynamics -----------------------------------------------------------

    def _link_key(self, a: int, b: int) -> tuple[int, int]:
        if self._adjacency.get(a, {}).get(b) is None:
            raise KeyError(f"no link between #{a} and #{b}")
        return (a, b) if a < b else (b, a)

    def set_link_down(self, a: int, b: int) -> None:
        """Fail a link without destroying it.

        The link vanishes from :meth:`neighbors` / :meth:`link_between`
        (so SPF routes around it after the caller invalidates the IGP),
        but keeps its prefix, interface addresses, and position in the
        link list -- :meth:`set_link_up` restores the exact pre-failure
        network.  Idempotent.
        """
        self._down_links.add(self._link_key(a, b))

    def set_link_up(self, a: int, b: int) -> None:
        """Repair a previously failed link.  Idempotent."""
        self._down_links.discard(self._link_key(a, b))

    def link_is_down(self, a: int, b: int) -> bool:
        """True when the link between ``a`` and ``b`` is failed."""
        key = (a, b) if a < b else (b, a)
        return key in self._down_links

    def down_links(self) -> list[tuple[int, int]]:
        """Normalized endpoint pairs of every failed link, sorted."""
        return sorted(self._down_links)

    # -- lookup -------------------------------------------------------------

    def router(self, router_id: int) -> Router:
        """Look up a router by id."""
        return self._routers[router_id]

    def routers(self) -> Iterator[Router]:
        """Iterate over every router."""
        return iter(self._routers.values())

    def routers_in_as(self, asn: int) -> list[Router]:
        """Every router of one AS."""
        return [r for r in self._routers.values() if r.asn == asn]

    def links(self) -> Iterable[Link]:
        """Every link (immutable view)."""
        return tuple(self._links)

    def link_between(self, a: int, b: int) -> Link | None:
        """The link joining two routers, or None (failed links hidden)."""
        link = self._adjacency.get(a, {}).get(b)
        if link is not None and self._down_links and self.link_is_down(a, b):
            return None
        return link

    def neighbors(self, router_id: int) -> list[int]:
        """Sorted neighbour ids of one router (failed links hidden)."""
        if not self._down_links:
            return sorted(self._adjacency[router_id])
        return sorted(
            n
            for n in self._adjacency[router_id]
            if not self.link_is_down(router_id, n)
        )

    def owner_of(self, address: IPv4Address) -> int | None:
        """Router owning an interface or loopback address, if any."""
        owner = self._ip_owner.get(address)
        if owner is not None:
            return owner
        rid = self.originating_router(address)
        return rid

    def originating_router(self, address: IPv4Address) -> int | None:
        """Router announcing the longest prefix covering ``address``."""
        best: tuple[int, int] | None = None  # (length, router)
        for prefix, rid in self._announced:
            if prefix.contains(address) and (
                best is None or prefix.length > best[0]
            ):
                best = (prefix.length, rid)
        return best[1] if best else None

    def announced_prefixes(self) -> list[tuple[IPv4Prefix, int]]:
        """Every (prefix, originating router) pair."""
        return list(self._announced)

    def interface_addresses(self) -> dict[IPv4Address, int]:
        """All interface/loopback addresses and their owning routers."""
        return dict(self._ip_owner)

    @property
    def num_routers(self) -> int:
        """Router count."""
        return len(self._routers)

    @property
    def num_links(self) -> int:
        """Link count."""
        return len(self._links)

    # -- export -------------------------------------------------------------

    def to_graph(self) -> nx.Graph:
        """Export as a networkx graph (used by tests as an SPF oracle)."""
        graph = nx.Graph()
        for router in self._routers.values():
            graph.add_node(router.router_id, asn=router.asn, name=router.name)
        for link in self._links:
            if self._down_links and self.link_is_down(link.a, link.b):
                continue
            graph.add_edge(link.a, link.b, weight=link.cost)
        return graph
