"""Tests for vendor profiles (Table 1 fidelity and TTL classes)."""

import pytest

from repro.netsim.vendors import (
    CISCO_HUAWEI_SRGB_INTERSECTION,
    LabelRange,
    TTLSignature,
    VENDOR_PROFILES,
    Vendor,
    profile,
    ttl_signature_class,
)


class TestLabelRange:
    def test_containment(self):
        r = LabelRange(16_000, 23_999)
        assert 16_000 in r and 23_999 in r
        assert 15_999 not in r and 24_000 not in r

    def test_size(self):
        assert LabelRange(16_000, 23_999).size() == 8_000

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LabelRange(10, 5)
        with pytest.raises(ValueError):
            LabelRange(0, 2**20)

    def test_overlap_and_intersection(self):
        cisco = LabelRange(16_000, 23_999)
        huawei = LabelRange(16_000, 47_999)
        arista = LabelRange(900_000, 965_535)
        assert cisco.overlaps(huawei)
        assert not cisco.overlaps(arista)
        assert cisco.intersection(huawei) == LabelRange(16_000, 23_999)
        assert cisco.intersection(arista) is None


class TestTable1Fidelity:
    """The defaults must match Table 1 of the paper exactly."""

    def test_cisco(self):
        p = profile(Vendor.CISCO)
        assert p.default_srgb == LabelRange(16_000, 23_999)
        assert p.default_srlb == LabelRange(15_000, 15_999)

    def test_huawei(self):
        p = profile(Vendor.HUAWEI)
        assert p.default_srgb == LabelRange(16_000, 47_999)
        assert p.default_srlb is not None
        assert p.default_srlb.low >= 48_000  # "base >= 48,000"

    def test_arista(self):
        p = profile(Vendor.ARISTA)
        assert p.default_srgb == LabelRange(900_000, 965_535)
        assert p.default_srlb == LabelRange(100_000, 116_383)

    def test_juniper_has_no_srlb(self):
        # Sec. 2.3: Juniper allocates adjacency SIDs from the dynamic pool.
        p = profile(Vendor.JUNIPER)
        assert p.default_srlb is None

    def test_cisco_huawei_intersection(self):
        cisco = profile(Vendor.CISCO).default_srgb
        huawei = profile(Vendor.HUAWEI).default_srgb
        assert cisco is not None and huawei is not None
        assert cisco.intersection(huawei) == CISCO_HUAWEI_SRGB_INTERSECTION

    def test_dynamic_pools_avoid_reserved_labels(self):
        for p in VENDOR_PROFILES.values():
            assert p.dynamic_pool.low >= 16

    def test_arista_not_snmp_identifiable(self):
        # Sec. 5: the SNMPv3 dataset has no Arista fingerprints.
        assert not profile(Vendor.ARISTA).snmp_identifiable
        assert profile(Vendor.CISCO).snmp_identifiable


class TestTTLSignatures:
    def test_cisco_huawei_share_signature(self):
        # The paper's key ambiguity: both answer with <255, 255>.
        assert (
            profile(Vendor.CISCO).ttl_signature
            == profile(Vendor.HUAWEI).ttl_signature
        )

    def test_signature_class_for_255_255(self):
        cls = ttl_signature_class(TTLSignature(255, 255))
        assert cls == frozenset({Vendor.CISCO, Vendor.HUAWEI})

    def test_juniper_distinguishable(self):
        cls = ttl_signature_class(profile(Vendor.JUNIPER).ttl_signature)
        assert Vendor.CISCO not in cls

    def test_implausible_ttl_rejected(self):
        with pytest.raises(ValueError):
            TTLSignature(100, 255)

    def test_unknown_vendor_has_no_profile(self):
        with pytest.raises(KeyError):
            profile(Vendor.UNKNOWN)

    def test_unknown_signature_empty_class(self):
        assert ttl_signature_class(TTLSignature(128, 128)) == frozenset()
