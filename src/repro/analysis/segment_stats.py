"""Detected-segment length statistics.

The consecutive flags gain confidence with run length: the coincidence
probability of a k-hop run is 1/N^(k-1) (Sec. 4.1), so a campaign's
segment-length profile translates directly into a false-positive
budget.  This module aggregates the run lengths AReST actually observed
and prices them with the paper's model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.campaign.runner import AsCampaignResult
from repro.core.flags import (
    SEQUENCE_FLAGS,
    cvr_false_positive_probability,
)


@dataclass(frozen=True, slots=True)
class SegmentLengthRow:
    """Per-AS distribution of consecutive-flag run lengths."""

    as_id: int
    name: str
    length_counts: tuple[tuple[int, int], ...]  # (length, count)

    def total(self) -> int:
        """Number of distinct consecutive-flag runs."""
        return sum(c for _l, c in self.length_counts)

    def mean_length(self) -> float:
        """Average run length in hops."""
        total = self.total()
        if total == 0:
            return 0.0
        return sum(l * c for l, c in self.length_counts) / total

    def max_length(self) -> int:
        """Longest observed run."""
        return max((l for l, _c in self.length_counts), default=0)

    def expected_false_positives(
        self, pool_size: int | None = None
    ) -> float:
        """Sum of per-run coincidence probabilities: the number of
        flagged runs one would expect to be pure label-collision luck."""
        kwargs = {} if pool_size is None else {"pool_size": pool_size}
        return sum(
            count * cvr_false_positive_probability(length, **kwargs)
            for length, count in self.length_counts
            if length >= 2
        )


def segment_length_rows(
    results: Mapping[int, AsCampaignResult]
) -> list[SegmentLengthRow]:
    """Distinct CVR/CO run lengths per AS."""
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        counts: Counter = Counter()
        seen: set = set()
        for _trace, segments in result.trace_segments:
            for segment in segments:
                if segment.flag not in SEQUENCE_FLAGS:
                    continue
                if segment.key() in seen:
                    continue
                seen.add(segment.key())
                counts[segment.length] += 1
        rows.append(
            SegmentLengthRow(
                as_id=as_id,
                name=result.spec.name,
                length_counts=tuple(sorted(counts.items())),
            )
        )
    return rows


def batch_segment_length_rows(
    results: Mapping[int, AsCampaignResult],
    detector=None,
) -> list[SegmentLengthRow]:
    """Columnar variant of :func:`segment_length_rows`.

    Rebuilds each AS's column batch once and re-runs detection as
    whole-batch array passes with the AS-ownership mask
    (``detect_batch(batch, asn=...)``), instead of walking the stored
    per-trace segment lists.  Produces identical rows -- the columnar
    differential contract guarantees the segments match -- so this is
    the template for re-computing length statistics over *archived*
    campaigns where only the traces survive.
    """
    from repro.core.columnar import ColumnarDetector, TraceBatch

    if detector is None:
        detector = ColumnarDetector()
    rows = []
    for as_id in sorted(results):
        result = results[as_id]
        counts: Counter = Counter()
        seen: set = set()
        if result.trace_segments:
            fingerprints = result.fingerprints
            batch = TraceBatch.from_pairs(
                (trace, fingerprints)
                for trace, _segments in result.trace_segments
            )
            # result.analysis.asn is the real target ASN (the portfolio
            # key is just an index); the ownership mask must use it
            for segments in detector.detect_batch(
                batch, asn=result.analysis.asn
            ):
                for segment in segments:
                    if segment.flag not in SEQUENCE_FLAGS:
                        continue
                    if segment.key() in seen:
                        continue
                    seen.add(segment.key())
                    counts[segment.length] += 1
        rows.append(
            SegmentLengthRow(
                as_id=as_id,
                name=result.spec.name,
                length_counts=tuple(sorted(counts.items())),
            )
        )
    return rows


def portfolio_expected_false_positives(
    rows: list[SegmentLengthRow],
) -> float:
    """Campaign-wide coincidence budget (the Sec. 4.1 argument, priced
    on the real observations)."""
    return sum(row.expected_false_positives() for row in rows)
