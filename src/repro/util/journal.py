"""Shared JSONL journal primitives: durable appends, salvaging reads.

Three artifacts in the codebase share one on-disk idiom -- a header
line describing the writer's configuration followed by one JSON record
per line, appended durably as work completes:

- the campaign checkpoint (:mod:`repro.campaign.checkpoint`),
- the telemetry event stream (:mod:`repro.obs.sink`),
- the service ingest journal (:mod:`repro.service.state`).

This module holds the pieces they have in common, so the crash-safety
story is written (and tested) once:

- :func:`append_json_line` -- serialize one record and append it with
  :func:`~repro.util.atomicio.durable_append`: once it returns the
  line is on stable storage, and a crash mid-call at worst truncates
  the final line;
- :func:`rewrite_json_lines` -- atomically replace the whole file
  (header + records) via :func:`~repro.util.atomicio.atomic_writer`;
- :func:`salvage_decode` -- the torn-tail salvage loop: decode intact
  lines until the first damaged one, log what was dropped, and report
  how much of the tail is suspect.  A crash mid-append (or a partial
  copy) damages at most the final line, and everything before it is
  recovered.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Callable, Iterable, TypeVar

from repro.util.atomicio import atomic_writer, durable_append

T = TypeVar("T")

_module_logger = logging.getLogger(__name__)


def append_json_line(path: str | Path, record: dict) -> None:
    """Durably append ``record`` as one JSON line."""
    durable_append(path, json.dumps(record) + "\n")


def rewrite_json_lines(
    path: str | Path, header: dict, records: Iterable[dict]
) -> None:
    """Atomically rewrite ``path`` as header + one record per line."""
    with atomic_writer(path) as fh:
        fh.write(json.dumps(header) + "\n")
        for record in records:
            fh.write(json.dumps(record) + "\n")


def salvage_decode(
    lines: list[str],
    decode: Callable[[dict], T],
    *,
    path: str | Path,
    label: str,
    noun: str = "record(s)",
    first_lineno: int = 2,
    logger: logging.Logger | None = None,
) -> tuple[list[T], int]:
    """Decode JSONL body lines, salvaging the intact prefix of a torn file.

    ``lines`` are the body lines (header excluded); ``first_lineno`` is
    the 1-based file line number of the first of them (for log
    messages).  Each line is JSON-parsed and passed to ``decode``; the
    first line that fails either step marks the start of the damage --
    everything from it onward is dropped and counted, mirroring the
    trust model of an append-only file (bytes after a torn write are
    suspect).  Blank lines are skipped.

    Returns ``(decoded records, damaged line count)``.  ``damaged == 0``
    means the file was clean.
    """
    log = logger if logger is not None else _module_logger
    decoded: list[T] = []
    damaged = 0
    total = len(lines)
    for offset, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            obj = decode(record)
        except Exception:
            damaged = total - offset
            log.warning(
                "%s %s: line %d is damaged; salvaged %d %s, "
                "discarding %d trailing line(s)",
                label,
                path,
                first_lineno + offset,
                len(decoded),
                noun,
                damaged,
            )
            break
        decoded.append(obj)
    return decoded, damaged
