"""Router vendor fingerprinting.

Two techniques, mirroring Sec. 5 of the paper:

- **TTL-based** (Vanaubel et al.): the pair of initial TTLs a router
  uses for ICMP time-exceeded and echo-reply messages partitions boxes
  into classes.  Cisco and Huawei share ``<255, 255>`` and cannot be
  told apart, so range flags fall back to the intersection of both SRGBs.
- **SNMPv3-based** (Albakour et al.): engine-ID discovery identifies the
  exact vendor, but only for routers that answer SNMPv3 and vendors
  present in the public dataset (Arista is not).

When both speak, SNMPv3 takes precedence.
"""

from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.fingerprint.ttl import TtlFingerprinter, infer_initial_ttl
from repro.fingerprint.snmp import SnmpOracle
from repro.fingerprint.combined import CombinedFingerprinter

__all__ = [
    "Fingerprint",
    "FingerprintMethod",
    "TtlFingerprinter",
    "infer_initial_ttl",
    "SnmpOracle",
    "CombinedFingerprinter",
]
