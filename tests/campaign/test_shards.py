"""Shard planning, per-VP probe records, and spill-file invariance."""

import json
from pathlib import Path

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.shards import (
    ShardProbeRecord,
    ShardSpec,
    VpProbe,
    build_shard_context,
    merged_dataset,
    probe_shard,
    shard_plan,
)
from repro.netsim.faults import FaultCounters
from repro.util.retry import RetryAccounting


class TestShardPlan:
    def test_contiguous_buckets_in_plan_order(self):
        plan = shard_plan([7, 3], vps_per_as=5, vps_per_shard=2)
        assert [(s.as_id, s.bucket, s.vp_indices) for s in plan] == [
            (7, 0, (0, 1)),
            (7, 1, (2, 3)),
            (7, 2, (4,)),
            (3, 0, (0, 1)),
            (3, 1, (2, 3)),
            (3, 2, (4,)),
        ]

    def test_oversized_shard_clamps_to_one_bucket(self):
        plan = shard_plan([1], vps_per_as=3, vps_per_shard=50)
        assert [(s.bucket, s.vp_indices) for s in plan] == [(0, (0, 1, 2))]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_plan([1], vps_per_as=0, vps_per_shard=1)
        with pytest.raises(ValueError):
            shard_plan([1], vps_per_as=1, vps_per_shard=0)

    def test_spec_identity_and_spill_name(self):
        spec = ShardSpec(as_id=46, bucket=2, vp_indices=(4, 5))
        assert spec.key == (46, 2)
        assert spec.spill_name == "as000046-b002.jsonl"


class TestRecordCodecs:
    def _vp(self, i: int) -> VpProbe:
        return VpProbe(
            vp_index=i,
            vp_id=f"vp{i:03d}",
            traces=4,
            sha256=f"digest-{i}",
            retry_accounting=RetryAccounting(),
            fault_counters=FaultCounters(),
        )

    def test_vp_probe_roundtrip(self):
        vp = self._vp(3)
        clone = VpProbe.from_dict(json.loads(json.dumps(vp.as_dict())))
        assert clone.as_dict() == vp.as_dict()

    def test_shard_probe_record_roundtrip(self):
        record = ShardProbeRecord(
            as_id=9,
            bucket=1,
            spill="as000009-b001.jsonl",
            vps=[self._vp(2), self._vp(3)],
        )
        clone = ShardProbeRecord.from_dict(
            9, 1, json.loads(json.dumps(record.as_dict()))
        )
        assert clone.key == (9, 1)
        assert clone.as_dict() == record.as_dict()


class TestProbeShard:
    """Sharded probing is partition-invariant and digest-faithful."""

    def _runner(self) -> CampaignRunner:
        return CampaignRunner(seed=1, vps_per_as=2, targets_per_as=4)

    def _spill_body(self, path: Path) -> list[str]:
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        return lines[1:]

    def test_spill_matches_reported_digests(self, tmp_path):
        import hashlib

        runner = self._runner()
        context = build_shard_context(runner, 46)
        shard = shard_plan([46], 2, 2)[0]
        spill = tmp_path / shard.spill_name
        record = probe_shard(runner, context, shard, spill)
        body = self._spill_body(spill)
        assert sum(vp.traces for vp in record.vps) == len(body)
        offset = 0
        for vp in record.vps:
            digest = hashlib.sha256()
            for line in body[offset:offset + vp.traces]:
                digest.update((line + "\n").encode("utf-8"))
            assert digest.hexdigest() == vp.sha256
            offset += vp.traces

    def test_bucketing_is_invisible_in_the_bytes(self, tmp_path):
        runner = self._runner()
        context = build_shard_context(runner, 46)
        whole = tmp_path / "whole.jsonl"
        probe_shard(runner, context, shard_plan([46], 2, 2)[0], whole)
        split_bodies: list[str] = []
        for shard in shard_plan([46], 2, 1):
            spill = tmp_path / shard.spill_name
            probe_shard(runner, context, shard, spill)
            split_bodies.extend(self._spill_body(spill))
        assert split_bodies == self._spill_body(whole)

    def test_merged_dataset_streams_in_bucket_order(self, tmp_path):
        runner = self._runner()
        context = build_shard_context(runner, 46)
        paths = []
        for shard in shard_plan([46], 2, 1):
            spill = tmp_path / shard.spill_name
            probe_shard(runner, context, shard, spill)
            paths.append(spill)
        merged = merged_dataset(
            context.net.target_asn, {"as_id": "46"}, paths
        )
        whole = tmp_path / "whole.jsonl"
        probe_shard(runner, context, shard_plan([46], 2, 2)[0], whole)
        reference = merged_dataset(
            context.net.target_asn, {"as_id": "46"}, [whole]
        )
        assert [t.flow_id for t in merged] == [
            t.flow_id for t in reference
        ]
        assert len(merged) == len(reference)
