"""Campaign execution: from portfolio spec to analyzed dataset.

For each AS of interest the runner mirrors the paper's Sec. 5 workflow:

1. build the measurement internetwork for the AS (topogen);
2. build the Anaximander target list;
3. run TNT traceroutes from every selected vantage point (each VP
   probes the same targets, shuffled per VP);
4. fingerprint every responding interface (SNMPv3 first, TTL fallback);
5. annotate ownership bdrmapIT-style and run the AReST pipeline;
6. extract simulator ground truth for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.dataset import TraceDataset
from repro.campaign.vantage_points import VantagePoint, default_vantage_points
from repro.core.detector import ArestDetector
from repro.core.pipeline import ArestPipeline, AsAnalysis
from repro.core.segments import DetectedSegment
from repro.fingerprint.combined import CombinedFingerprinter
from repro.fingerprint.records import Fingerprint, FingerprintMethod
from repro.fingerprint.snmp import SnmpOracle
from repro.netsim.addressing import IPv4Address
from repro.probing.records import Trace, truth_transport_is_sr
from repro.probing.tnt import TntProber
from repro.topogen.alias import AliasResolver, AliasSet
from repro.topogen.anaximander import build_target_list
from repro.topogen.bdrmapit import BdrmapIt
from repro.topogen.internet import MeasurementNetwork, build_measurement_network
from repro.topogen.portfolio import AsSpec, Portfolio, default_portfolio
from repro.util.determinism import DeterministicRng


@dataclass(slots=True)
class GroundTruth:
    """What the simulator knows and the paper's operators confirmed."""

    deploys_sr: bool
    #: interface addresses that actually forwarded SR-labelled packets
    sr_addresses: set[IPv4Address] = field(default_factory=set)
    #: interface addresses that forwarded MPLS (LDP) without SR top label
    ldp_addresses: set[IPv4Address] = field(default_factory=set)


@dataclass(slots=True)
class AsCampaignResult:
    """Everything the campaign produced for one AS."""

    spec: AsSpec
    dataset: TraceDataset
    analysis: AsAnalysis
    fingerprints: dict[IPv4Address, Fingerprint]
    truth: GroundTruth
    #: (trace, detected segments) pairs for validation
    trace_segments: list[tuple[Trace, list[DetectedSegment]]] = field(
        default_factory=list
    )
    #: MIDAR/APPLE-style alias sets over the observed addresses
    alias_sets: list[AliasSet] = field(default_factory=list)

    @property
    def as_id(self) -> int:
        """The Table 5 identifier of the probed AS."""
        return self.spec.as_id

    def router_count(self) -> int:
        """Distinct routers behind the observed interfaces, per the
        alias resolution (the paper reports both views: "103 distinct IP
        interfaces" aggregates to fewer boxes)."""
        return len(self.alias_sets)

    def sr_router_count(self) -> int:
        """Alias sets containing at least one SR-flagged interface."""
        sr = self.analysis.sr_addresses
        return sum(
            1
            for alias_set in self.alias_sets
            if any(a in sr for a in alias_set.addresses)
        )

    def fingerprint_method_counts(self) -> dict[FingerprintMethod, int]:
        """How many interfaces each fingerprint method resolved."""
        counts: dict[FingerprintMethod, int] = {}
        for fp in self.fingerprints.values():
            counts[fp.method] = counts.get(fp.method, 0) + 1
        return counts


class CampaignRunner:
    """Runs the measurement campaign over a portfolio."""

    def __init__(
        self,
        portfolio: Portfolio | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
        seed: int = 0,
        vps_per_as: int = 4,
        targets_per_as: int = 36,
        per_prefix: int = 3,
        reveal_success_rate: float = 0.85,
        snmp_coverage: float = 0.9,
        bdrmap_error_rate: float = 0.0,
        alias_success_rate: float = 0.9,
        max_ttl: int = 40,
    ) -> None:
        if vps_per_as < 1:
            raise ValueError("vps_per_as must be >= 1")
        self.portfolio = portfolio or default_portfolio()
        self.vantage_points = vantage_points or default_vantage_points()
        self.seed = seed
        self.vps_per_as = min(vps_per_as, len(self.vantage_points))
        self.targets_per_as = targets_per_as
        self.per_prefix = per_prefix
        self.reveal_success_rate = reveal_success_rate
        self.snmp_coverage = snmp_coverage
        self.bdrmap_error_rate = bdrmap_error_rate
        self.alias_success_rate = alias_success_rate
        self.max_ttl = max_ttl
        self._pipeline = ArestPipeline(ArestDetector())

    # -- public API ----------------------------------------------------------------

    def run_as(self, as_id: int) -> AsCampaignResult:
        """Run the full campaign for one portfolio AS."""
        spec = self.portfolio.spec(as_id)
        vps = self._select_vps(as_id)
        net = build_measurement_network(
            spec, [vp.vp_id for vp in vps], seed=self.seed
        )
        dataset = self._probe(net, vps)
        fingerprints = self._fingerprint(net, dataset)
        bdrmap = BdrmapIt(
            net.network, error_rate=self.bdrmap_error_rate, seed=self.seed
        )
        sink: list[tuple[Trace, list[DetectedSegment]]] = []
        analysis = self._pipeline.analyze_as(
            spec.asn,
            dataset.traces,
            fingerprints,
            asn_of=bdrmap.asn_of_hop,
            segment_sink=sink,
        )
        truth = self._ground_truth(spec, dataset)
        resolver = AliasResolver(
            net.network,
            success_rate=self.alias_success_rate,
            seed=self.seed,
        )
        alias_sets = resolver.resolve(dataset.distinct_addresses())
        return AsCampaignResult(
            spec=spec,
            dataset=dataset,
            analysis=analysis,
            fingerprints=fingerprints,
            truth=truth,
            trace_segments=sink,
            alias_sets=alias_sets,
        )

    def run_portfolio(
        self,
        as_ids: list[int] | None = None,
        analyzed_only: bool = True,
    ) -> dict[int, AsCampaignResult]:
        """Run every requested AS (default: the 41 analyzed ones)."""
        if as_ids is None:
            specs = (
                self.portfolio.analyzed()
                if analyzed_only
                else list(self.portfolio)
            )
            as_ids = [s.as_id for s in specs]
        return {as_id: self.run_as(as_id) for as_id in as_ids}

    # -- stages ----------------------------------------------------------------------

    def _select_vps(self, as_id: int) -> list[VantagePoint]:
        rng = DeterministicRng("vp-select", self.seed, as_id)
        return rng.sample(list(self.vantage_points), self.vps_per_as)

    def _probe(
        self, net: MeasurementNetwork, vps: list[VantagePoint]
    ) -> TraceDataset:
        targets = build_target_list(
            net,
            per_prefix=self.per_prefix,
            limit=self.targets_per_as,
            seed=self.seed,
        )
        prober = TntProber(
            net.engine,
            max_ttl=self.max_ttl,
            reveal_success_rate=self.reveal_success_rate,
            seed=self.seed,
        )
        dataset = TraceDataset(
            target_asn=net.target_asn,
            metadata={
                "as_id": str(net.spec.as_id),
                "seed": str(self.seed),
                "vps": ",".join(vp.vp_id for vp in vps),
            },
        )
        for vp in vps:
            vp_router = net.vantage_points[vp.vp_id]
            # Each VP probes the same targets, shuffled per VP (Sec. 5).
            rng = DeterministicRng("shuffle", self.seed, vp.vp_id)
            shuffled = list(targets.addresses)
            rng.shuffle(shuffled)
            for destination in shuffled:
                dataset.add(
                    prober.trace(vp_router, destination, vp_name=vp.vp_id)
                )
        return dataset

    def _fingerprint(
        self, net: MeasurementNetwork, dataset: TraceDataset
    ) -> dict[IPv4Address, Fingerprint]:
        snmp = SnmpOracle(
            net.network, coverage=self.snmp_coverage, seed=self.seed
        )
        combined = CombinedFingerprinter(net.engine, snmp)
        fingerprints: dict[IPv4Address, Fingerprint] = {}
        for trace in dataset:
            for hop in trace.hops:
                if hop.address is None:
                    continue
                existing = fingerprints.get(hop.address)
                if existing is not None and existing.identified:
                    continue
                fingerprints[hop.address] = combined.fingerprint(
                    hop.address, hop.reply_ip_ttl, trace.vp_router_id
                )
        return fingerprints

    def _ground_truth(
        self, spec: AsSpec, dataset: TraceDataset
    ) -> GroundTruth:
        truth = GroundTruth(deploys_sr=spec.scenario.deploys_sr)
        for trace in dataset:
            for i, hop in enumerate(trace.hops):
                if (
                    hop.address is None
                    or hop.truth_asn != spec.asn
                    or not hop.truth_planes
                ):
                    continue
                if truth_transport_is_sr(trace, i):
                    truth.sr_addresses.add(hop.address)
                else:
                    truth.ldp_addresses.add(hop.address)
        return truth
