"""The operator survey (Sec. 3, Table 2, Fig. 5).

The paper surveyed operators via the IETF/RIPE/NANOG lists and received
N = 46 responses.  The raw answers are not published, so this module
generates a deterministic synthetic respondent population whose
*marginals* match the reported results:

- every respondent deploys SR-MPLS;
- vendor shares follow Fig. 5a (Cisco and Juniper dominate, then Nokia,
  Arista, Linux, Huawei, ...);
- usage shares follow Fig. 5b (network resilience first, then MPLS
  simplification, traditional services, traffic engineering, best
  effort at ~40%, and a tail of "others");
- 70% keep the vendor's default SRGB, 67% the default SRLB.

Questions are multiple choice, so proportions do not sum to 1 (the
figure's caption makes the same remark).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.util.determinism import unit_hash

#: Table 2 verbatim: question -> answer options.
SURVEY_QUESTIONS: Mapping[str, tuple[str, ...]] = {
    "What vendor equipment do you use for SR-MPLS?": (
        "Cisco",
        "Juniper",
        "Huawei",
        "Nokia",
        "Arista",
        "MikroTik",
        "Dell",
        "FreeBSD",
        "Linux",
        "Alcatel",
        "Brocade",
    ),
    "If your vendor provides a recommended SRGB, do you follow it?": (
        "Yes",
        "No",
    ),
    "If your vendor provides a recommended SRLB, do you follow it?": (
        "Yes",
        "No",
    ),
    "Why do you use SR-MPLS?": (
        "Traffic Engineering",
        "Carry Best Effort Traffic",
        "Simplify MPLS Management",
        "Network Resilience",
        "Carry Traditional Services (e.g., VPNs)",
        "Others",
    ),
}

#: Fig. 5a marginals (share of the N respondents naming each vendor).
VENDOR_SHARES: Mapping[str, float] = {
    "Cisco": 0.24,
    "Juniper": 0.22,
    "Nokia": 0.13,
    "Arista": 0.10,
    "Linux": 0.08,
    "Huawei": 0.07,
    "MikroTik": 0.05,
    "Alcatel": 0.03,
    "Dell": 0.02,
    "FreeBSD": 0.02,
    "Brocade": 0.02,
}

#: Fig. 5b marginals.
USAGE_SHARES: Mapping[str, float] = {
    "Network Resilience": 0.60,
    "Simplify MPLS Management": 0.55,
    "Carry Traditional Services (e.g., VPNs)": 0.50,
    "Traffic Engineering": 0.45,
    "Carry Best Effort Traffic": 0.40,
    "Others": 0.08,
}

#: Sec. 3: default-range retention.
SRGB_DEFAULT_SHARE = 0.70
SRLB_DEFAULT_SHARE = 0.67

#: number of responses the paper received
NUM_RESPONDENTS = 46


@dataclass(frozen=True, slots=True)
class SurveyAnswers:
    """One operator's response."""

    respondent: int
    vendors: frozenset[str]
    usages: frozenset[str]
    follows_srgb_default: bool
    follows_srlb_default: bool


@dataclass(slots=True)
class SurveySummary:
    """Aggregated proportions (the Fig. 5 bars)."""

    num_respondents: int
    vendor_shares: dict[str, float] = field(default_factory=dict)
    usage_shares: dict[str, float] = field(default_factory=dict)
    srgb_default_share: float = 0.0
    srlb_default_share: float = 0.0

    def vendors_ranked(self) -> list[tuple[str, float]]:
        """Vendor shares, highest first (Fig. 5a order)."""
        return sorted(
            self.vendor_shares.items(), key=lambda kv: kv[1], reverse=True
        )

    def usages_ranked(self) -> list[tuple[str, float]]:
        """Usage shares, highest first (Fig. 5b order)."""
        return sorted(
            self.usage_shares.items(), key=lambda kv: kv[1], reverse=True
        )


def _biased_draw(key: tuple, index: int, share: float, n: int) -> bool:
    """Quota-style draw: respondent ``index`` answers yes when its
    stratified position falls under the target share.  This pins the
    aggregate to ``round(share * n)`` exactly while keeping per-item
    assignments pseudo-random."""
    quota = round(share * n)
    rank = sorted(range(n), key=lambda i: unit_hash(*key, i)).index(index)
    return rank < quota


def _weighted_pick(shares: Mapping[str, float], key: tuple) -> str:
    """Share-weighted deterministic pick (fallback so that every
    respondent names at least one option, as in the real survey)."""
    total = sum(shares.values())
    draw = unit_hash(*key) * total
    acc = 0.0
    for option, share in shares.items():
        acc += share
        if draw < acc:
            return option
    return next(iter(shares))


def generate_survey(
    n: int = NUM_RESPONDENTS, seed: int = 0
) -> list[SurveyAnswers]:
    """Generate a deterministic respondent population matching Sec. 3."""
    if n < 1:
        raise ValueError("need at least one respondent")
    answers = []
    for i in range(n):
        vendors = frozenset(
            vendor
            for vendor, share in VENDOR_SHARES.items()
            if _biased_draw(("sv", seed, vendor), i, share, n)
        ) or frozenset({_weighted_pick(VENDOR_SHARES, ("svf", seed, i))})
        usages = frozenset(
            usage
            for usage, share in USAGE_SHARES.items()
            if _biased_draw(("su", seed, usage), i, share, n)
        ) or frozenset({_weighted_pick(USAGE_SHARES, ("suf", seed, i))})
        answers.append(
            SurveyAnswers(
                respondent=i,
                vendors=vendors,
                usages=usages,
                follows_srgb_default=_biased_draw(
                    ("srgb", seed), i, SRGB_DEFAULT_SHARE, n
                ),
                follows_srlb_default=_biased_draw(
                    ("srlb", seed), i, SRLB_DEFAULT_SHARE, n
                ),
            )
        )
    return answers


def summarize_survey(answers: Sequence[SurveyAnswers]) -> SurveySummary:
    """Aggregate responses into Fig. 5-style proportions."""
    if not answers:
        raise ValueError("empty survey")
    n = len(answers)
    vendor_counts: Counter = Counter()
    usage_counts: Counter = Counter()
    srgb = srlb = 0
    for answer in answers:
        vendor_counts.update(answer.vendors)
        usage_counts.update(answer.usages)
        srgb += answer.follows_srgb_default
        srlb += answer.follows_srlb_default
    return SurveySummary(
        num_respondents=n,
        vendor_shares={v: c / n for v, c in vendor_counts.items()},
        usage_shares={u: c / n for u, c in usage_counts.items()},
        srgb_default_share=srgb / n,
        srlb_default_share=srlb / n,
    )
