"""Observability: telemetry recording, run manifests, reporting exports.

The campaign's execution story (PRs 1-3) emits rich internal state --
stage transitions, retries, quarantines, sanitizer anomalies -- and this
package makes it observable without touching the determinism contract:
all wall-clock data lives in telemetry artifacts only, and the default
:data:`~repro.obs.telemetry.NULL_TELEMETRY` path is zero-overhead.

Layout:

- :mod:`repro.obs.telemetry` -- in-process recorders (spans, counters);
- :mod:`repro.obs.sink` -- crash-safe JSONL event stream;
- :mod:`repro.obs.manifest` -- run provenance (``manifest.json``);
- :mod:`repro.obs.session` -- campaign-scoped orchestration;
- :mod:`repro.obs.summary` -- aggregation + text/markdown rendering;
- :mod:`repro.obs.prometheus` -- scrapeable textfile export;
- :mod:`repro.obs.logsetup` -- CLI logging configuration.
"""

from repro.obs.manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    begin_manifest,
    load_manifest,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.session import (
    PORTFOLIO_SCOPE,
    PROMETHEUS_FILENAME,
    TelemetrySession,
)
from repro.obs.sink import EVENTS_FILENAME, TelemetryWriter, load_events
from repro.obs.summary import (
    TelemetrySummary,
    performance_section,
    render_telemetry_report,
    summarize_telemetry,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    merge_counters,
)

__all__ = [
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PORTFOLIO_SCOPE",
    "PROMETHEUS_FILENAME",
    "RunManifest",
    "Telemetry",
    "TelemetrySession",
    "TelemetrySummary",
    "TelemetryWriter",
    "begin_manifest",
    "load_events",
    "load_manifest",
    "merge_counters",
    "performance_section",
    "render_prometheus",
    "render_telemetry_report",
    "summarize_telemetry",
]
