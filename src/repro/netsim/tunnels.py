"""Tunnel programming: what an ingress LER pushes, and why.

In the simulated Internet every AS runs a BGP-free core: when a packet
enters an AS at a border/edge router and must leave it (or reach a PE
deeper inside), the entry router pushes a label program steering the
packet to the AS exit point.  Depending on the AS's deployment the
program is:

- an **LDP tunnel**: one label, the downstream neighbour's binding for
  the egress FEC; every subsequent LSR swaps to *its* downstream
  neighbour's binding -- labels change hop by hop;
- an **SR tunnel**: the egress node SID, mapped into the downstream
  neighbour's SRGB -- the label *persists* across hops when SRGBs agree
  (the CVR/CO signal);
- an **SR traffic-engineered tunnel**: node SID of a waypoint, an
  adjacency SID, then the egress node SID (Fig. 3 of the paper);
- optionally **service SIDs** below the transport labels (Sec. 6.2:
  "unshrinking stacks" observed at ESnet), popped only by the egress.

Programs are deterministic: every stochastic choice (waypoint insertion,
service labels) hashes the (seed, ingress, egress) tuple.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.netsim.addressing import IPv4Prefix
from repro.netsim.igp import NoRouteError, ShortestPaths
from repro.netsim.ldp import Fec, LdpState
from repro.netsim.mpls import ReservedLabel
from repro.netsim.policies import SrPolicyRegistry
from repro.netsim.rsvp import RsvpLsp, RsvpTeState
from repro.netsim.sr import SegmentRoutingDomain, SrConfigError
from repro.netsim.topology import Network
from repro.netsim.vendors import VENDOR_PROFILES, LabelRange
from repro.util.determinism import unit_hash as _hash_unit


class ServiceSidRegistry:
    """Allocates per-egress service SIDs (VPN / service-programming labels).

    A service SID is meaningful only to the router that allocated it; it
    rides at the bottom of the stack across the whole tunnel and is popped
    by the egress, producing the deep, unshrinking stacks the paper
    associates with advanced SR usage (Sec. 6.2).

    SR-enabled egresses allocate from their *configured* SRLB (which may
    be operator-customized), classic egresses from the dynamic pool.
    """

    def __init__(
        self,
        network: Network,
        sr_domains: "dict[int, SegmentRoutingDomain] | None" = None,
    ) -> None:
        self._network = network
        self._sr_domains = sr_domains or {}
        self._labels: dict[int, list[int]] = {}
        self._owned: dict[tuple[int, int], bool] = {}

    def allocate(self, router_id: int, slot: int = 0) -> int:
        """The ``slot``-th service label of ``router_id`` (lazily created)."""
        labels = self._labels.setdefault(router_id, [])
        while len(labels) <= slot:
            label = self._next_label(router_id, len(labels))
            labels.append(label)
            self._owned[(router_id, label)] = True
        return labels[slot]

    def _configured_srlb(self, router_id: int) -> LabelRange | None:
        router = self._network.router(router_id)
        if not router.sr_enabled:
            return None
        domain = self._sr_domains.get(router.asn)
        if domain is not None and domain.is_enrolled(router_id):
            return domain.config(router_id).srlb
        profile = VENDOR_PROFILES.get(router.vendor)
        return profile.default_srlb if profile else None

    def _next_label(self, router_id: int, index: int) -> int:
        router = self._network.router(router_id)
        profile = VENDOR_PROFILES.get(router.vendor)
        srlb = self._configured_srlb(router_id)
        pool: LabelRange
        if srlb is not None:
            # SR service SIDs come from the (possibly customized) SRLB...
            pool = srlb
        elif profile is not None:
            # ...but plain VPN labels are ordinary dynamic labels; a
            # non-SR box never allocates from 15,000-15,999, which is
            # what keeps the LVR flag's false positives rare (Sec. 4.4)
            pool = profile.dynamic_pool
        else:
            pool = LabelRange(700_000, 1_048_575)
        offset = (
            int.from_bytes(
                hashlib.sha256(f"svc:{router_id}".encode()).digest()[:4], "big"
            )
            % max(1, pool.size() - 64)
        )
        return pool.low + offset + index

    def is_service_label(self, router_id: int, label: int) -> bool:
        """Did ``router_id`` allocate this service label?"""
        return self._owned.get((router_id, label), False)


@dataclass(frozen=True, slots=True)
class TunnelProgram:
    """A resolved label program for one (ingress, final destination) pair.

    ``labels`` is top-first; empty programs mean "no push" (e.g. a one-hop
    LSP whose downstream advertised implicit-null).
    """

    labels: tuple[int, ...]
    egress: int
    #: ground truth for evaluation: which control plane built each label,
    #: top-first, values in {"sr", "ldp", "service"}
    truth_planes: tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of labels in the program."""
        return len(self.labels)


@dataclass(slots=True)
class TunnelPolicy:
    """Per-AS knobs controlling what tunnels look like."""

    asn: int
    #: probability an SR tunnel gets a TE waypoint (node SID + adj SID)
    te_waypoint_share: float = 0.0
    #: probability a tunnel carries one bottom service SID
    service_sid_share: float = 0.0
    #: probability a tunnel carries a second service SID (given the first)
    second_service_share: float = 0.25
    #: probability an SR tunnel is steered through an SR policy at a
    #: mid-path head-end (binding SID splice, RFC 9256)
    sr_policy_share: float = 0.0
    #: probability a tunnel carries an entropy-label pair (RFC 6790):
    #: ELI + EL below the transport label, for load balancing.  Entropy
    #: labels deepen stacks *without* Segment Routing -- the classic
    #: LSO confounder.
    entropy_share: float = 0.0
    #: probability a *classic* (non-SR) tunnel is carried by an RSVP-TE
    #: signaled LSP instead of LDP (explicitly routed, per-hop labels)
    rsvp_te_share: float = 0.0
    seed: int = 0


class TunnelController:
    """Builds (and caches) ingress label programs.

    The controller inspects the converged control planes: if the ingress
    is SR-capable and the egress has a node (or mapping-server) SID, an SR
    program wins; otherwise LDP.  Interworking needs no special-casing
    here -- it emerges inside the forwarding plane when the next hop of a
    labelled packet speaks a different protocol than the label.
    """

    def __init__(
        self,
        network: Network,
        igp: ShortestPaths,
        ldp: LdpState,
        sr_domains: dict[int, SegmentRoutingDomain],
        services: ServiceSidRegistry | None = None,
    ) -> None:
        self._network = network
        self._igp = igp
        self._ldp = ldp
        self._sr_domains = dict(sr_domains)
        self._services = services or ServiceSidRegistry(
            network, self._sr_domains
        )
        self._policies: dict[int, TunnelPolicy] = {}
        self._policy_registries: dict[int, SrPolicyRegistry] = {}
        self._rsvp = RsvpTeState(network)
        self._rsvp_lsps: dict[tuple[int, int], RsvpLsp] = {}
        self._cache: dict[tuple[int, int], TunnelProgram | None] = {}
        self._egress_cache: dict[tuple[int, int], int] = {}

    @property
    def services(self) -> ServiceSidRegistry:
        """The service-SID registry."""
        return self._services

    @property
    def ldp(self) -> LdpState:
        """The LDP control plane."""
        return self._ldp

    @property
    def rsvp(self) -> RsvpTeState:
        """The RSVP-TE state."""
        return self._rsvp

    def sr_domain(self, asn: int) -> SegmentRoutingDomain | None:
        """The SR domain of one AS, or None."""
        return self._sr_domains.get(asn)

    def policy_registry(self, asn: int) -> SrPolicyRegistry | None:
        """The SR-policy registry of one AS (created on first use)."""
        registry = self._policy_registries.get(asn)
        if registry is None:
            domain = self._sr_domains.get(asn)
            if domain is None:
                return None
            registry = SrPolicyRegistry(
                self._network, domain, seed=self.policy(asn).seed
            )
            self._policy_registries[asn] = registry
        return registry

    def set_policy(self, policy: TunnelPolicy) -> None:
        """Register one AS's tunnel policy (invalidates caches)."""
        self._policies[policy.asn] = policy
        self._cache.clear()

    def invalidate(self) -> None:
        """Drop derived program state (call after topology changes).

        Clears the program cache and the IGP-dependent egress cache;
        signaled RSVP-TE LSPs are kept (an IGP event does not tear down
        established LSPs -- use :meth:`churn_rsvp` for that).
        """
        self._cache.clear()
        self._egress_cache.clear()

    def churn_rsvp(self) -> int:
        """Tear down every signaled RSVP-TE LSP; returns the count.

        Subsequent demand re-signals fresh LSPs with new labels over
        whatever paths the (possibly changed) IGP then prefers -- the
        LSP setup/teardown churn a live network shows during
        maintenance.  Deterministic: re-signaling order follows demand
        order, which is itself deterministic per seed.
        """
        torn_down = len(self._rsvp_lsps)
        self._rsvp_lsps.clear()
        self.invalidate()
        return torn_down

    def converge(self) -> None:
        """Eagerly allocate every demand-driven label in canonical order.

        Label state in this simulator is allocated on first use -- LDP
        bindings, RSVP-TE LSPs, SR-TE adjacency SIDs, binding SIDs --
        from per-router cursors.  Left lazy, the *values* depend on the
        order the data plane first asks for them: whichever vantage
        point traces through a router first fixes the labels every
        later probe sees.  That is harmless for a single sequential
        campaign but breaks the sharded executor's per-VP purity
        contract, where a VP's traces must be byte-identical whichever
        bucket, worker, or attempt they run in.

        Convergence walks routers in sorted id order and builds every
        (LSR, FEC) binding and every (ingress, final) tunnel program up
        front, so all cursors advance in an order no probe schedule can
        influence and probing only ever reads.  This is also the
        truthful model: a real control plane converges before traffic
        flows.  Topology churn invalidates programs back to lazy
        demand, so :class:`~repro.netsim.dynamics.NetworkDynamics`
        re-converges after every mutation -- post-churn label values
        must likewise not depend on which walk rebuilds them first.
        (Sharded campaigns still refuse churn plans: the churn *clock*
        ticks per probe and is inherently schedule-dependent.)
        """
        routers = sorted(
            router.router_id for router in self._network.routers()
        )
        # Per-hop LDP bindings: forwarding asks binding(nh, fec) for
        # every LSR along an LSP, not just the program's first hop, so
        # the full (LSR x loopback-FEC) matrix must exist.
        for egress in routers:
            if self._network.router(egress).loopback is None:
                continue
            fec = self.egress_fec(egress)
            for lsr in routers:
                if lsr != egress and self._network.router(lsr).ldp_enabled:
                    self._ldp.binding(lsr, fec)
        # Tunnel programs: RSVP LSPs, adjacency SIDs, binding SIDs and
        # service SIDs are all allocated inside program construction.
        for ingress in routers:
            for final in routers:
                if final != ingress:
                    self.program_for(ingress, final)

    def policy(self, asn: int) -> TunnelPolicy:
        """The AS's tunnel policy (a default is created lazily)."""
        existing = self._policies.get(asn)
        if existing is None:
            existing = TunnelPolicy(asn=asn)
            self._policies[asn] = existing
        return existing

    # -- AS egress computation -------------------------------------------------

    def as_egress(self, ingress: int, final: int) -> int:
        """Last router of ``ingress``'s AS on the IGP path to ``final``."""
        key = (ingress, final)
        cached = self._egress_cache.get(key)
        if cached is not None:
            return cached
        asn = self._network.router(ingress).asn
        egress = ingress
        for hop in self._igp.path(ingress, final):
            if self._network.router(hop).asn == asn:
                egress = hop
            else:
                break
        self._egress_cache[key] = egress
        return egress

    # -- FEC helpers ------------------------------------------------------------

    def egress_fec(self, egress: int) -> Fec:
        """The loopback /32 FEC of an egress router (BGP-free core)."""
        loopback = self._network.router(egress).loopback
        assert loopback is not None
        prefix = IPv4Prefix(loopback, 32)
        return self._ldp.register_fec(prefix, egress)

    # -- program construction -----------------------------------------------------

    def program_for(self, ingress: int, final: int) -> TunnelProgram | None:
        """Label program pushed by ``ingress`` for packets to ``final``.

        Returns None when the ingress is not an LER, the packet stays
        local, or no usable bindings exist.
        """
        key = (ingress, final)
        if key in self._cache:
            return self._cache[key]
        program = self._build(ingress, final)
        self._cache[key] = program
        return program

    def _build(self, ingress: int, final: int) -> TunnelProgram | None:
        router = self._network.router(ingress)
        if not (router.sr_enabled or router.ldp_enabled):
            return None
        try:
            egress = self.as_egress(ingress, final)
        except NoRouteError:
            return None
        if egress == ingress:
            return None
        labels: list[int] = []
        planes: list[str] = []
        policy = self.policy(router.asn)
        built = False
        if router.sr_enabled:
            built = self._build_sr(ingress, egress, policy, labels, planes)
        if not built and router.ldp_enabled:
            if (
                _hash_unit("rsvp", policy.seed, ingress, egress)
                < policy.rsvp_te_share
            ):
                built = self._build_rsvp(ingress, egress, labels, planes)
            if not built:
                built = self._build_ldp(ingress, egress, labels, planes)
        if not built:
            return None
        self._maybe_add_services(ingress, egress, policy, labels, planes)
        if not labels:
            return None
        return TunnelProgram(
            labels=tuple(labels), egress=egress, truth_planes=tuple(planes)
        )

    def _build_sr(
        self,
        ingress: int,
        egress: int,
        policy: TunnelPolicy,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        domain = self._sr_domains.get(self._network.router(ingress).asn)
        if domain is None:
            return False
        index = domain.node_index(egress)
        if index is None:
            return False
        if (
            _hash_unit("pol", policy.seed, ingress, egress)
            < policy.sr_policy_share
        ):
            if self._build_sr_policy(ingress, egress, domain, labels, planes):
                return True
        if _hash_unit("te", policy.seed, ingress, egress) < policy.te_waypoint_share:
            if self._build_sr_te(ingress, egress, domain, labels, planes):
                return True
        return self._build_sr_plain(ingress, egress, domain, labels, planes)

    def _build_sr_plain(
        self,
        ingress: int,
        egress: int,
        domain: SegmentRoutingDomain,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        index = domain.node_index(egress)
        assert index is not None
        nh = self._igp.next_hop(ingress, egress)
        if domain.is_enrolled(nh):
            if nh == egress:
                # PHP: downstream is the segment endpoint; nothing on the
                # wire, the packet travels unlabelled for this one hop.
                return False
            try:
                labels.append(domain.label_on_wire(nh, index))
            except SrConfigError:
                return False
            planes.append("sr")
            return True
        # Next hop is LDP-only: the ingress is an SR/LDP border itself;
        # start the LSP with the neighbour's LDP binding (SR->LDP at hop 0).
        return self._build_ldp(ingress, egress, labels, planes)

    def _build_sr_te(
        self,
        ingress: int,
        egress: int,
        domain: SegmentRoutingDomain,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        """[node SID of waypoint; adjacency SID; node SID of egress]."""
        waypoint = self._pick_waypoint(ingress, egress, domain)
        if waypoint is None:
            return False
        egress_index = domain.node_index(egress)
        waypoint_index = domain.node_index(waypoint)
        assert egress_index is not None and waypoint_index is not None
        try:
            nh1 = self._igp.next_hop(ingress, waypoint)
            if not domain.is_enrolled(nh1):
                return False
            via = self._igp.next_hop(waypoint, egress)
            if not domain.is_enrolled(via):
                return False
            adj = domain.adjacency_sid(waypoint, via)
            top = domain.label_on_wire(nh1, waypoint_index)
            bottom = domain.label_on_wire(via, egress_index)
        except (NoRouteError, SrConfigError):
            return False
        labels.extend([top, adj, bottom])
        planes.extend(["sr", "sr", "sr"])
        return True

    def _pick_waypoint(
        self, ingress: int, egress: int, domain: SegmentRoutingDomain
    ) -> int | None:
        candidates = [
            rid
            for rid in domain.enrolled_routers()
            if rid not in (ingress, egress)
            and self._network.neighbors(rid)
        ]
        if not candidates:
            return None
        pick = int(
            _hash_unit("wp", ingress, egress) * len(candidates)
        ) % len(candidates)
        waypoint = candidates[pick]
        try:
            self._igp.distance(ingress, waypoint)
            self._igp.distance(waypoint, egress)
        except NoRouteError:
            return None
        return waypoint

    def _build_sr_policy(
        self,
        ingress: int,
        egress: int,
        domain: SegmentRoutingDomain,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        """[node SID of the head-end; binding SID of a policy there].

        The head-end splices in the policy's (deeper) segment list when
        the BSID becomes active -- the mid-path stack growth of Sec. 6.2.
        """
        registry = self.policy_registry(self._network.router(ingress).asn)
        if registry is None:
            return False
        head_end = self._pick_policy_head_end(ingress, egress, domain)
        if head_end is None:
            return False
        via = self._pick_waypoint(head_end, egress, domain)
        if via is None or via == head_end:
            via = egress
        try:
            policy = registry.install(head_end, via, egress)
            head_index = domain.node_index(head_end)
            assert head_index is not None
            nh = self._igp.next_hop(ingress, head_end)
            if not domain.is_enrolled(nh):
                return False
            top = domain.label_on_wire(nh, head_index)
        except (NoRouteError, SrConfigError):
            return False
        labels.extend([top, policy.binding_sid])
        planes.extend(["sr", "sr"])
        return True

    def _pick_policy_head_end(
        self, ingress: int, egress: int, domain: SegmentRoutingDomain
    ) -> int | None:
        """A mid-path SR router, so the splice is visible in traces."""
        try:
            path = self._igp.path(ingress, egress)
        except NoRouteError:
            return None
        interior = [
            rid
            for rid in path[1:-1]
            if domain.is_enrolled(rid)
        ]
        if not interior:
            return None
        return interior[len(interior) // 2]

    def _build_ldp(
        self,
        ingress: int,
        egress: int,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        fec = self.egress_fec(egress)
        try:
            nh = self._igp.next_hop(ingress, egress)
        except NoRouteError:
            return False
        nh_router = self._network.router(nh)
        if nh_router.ldp_enabled:
            binding = self._ldp.binding(nh, fec)
            if binding == int(ReservedLabel.IMPLICIT_NULL):
                return False  # one-hop LSP, PHP leaves nothing on the wire
            labels.append(binding)
            planes.append("ldp")
            return True
        # LDP->SR at hop 0: next hop is SR-only; use its SRGB directly.
        domain = self._sr_domains.get(self._network.router(ingress).asn)
        if domain is None or not domain.is_enrolled(nh):
            return False
        index = domain.node_index(egress)
        if index is None or nh == egress:
            return False
        try:
            labels.append(domain.label_on_wire(nh, index))
        except SrConfigError:
            return False
        planes.append("sr")
        return True

    def _build_rsvp(
        self,
        ingress: int,
        egress: int,
        labels: list[int],
        planes: list[str],
    ) -> bool:
        """Signal (or reuse) an RSVP-TE LSP and push its head label."""
        lsp = self._rsvp_lsps.get((ingress, egress))
        if lsp is None:
            try:
                route = self._explicit_route(ingress, egress)
            except NoRouteError:
                return False
            if len(route) < 2:
                return False
            lsp = self._rsvp.signal_lsp(route)
            self._rsvp_lsps[(ingress, egress)] = lsp
        head_label = self._rsvp.head_label(lsp)
        if head_label is None:
            return False  # 2-hop LSP: PHP leaves nothing on the wire
        labels.append(head_label)
        planes.append("rsvp")
        return True

    def _explicit_route(self, ingress: int, egress: int) -> list[int]:
        """The TE path: the IGP route, detoured through an off-path
        neighbour where one exists (that is the point of RSVP-TE)."""
        route = self._igp.path(ingress, egress)
        asn = self._network.router(ingress).asn
        for i in range(1, len(route) - 1):
            for candidate in self._network.neighbors(route[i - 1]):
                if (
                    candidate not in route
                    and self._network.router(candidate).asn == asn
                    and self._network.link_between(candidate, route[i + 1])
                    is not None
                    and self._network.router(candidate).ldp_enabled
                ):
                    return route[:i] + [candidate] + route[i + 1 :]
        return route

    def _maybe_add_services(
        self,
        ingress: int,
        egress: int,
        policy: TunnelPolicy,
        labels: list[int],
        planes: list[str],
    ) -> None:
        if not labels:
            return
        if (
            _hash_unit("svc", policy.seed, ingress, egress)
            < policy.service_sid_share
        ):
            # An SR-enabled egress hands out *SR service SIDs* (SRLB);
            # a classic egress hands out plain VPN labels.  The truth
            # plane distinguishes them: the ESnet operator confirmed
            # service-SID stacks as genuine SR (Sec. 6.1).
            service_plane = (
                "service-sr"
                if self._network.router(egress).sr_enabled
                else "service"
            )
            labels.append(self._services.allocate(egress, slot=0))
            planes.append(service_plane)
            if (
                _hash_unit("svc2", policy.seed, ingress, egress)
                < policy.second_service_share
            ):
                labels.append(self._services.allocate(egress, slot=1))
                planes.append(service_plane)
        if (
            _hash_unit("eli", policy.seed, ingress, egress)
            < policy.entropy_share
        ):
            # ELI + EL at the bottom: the EL value is a per-tunnel flow
            # hash from the general label space (RFC 6790 Sec. 4.2)
            entropy_value = 100_000 + int(
                _hash_unit("el", policy.seed, ingress, egress) * 900_000
            )
            labels.append(int(ReservedLabel.ENTROPY_LABEL_INDICATOR))
            labels.append(entropy_value)
            planes.extend(["entropy", "entropy"])
