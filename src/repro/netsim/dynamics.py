"""Network dynamics: seeded churn on a virtual probe clock.

Every campaign before this module probed a frozen snapshot, but the
paper's 7.7M-trace campaign ran over weeks of a live Internet where
links flap, LSPs churn, and SR migrations move RFC 8661 interworking
boundaries mid-measurement.  :class:`NetworkDynamics` replays that
regime inside the simulator: an engine-attached scheduler advances a
virtual clock one tick per probe and, at deterministic window
boundaries, mutates the network under the prober's feet.

Event taxonomy
--------------

- **Link failure / repair** -- an intra-target-AS link goes down for a
  churn window and comes back (unless re-drawn).  Failures are only
  taken when they do not partition the operational graph, mirroring the
  single-failure survivability real cores are engineered for.  Each
  state change opens a *reconvergence phase*: for the next
  ``reconvergence_probes`` ticks the routers adjacent to the changed
  link misbehave the way a converging IGP does -- a failure leaves them
  transiently **blackholing** (no FIB entry yet: probes die silently),
  a repair leaves them transiently **micro-looping** (they still point
  the old way, so packets bounce between the pair until TTL death
  inside the loop).
- **LSP churn** -- every signaled RSVP-TE LSP is torn down and fresh
  LSPs are re-signaled at the next convergence (new labels, possibly
  new ERO paths): the setup/teardown churn of live maintenance windows.
- **SR migration wave** -- one mapping-served LDP router is promoted to
  native SR enrolment, keeping its prefix-SID index: the LDP island
  shrinks and the RFC 8661 mapping-server boundary moves between
  probes.

Determinism and the epoch contract
----------------------------------

All draws are :func:`~repro.util.determinism.unit_hash` over
``(seed, event kind, scope, window)`` -- pure functions of the plan and
the probe clock, never of wall time or interleaving, so a campaign is
byte-identical for any ``--jobs`` value, serial or resumed.  Every
mutation invalidates the tunnel controller and the forwarding engine's
caches, which advances the engine's monotonic topology **epoch**;
recorded walks are stamped with the epoch they were taken under and the
engine refuses to synthesize from a stale recording.

:meth:`NetworkDynamics.quiesce` restores the network to its nominal
(pre-churn) state at the end of the probe stage: links repaired,
promotions reverted.  That confines churn to trace collection and is
what keeps fresh and resumed runs byte-identical -- checkpoint
rehydration rebuilds the pristine network, so analysis must see the
pristine network in fresh runs too.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.netsim.topology import Link, Network
from repro.util.determinism import unit_hash

__all__ = ["ChurnPlan", "ChurnCounters", "NetworkDynamics"]


@dataclass(frozen=True, slots=True)
class ChurnPlan:
    """Declarative, seeded churn configuration (default: no churn).

    Rates are per churn window: each window every candidate link draws
    its failure fate at ``link_failure_rate``, and the AS draws one
    LSP-churn and one SR-migration fate at their respective rates.
    """

    #: per-window probability a candidate intra-AS link is down
    link_failure_rate: float = 0.0
    #: per-window probability of an RSVP-TE teardown/re-signal event
    lsp_churn_rate: float = 0.0
    #: per-window probability one LDP router is promoted to native SR
    sr_migration_rate: float = 0.0
    #: probes per churn window (the virtual-clock quantum)
    churn_window: int = 256
    #: reconvergence phase length, in probes, after each link event
    reconvergence_probes: int = 24
    seed: int = 0

    _RATES = ("link_failure_rate", "lsp_churn_rate", "sr_migration_rate")

    def __post_init__(self) -> None:
        for name in self._RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.churn_window < 1:
            raise ValueError(
                f"churn_window must be >= 1, got {self.churn_window}"
            )
        if self.reconvergence_probes < 0:
            raise ValueError(
                "reconvergence_probes must be >= 0, got "
                f"{self.reconvergence_probes}"
            )

    @classmethod
    def none(cls) -> "ChurnPlan":
        """The default no-churn plan (campaigns attach nothing)."""
        return cls()

    @classmethod
    def intensity(cls, rate: float, seed: int = 0) -> "ChurnPlan":
        """The headline single-knob mix used by ``--churn`` sweeps.

        Link flaps dominate (full rate), LSP churn runs at half and
        migration waves at a quarter -- roughly the relative frequencies
        of the three event classes on a production backbone.
        """
        return cls(
            link_failure_rate=rate,
            lsp_churn_rate=rate / 2,
            sr_migration_rate=rate / 4,
            seed=seed,
        )

    @property
    def active(self) -> bool:
        """True when any event class can fire."""
        return any(getattr(self, name) > 0.0 for name in self._RATES)

    def as_dict(self) -> dict:
        """JSON-friendly view (config signatures, manifests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class ChurnCounters:
    """Tallies of applied churn events (observational; telemetry gauges)."""

    links_failed: int = 0
    links_repaired: int = 0
    lsps_torn_down: int = 0
    sr_promotions: int = 0
    #: probes that ticked the clock inside a reconvergence phase
    transient_probes: int = 0

    def total_events(self) -> int:
        """Topology mutations applied (transient probes excluded)."""
        return (
            self.links_failed
            + self.links_repaired
            + self.lsps_torn_down
            + self.sr_promotions
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly view."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class NetworkDynamics:
    """Probe-clock churn scheduler for one measurement network.

    Attach via ``engine.dynamics = scheduler``; the engine calls
    :meth:`on_probe` once per probe (exactly like the fault injector's
    clock), and the scheduler applies the window's drawn events before
    the probe is forwarded.  ``*scope`` salts every draw -- the
    campaign passes ``("as", as_id)`` so each AS gets an independent
    but reproducible schedule from one run seed.
    """

    def __init__(
        self,
        plan: ChurnPlan,
        network: Network,
        engine,
        controller,
        sr_domain,
        asn: int,
        *scope: object,
    ) -> None:
        self._plan = plan
        self._network = network
        self._engine = engine
        self._controller = controller
        self._sr_domain = sr_domain
        self._scope = scope
        #: stable candidate list: intra-target-AS links in construction
        #: order (the order is part of the deterministic contract)
        self._candidates: list[Link] = [
            link
            for link in network.links()
            if network.router(link.a).asn == asn
            and network.router(link.b).asn == asn
        ]
        self.counters = ChurnCounters()
        self._clock = 0
        self._window = -1
        self._transient_until = 0
        self._blackholed: frozenset[int] = frozenset()
        self._looping: frozenset[int] = frozenset()
        #: links this scheduler has taken down (candidate-list indices)
        self._down: set[int] = set()
        #: router ids promoted by migration waves, in order
        self._promoted: list[int] = []
        # Canonical baseline: exhaust every demand-driven label cursor
        # before the first probe, so pre-churn allocation state is a
        # function of the network alone (a no-op on already-converged
        # networks).  Without this, two probers with different walk
        # strategies reach the first mutation with different residual
        # cursors and diverge when the post-churn state is rebuilt.
        self._controller.converge()

    # -- engine-facing hooks ---------------------------------------------------

    def on_probe(self) -> None:
        """Advance the virtual clock by one probe; apply due events."""
        self._clock += 1
        window = self._clock // self._plan.churn_window
        if window != self._window:
            self._window = window
            self._apply_window(window)
        if self.in_transient():
            self.counters.transient_probes += 1

    def in_transient(self) -> bool:
        """True while a reconvergence phase is open."""
        return self._clock < self._transient_until

    def blackholed(self, node: int) -> bool:
        """True when a converging router drops packets on the floor."""
        return node in self._blackholed and self.in_transient()

    def microloops(self, node: int) -> bool:
        """True when a converging router still points the old way."""
        return node in self._looping and self.in_transient()

    # -- event application -----------------------------------------------------

    def _apply_window(self, window: int) -> None:
        plan = self._plan
        seed = plan.seed
        blackholed: set[int] = set()
        looping: set[int] = set()
        mutated = False

        if plan.link_failure_rate > 0.0:
            for idx, link in enumerate(self._candidates):
                fails = (
                    unit_hash(seed, "link-fail", *self._scope, idx, window)
                    < plan.link_failure_rate
                )
                if fails and idx not in self._down:
                    if not self._safe_to_fail(link):
                        continue
                    self._network.set_link_down(link.a, link.b)
                    self._down.add(idx)
                    blackholed.update(link.endpoints())
                    self.counters.links_failed += 1
                    mutated = True
                elif not fails and idx in self._down:
                    self._network.set_link_up(link.a, link.b)
                    self._down.discard(idx)
                    looping.update(link.endpoints())
                    self.counters.links_repaired += 1
                    mutated = True

        if (
            plan.lsp_churn_rate > 0.0
            and unit_hash(seed, "lsp-churn", *self._scope, window)
            < plan.lsp_churn_rate
        ):
            self.counters.lsps_torn_down += self._controller.churn_rsvp()
            mutated = True

        if (
            plan.sr_migration_rate > 0.0
            and self._sr_domain is not None
            and unit_hash(seed, "sr-migrate", *self._scope, window)
            < plan.sr_migration_rate
        ):
            candidate = self._next_migration_candidate()
            if candidate is not None:
                self._sr_domain.promote_mapping_entry(candidate)
                self._promoted.append(candidate)
                self.counters.sr_promotions += 1
                mutated = True

        if mutated:
            self._invalidate()
            if blackholed or looping:
                self._transient_until = (
                    self._clock + plan.reconvergence_probes
                )
                self._blackholed = frozenset(blackholed)
                self._looping = frozenset(looping)

    def _next_migration_candidate(self) -> int | None:
        """Lowest-id mapping-served router still awaiting migration."""
        covered = [
            rid
            for rid in sorted(
                r.router_id for r in self._network.routers()
            )
            if self._sr_domain.has_mapping_entry(rid)
        ]
        return covered[0] if covered else None

    def _safe_to_fail(self, link: Link) -> bool:
        """True when failing ``link`` keeps the operational graph whole.

        Removing one edge from a connected graph disconnects it iff the
        edge is a bridge, i.e. iff its endpoints lose mutual
        reachability -- one BFS answers that.
        """
        start, goal = link.a, link.b
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._network.neighbors(node):
                if {node, neighbor} == {start, goal}:
                    continue
                if neighbor == goal:
                    return True
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return False

    def _invalidate(self) -> None:
        """Flush every derived-state cache after a mutation.

        Order matters: the tunnel controller's programs embed IGP paths,
        so it is flushed first; the engine invalidation then advances
        the topology epoch that marks outstanding recordings stale.

        After both flushes the controller is re-converged: torn-down
        LSPs re-signal and invalidated programs rebuild in canonical
        order *now*, against the freshly recomputed IGP, not in
        whatever order the next probes happen to demand them.  Label
        values therefore stay a pure function of (network, mutation
        history) -- the property the fast-path differential and resume
        byte-identity tests pin.  Converging before the engine flush
        would be wrong twice over: programs would embed pre-mutation
        IGP paths, and *which* stale SPF entries converge sees depends
        on the engine's memoization mode.
        """
        self._controller.invalidate()
        self._engine.invalidate_caches()
        self._controller.converge()

    # -- lifecycle -------------------------------------------------------------

    def quiesce(self) -> None:
        """Restore the nominal network (end of the probe stage).

        Repairs every failed link and demotes every migration-wave
        promotion, then invalidates caches one final time.  After this
        the topology is byte-identical to the freshly built network --
        the state checkpoint rehydration rebuilds -- so fingerprinting
        and analysis see the same world fresh or resumed.  Re-signaled
        LSPs from the closing convergence carry churn-fresh labels;
        analysis never consults controller state.
        """
        for idx in sorted(self._down):
            link = self._candidates[idx]
            self._network.set_link_up(link.a, link.b)
        self._down.clear()
        for rid in reversed(self._promoted):
            self._sr_domain.demote_to_mapping_entry(rid)
        self._promoted.clear()
        self._blackholed = frozenset()
        self._looping = frozenset()
        self._transient_until = 0
        self._invalidate()
