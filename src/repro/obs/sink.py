"""Crash-safe JSONL event sink for campaign telemetry.

One campaign writes one ``telemetry.jsonl``: a stream of small JSON
records (span durations, counter tallies) appended *per completed AS*
in batches.  The append protocol mirrors the checkpoint's durability
story (:mod:`repro.util.atomicio`):

1. all records of one AS are serialized into a single text block, each
   record one line, terminated by a ``flush`` marker record;
2. the block is appended with :func:`~repro.util.atomicio.durable_append`
   (write + flush + fsync), so once :meth:`TelemetryWriter.append_batch`
   returns the batch is on stable storage;
3. a crash (even ``kill -9``) mid-append at worst truncates the final
   line; :func:`load_events` salvages every intact line before the
   damage and reports what it dropped, and the ``flush`` markers let
   readers distinguish complete AS batches from a torn tail.

Records are plain dicts with a ``kind`` field; every record carries the
``scope`` it was recorded under (an AS id, or ``"portfolio"`` for
campaign-level records).  Stream format v1 had ``span``, ``counter``,
``gauge`` and ``flush`` kinds; v2 adds ``anchor`` (one process's
wall/monotonic clock correspondence, written *first* in each batch so
readers can normalize the batch's span starts) and ``hist`` (one
stage's fixed-bucket latency histogram), and traced span records gain
``trace_id``/``span_id``/``parent_span_id``/``start`` fields.  Both
additions are tolerated by v1 readers, which ignore unknown kinds and
unknown span fields.  The sink is
observational: nothing here feeds back into results, so completion
order -- which varies across parallel runs -- is allowed to leak into
the file.  Only the *counter totals* are contractual (order-independent
by construction, see :func:`repro.obs.telemetry.merge_counters`).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from repro.util.atomicio import durable_append

logger = logging.getLogger(__name__)

#: canonical telemetry stream filename inside a telemetry directory
EVENTS_FILENAME = "telemetry.jsonl"


class TelemetryWriter:
    """Appends per-scope record batches to the JSONL event stream."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append_batch(
        self,
        scope: int | str,
        spans: list[dict] | None = None,
        counters: dict[str, int] | None = None,
        gauges: dict[str, float] | None = None,
        anchor: dict | None = None,
        histograms: dict[str, dict] | None = None,
    ) -> int:
        """Durably append one scope's telemetry; returns records written.

        The batch is one ``write(2)`` followed by an fsync, closed by a
        ``flush`` marker: a reader that sees the marker knows the whole
        batch is intact.  The anchor (when the scope's recorder was
        traced) leads the batch, so a streaming reader always holds the
        right clock correspondence before it meets the spans it covers.
        """
        records: list[dict] = []
        if anchor is not None:
            records.append({"kind": "anchor", "scope": scope, **anchor})
        for span in spans or ():
            records.append({"kind": "span", "scope": scope, **span})
        for name in sorted(counters or ()):
            records.append(
                {
                    "kind": "counter",
                    "scope": scope,
                    "name": name,
                    "value": counters[name],
                }
            )
        for name in sorted(gauges or ()):
            records.append(
                {
                    "kind": "gauge",
                    "scope": scope,
                    "name": name,
                    "value": gauges[name],
                }
            )
        for stage in sorted(histograms or ()):
            records.append(
                {
                    "kind": "hist",
                    "scope": scope,
                    "stage": stage,
                    **histograms[stage],
                }
            )
        records.append({"kind": "flush", "scope": scope})
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        durable_append(self.path, text)
        return len(records)


def load_events(path: str | Path) -> tuple[list[dict], int]:
    """Read every salvageable record; returns ``(records, dropped)``.

    Tolerates the damage a crash can inflict: undecodable or truncated
    lines are dropped (and counted), never raised, so a telemetry file
    that survived a ``kill -9`` still renders.  A missing file is an
    empty stream.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[dict] = []
    dropped = 0
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if not isinstance(record, dict) or "kind" not in record:
                dropped += 1
                continue
            records.append(record)
    if dropped:
        logger.warning(
            "telemetry stream %s: dropped %d corrupt line(s)", path, dropped
        )
    return records, dropped
