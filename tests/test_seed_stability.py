"""Seed stability: the paper-level conclusions hold across campaigns.

Marked slow: runs the full 41-AS portfolio on extra seeds.
"""

import pytest

from repro.analysis.validation import headline_detection, validate_against_truth
from repro.campaign import CampaignRunner
from repro.core.flags import STRONG_FLAGS, Flag


@pytest.mark.slow
@pytest.mark.parametrize("seed", [2, 9])
def test_portfolio_conclusions_stable_across_seeds(seed):
    runner = CampaignRunner(seed=seed, vps_per_as=3, targets_per_as=18)
    results = runner.run_portfolio()
    headline = headline_detection(results)

    # detection rates stay in the paper's neighbourhood
    assert 0.55 <= headline.confirmed_rate <= 0.95
    assert headline.unconfirmed_rate >= 0.7

    # the structurally-invisible ASes stay undetected
    for as_id in (2, 3, 16):
        assert not results[as_id].analysis.has_sr_evidence(
            strong_only=False
        )

    # ESnet stays CO-only and FP-free
    esnet = results[46]
    counts = esnet.analysis.flag_counts()
    assert counts[Flag.CO] > 0
    assert counts[Flag.CVR] == 0

    # zero strong-flag false positives, any seed
    for result in results.values():
        report = validate_against_truth(result)
        for flag in STRONG_FLAGS:
            assert report.per_flag[flag].false_positives == 0
