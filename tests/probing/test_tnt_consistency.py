"""Cross-checks between TNT's revelation and its opaque-TTL inference.

Two independent mechanisms measure the same hidden quantity: the quoted
LSE-TTL of an opaque ending hop (255 - k) and the number of interior
hops TNT's revelation surfaces.  They must agree.
"""

import pytest

from repro.probing.tnt import TntProber
from repro.probing.tunnels import (
    TunnelType,
    classify_tunnels,
    infer_opaque_length,
)

from tests.conftest import ChainNetwork


@pytest.mark.parametrize("length", [4, 6, 9])
def test_revealed_interior_matches_ttl_inference(length):
    chain = ChainNetwork(length=length, propagate=False, rfc4950=True)
    prober = TntProber(chain.engine, reveal_success_rate=1.0, seed=4)
    trace = prober.trace(chain.vp.router_id, chain.target)

    opaque_hop = next(h for h in trace.hops if h.has_lses)
    inferred = infer_opaque_length(opaque_hop)
    assert inferred is not None

    revealed = [h for h in trace.hops if h.tnt_revealed]
    # the quoted TTL counts every decrement since the push: the revealed
    # interior hops plus the quoting EH's own arrival decrement... the
    # quote happens *before* the EH decrements, so the counts match the
    # interior exactly.
    assert len(revealed) == inferred


def test_inference_without_revelation_still_available():
    chain = ChainNetwork(length=7, propagate=False, rfc4950=True)
    prober = TntProber(chain.engine, reveal_success_rate=0.0, seed=4)
    trace = prober.trace(chain.vp.router_id, chain.target)
    tunnels = classify_tunnels(trace)
    opaque = [t for t in tunnels if t.tunnel_type is TunnelType.OPAQUE]
    assert len(opaque) == 1
    hop = trace.hops[opaque[0].hop_indices[0]]
    # 7-router chain: push at r0, PHP pop at r5; interior r1..r4
    assert infer_opaque_length(hop) == 4


def test_explicit_tunnels_never_infer_a_length(sr_chain):
    prober = TntProber(sr_chain.engine, seed=4)
    trace = prober.trace(sr_chain.vp.router_id, sr_chain.target)
    for hop in trace.labeled_hops():
        assert infer_opaque_length(hop) is None
