"""Longitudinal MPLS stack-size evolution (Fig. 7).

The paper samples CAIDA Ark and RIPE Atlas traceroute archives four
times a year from December 2015 to March 2025 and tracks the share of
traces whose deepest observed LSE stack exceeds given sizes: by 2025,
stacks of size > 2 appear in roughly 20% of CAIDA traces and 10% of
Atlas ones, up from a few percent in 2015.

Those archives are not shippable; this module generates a synthetic
archive whose per-sample histograms follow the same drift, then offers
the aggregation the paper plots.  The generator is the *substitution*
documented in DESIGN.md: the aggregation code is the deliverable, the
archive is stand-in data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.util.determinism import DeterministicRng

#: archive sources the paper samples
SOURCES = ("caida", "atlas")

#: months sampled each year (March, June, September, December)
SAMPLE_MONTHS = (3, 6, 9, 12)

FIRST_YEAR = 2015
LAST_YEAR = 2025

#: end-state share of traces with stack size >= 2, per source
_TARGET_GE2 = {"caida": 0.20, "atlas": 0.10}
#: starting share in 2015
_START_GE2 = {"caida": 0.05, "atlas": 0.02}

MAX_DEPTH = 6


@dataclass(frozen=True, slots=True)
class ArchiveSample:
    """One (source, date) sample: a histogram of per-trace max stack
    sizes (0 = the trace exposed no LSE at all)."""

    source: str
    year: int
    month: int
    depth_counts: tuple[int, ...]  # index = depth, 0..MAX_DEPTH

    @property
    def num_traces(self) -> int:
        """Traces in this sample."""
        return sum(self.depth_counts)

    def share_with_depth_at_least(self, depth: int) -> float:
        """Share of MPLS traces with stacks >= ``depth``."""
        total = sum(self.depth_counts[1:])  # among traces showing MPLS
        if total == 0:
            return 0.0
        return sum(self.depth_counts[depth:]) / total

    @property
    def date_key(self) -> float:
        """Fractional-year key for chronological sorting."""
        return self.year + (self.month - 1) / 12.0


def _progress(year: int, month: int) -> float:
    """0.0 at Dec 2015, 1.0 at Mar 2025, linear in between."""
    start = FIRST_YEAR + 11 / 12
    end = LAST_YEAR + 2 / 12
    t = year + (month - 1) / 12.0
    return min(1.0, max(0.0, (t - start) / (end - start)))


def expected_ge2_share(source: str, year: int, month: int) -> float:
    """The drift model: linear ramp from the 2015 to the 2025 share."""
    if source not in _TARGET_GE2:
        raise ValueError(f"unknown archive source: {source}")
    p = _progress(year, month)
    return _START_GE2[source] + p * (_TARGET_GE2[source] - _START_GE2[source])


def generate_archive(
    traces_per_sample: int = 2_000, seed: int = 0
) -> list[ArchiveSample]:
    """Generate every (source, quarter) sample of the study window."""
    samples = []
    for source in SOURCES:
        for year in range(FIRST_YEAR, LAST_YEAR + 1):
            for month in SAMPLE_MONTHS:
                if year == FIRST_YEAR and month != 12:
                    continue  # the window starts in December 2015
                if year == LAST_YEAR and month > 3:
                    continue  # ...and ends in March 2025
                samples.append(
                    _generate_sample(
                        source, year, month, traces_per_sample, seed
                    )
                )
    return samples


def _generate_sample(
    source: str, year: int, month: int, n: int, seed: int
) -> ArchiveSample:
    rng = DeterministicRng("archive", seed, source, year, month)
    ge2 = expected_ge2_share(source, year, month)
    #: share of traces showing any MPLS at all (roughly stable)
    mpls_share = 0.45 if source == "caida" else 0.30
    counts = [0] * (MAX_DEPTH + 1)
    for _ in range(n):
        if rng.random() >= mpls_share:
            counts[0] += 1
            continue
        if rng.random() < ge2:
            # geometric tail over depths >= 2
            depth = 2
            while depth < MAX_DEPTH and rng.random() < 0.35:
                depth += 1
            counts[depth] += 1
        else:
            counts[1] += 1
    return ArchiveSample(
        source=source, year=year, month=month, depth_counts=tuple(counts)
    )


def series_ge_depth(
    samples: Sequence[ArchiveSample], source: str, depth: int
) -> list[tuple[float, float]]:
    """The Fig. 7 series: (date, share of MPLS traces with stacks >=
    ``depth``) for one source, chronological."""
    points = [
        (s.date_key, s.share_with_depth_at_least(depth))
        for s in samples
        if s.source == source
    ]
    return sorted(points)


def iter_sample_dates() -> Iterator[tuple[int, int]]:
    """All (year, month) pairs of the study window."""
    for year in range(FIRST_YEAR, LAST_YEAR + 1):
        for month in SAMPLE_MONTHS:
            if year == FIRST_YEAR and month != 12:
                continue
            if year == LAST_YEAR and month > 3:
                continue
            yield (year, month)
