"""Performance -- end-to-end trace-collection throughput.

The paper's campaign collected 7.7M TNT-style traceroutes; trace
collection is the ROADMAP's "fast as the hardware allows" hot path.
This benchmark runs the same probing workload twice over identical
topologies:

- **fast** (the shipped default): single-walk trace synthesis plus
  memoized forwarding primitives;
- **reference**: the pre-change cost model -- the O(h^2) per-probe
  walker with ``engine.memoize = False``, i.e. every optimization this
  subsystem added switched off (ECMP scans, flow hash buckets,
  return-path hop counts and SHA-256 draws recomputed per probe,
  exactly as the seed walker did).

Both legs are measured warm: one un-timed pass per leg pays the
one-off SPF / tunnel-programming / import costs, because at campaign
scale (millions of traces per engine) those amortize to nothing and
timing them would just add equal constants to both legs.  Each round
times both legs back to back and takes the ratio of their trimmed
mean per-trace latencies; the reported speedup is the median of the
round ratios.  Pairing makes the ratio invariant to the slow clock
drift of shared runners (it multiplies both legs of a round equally),
and the trim rejects the scheduler steal bursts that poison a handful
of traces per round.  Traces must come out byte-identical; the fast
leg must win by >= 5x.  The run drops ``BENCH_campaign.json``
(traces/sec, per-trace latency percentiles, walk-steps saved) for CI
to archive and regression-gate.
"""

import gc
import json
import time

from repro.campaign.vantage_points import default_vantage_points
from repro.probing.tnt import TntProber
from repro.topogen.anaximander import build_target_list
from repro.topogen.internet import build_measurement_network
from repro.topogen.portfolio import default_portfolio
from repro.util.atomicio import atomic_write_text

from benchmarks.conftest import emit

BENCH_FILENAME = "BENCH_campaign.json"

#: portfolio ASes probed by the smoke workload (mixed TTL models,
#: vendors and tunnel shapes; 46 is the ESnet-style anchor)
_AS_IDS = (46, 27, 31)
_SEED = 1
_VPS = 2
_TARGETS = 24
#: paired measurement rounds; the speedup is the median round ratio
_ROUNDS = 9


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


def _trimmed_mean(sorted_values: list[float]) -> float:
    """Mean of an already-sorted sample with 5% shaved off each end."""
    trim = max(1, len(sorted_values) // 20)
    kept = sorted_values[trim:-trim]
    return sum(kept) / len(kept)


def _build_workload():
    """(engine, vp ids, shuffled targets) per AS -- the probe stage of
    the smoke campaign, minus analysis."""
    portfolio = default_portfolio()
    vps = default_vantage_points()[:_VPS]
    workload = []
    for as_id in _AS_IDS:
        spec = portfolio.spec(as_id)
        net = build_measurement_network(
            spec, [vp.vp_id for vp in vps], seed=_SEED
        )
        targets = build_target_list(net, limit=_TARGETS, seed=_SEED)
        workload.append((net, vps, list(targets.addresses)))
    return workload


def _stats_totals(workload) -> dict:
    """Summed engine stats across the workload's networks."""
    totals: dict = {}
    for net, _, _ in workload:
        for name, value in net.engine.stats.as_dict().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _collect(workload, fast_path: bool):
    """Probe every (vp, target) pair; returns (traces, per-trace µs).

    ``fast_path=False`` also disables engine memoization: the reference
    leg times the seed walker's cost model, not a half-optimized hybrid.
    """
    traces = []
    latencies_us = []
    for net, vps, targets in workload:
        net.engine.memoize = fast_path
        prober = TntProber(net.engine, seed=_SEED, fast_path=fast_path)
        for vp in vps:
            vp_router = net.vantage_points[vp.vp_id]
            for destination in targets:
                tick = time.perf_counter_ns()
                trace = prober.trace(vp_router, destination, vp_name=vp.vp_id)
                latencies_us.append((time.perf_counter_ns() - tick) / 1e3)
                traces.append(trace)
    return traces, latencies_us


def test_bench_campaign_throughput():
    # One workload per leg, reused across rounds: the un-timed warm-up
    # pass pays first-touch costs (SPF fields, tunnel programs, imports)
    # that a real campaign amortizes over millions of traces.  Walks and
    # probes are NOT reused -- every round re-records and re-synthesizes
    # (or re-walks) every trace.
    reference_workload = _build_workload()
    fast_workload = _build_workload()
    _collect(reference_workload, fast_path=False)
    _collect(fast_workload, fast_path=True)

    # Each round times both legs back to back (comparable clocks) and
    # records the ratio of trimmed-mean latencies; each leg's best round
    # is kept for the absolute throughput numbers.  Leg order alternates
    # per round so a monotonic clock drift (shared runners slow down
    # under sustained load) penalizes each leg equally instead of always
    # hitting whichever leg runs second.  GC stays off inside the timed
    # windows.  Trace equality is asserted on every round.
    def _timed(workload, fast_path):
        before = _stats_totals(workload)
        gc.disable()
        traces, latencies = _collect(workload, fast_path=fast_path)
        gc.enable()
        after = _stats_totals(workload)
        latencies.sort()
        delta = {name: after[name] - before[name] for name in after}
        return traces, latencies, delta

    reference_mean = fast_mean = float("inf")
    reference_traces = fast_traces = None
    reference_steps = 0
    fast_stats: dict = {}
    fast_latencies_us: list[float] = []
    round_ratios: list[float] = []
    for round_index in range(_ROUNDS):
        if round_index % 2 == 0:
            round_reference, ref_latencies, ref_delta = _timed(
                reference_workload, fast_path=False
            )
            round_fast, latencies, delta = _timed(
                fast_workload, fast_path=True
            )
        else:
            round_fast, latencies, delta = _timed(
                fast_workload, fast_path=True
            )
            round_reference, ref_latencies, ref_delta = _timed(
                reference_workload, fast_path=False
            )
        if reference_traces is not None:
            assert round_reference == reference_traces
        reference_traces = round_reference
        round_reference_mean = _trimmed_mean(ref_latencies)
        if round_reference_mean < reference_mean:
            reference_mean = round_reference_mean
            reference_steps = ref_delta["nodes_processed"]

        if fast_traces is not None:
            assert round_fast == fast_traces
        fast_traces = round_fast
        round_fast_mean = _trimmed_mean(latencies)
        round_ratios.append(round_reference_mean / round_fast_mean)
        if round_fast_mean < fast_mean:
            fast_mean = round_fast_mean
            fast_latencies_us = latencies
            fast_stats = delta

    # The correctness contract first: the fast path must be a pure
    # performance change -- byte-identical Trace tuples.
    assert fast_traces == reference_traces

    count = len(fast_traces)
    reference_tps = 1e6 / reference_mean
    fast_tps = 1e6 / fast_mean
    round_ratios.sort()
    speedup = round_ratios[len(round_ratios) // 2]
    walk_steps_saved = reference_steps - fast_stats["nodes_processed"]
    fast_latencies_us.sort()
    payload = {
        "benchmark": "campaign_trace_collection",
        "as_ids": list(_AS_IDS),
        "traces": count,
        "reference_traces_per_sec": round(reference_tps, 1),
        "traces_per_sec": round(fast_tps, 1),
        "speedup": round(speedup, 2),
        "p50_us_per_trace": round(_percentile(fast_latencies_us, 0.50), 3),
        "p95_us_per_trace": round(_percentile(fast_latencies_us, 0.95), 3),
        "max_us_per_trace": round(fast_latencies_us[-1], 3),
        "walk_steps_saved": walk_steps_saved,
        "walks_recorded": fast_stats["walks_recorded"],
        "walks_fallback": fast_stats["walks_fallback"],
        "probes_synthesized": fast_stats["probes_synthesized"],
        "probes_walked": fast_stats["probes_walked"],
    }
    atomic_write_text(
        BENCH_FILENAME, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(
        f"collected {count} traces: {fast_tps:,.0f}/s fast vs "
        f"{reference_tps:,.0f}/s reference ({speedup:.1f}x, "
        f"{walk_steps_saved:,} walk steps saved)"
    )
    emit(f"machine-readable stats -> {BENCH_FILENAME}")

    assert count > 0
    assert walk_steps_saved > 0
    # The tentpole target: one instrumented walk per flow plus O(1)
    # slicing must beat the O(h^2) re-walker by at least 5x end to end.
    assert speedup >= 5.0, f"fast path speedup {speedup:.2f}x < 5x"
