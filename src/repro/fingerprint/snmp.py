"""SNMPv3-based fingerprinting (Albakour et al. 2021).

The real technique sends unauthenticated SNMPv3 requests; routers leak
their engine ID, whose enterprise number reveals the exact vendor.  The
paper consumed a pre-collected public dataset (September 2024 snapshot)
rather than probing live.

The simulator models that dataset as an oracle over the network: a
router appears in the dataset when it is SNMP-responsive, its vendor is
identifiable from engine IDs (Arista is not, Sec. 5), and a per-router
coverage draw succeeds (dataset snapshots never see every box).
"""

from __future__ import annotations

from repro.netsim.addressing import IPv4Address
from repro.netsim.faults import FaultInjector
from repro.netsim.topology import Network
from repro.netsim.vendors import VENDOR_PROFILES
from repro.fingerprint.records import Fingerprint
from repro.util.determinism import unit_hash


class SnmpOracle:
    """A frozen SNMPv3 fingerprint dataset over a simulated network."""

    def __init__(
        self,
        network: Network,
        coverage: float = 1.0,
        seed: int = 0,
        faults: FaultInjector | None = None,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        self._network = network
        self._coverage = coverage
        self._seed = seed
        self._faults = faults
        #: queries answered (timeouts included) -- dedupe verification
        self.lookup_count = 0

    def lookup(self, address: IPv4Address) -> Fingerprint:
        """Exact-vendor fingerprint for an interface, or none."""
        self.lookup_count += 1
        owner = self._network.owner_of(address)
        if owner is None:
            return Fingerprint.none()
        if self._faults is not None and self._faults.snmp_timeout(owner):
            # The dataset snapshot never caught this box: the SNMPv3
            # query timed out when the collector swept it.
            return Fingerprint.none()
        router = self._network.router(owner)
        if not router.snmp_responsive:
            return Fingerprint.none()
        profile = VENDOR_PROFILES.get(router.vendor)
        if profile is None or not profile.snmp_identifiable:
            return Fingerprint.none()
        if unit_hash(self._seed, "snmp", owner) >= self._coverage:
            return Fingerprint.none()
        return Fingerprint.from_snmp(router.vendor)

    def dataset_size(self) -> int:
        """Number of routers present in the frozen dataset."""
        count = 0
        for router in self._network.routers():
            profile = VENDOR_PROFILES.get(router.vendor)
            if (
                router.snmp_responsive
                and profile is not None
                and profile.snmp_identifiable
                and unit_hash(self._seed, "snmp", router.router_id)
                < self._coverage
            ):
                count += 1
        return count
