"""Measurement campaign orchestration.

- :mod:`repro.campaign.vantage_points` -- the 50-VP fleet of Table 4.
- :mod:`repro.campaign.dataset` -- trace dataset container and JSONL
  (de)serialization.
- :mod:`repro.campaign.runner` -- per-AS campaign execution: topology
  build, TNT probing from every VP, fingerprinting, AReST analysis and
  ground-truth extraction.
- :mod:`repro.campaign.shards` / :mod:`repro.campaign.shardexec` /
  :mod:`repro.campaign.scale` -- paper-scale execution: deterministic
  ``(as_id, vp_bucket)`` shards, a work-stealing lease executor with
  crash recovery, and the two-phase (probe, analyze) campaign driver
  with spill-file streaming and shard-scoped checkpointing.
"""

from repro.campaign.vantage_points import VantagePoint, default_vantage_points
from repro.campaign.dataset import TraceDataset
from repro.campaign.anonymize import PrefixPreservingAnonymizer
from repro.campaign.checkpoint import (
    CampaignCheckpoint,
    CheckpointEntry,
    CheckpointMismatchError,
    FailureStub,
    QuarantineStub,
)
from repro.campaign.executor import (
    ExecutionResult,
    GracefulShutdown,
    Quarantine,
    SupervisedExecutor,
    TaskOutcome,
    TaskStatus,
)
from repro.campaign.runner import (
    AsCampaignResult,
    AsFailure,
    AsQuarantine,
    CampaignReport,
    CampaignRunner,
)
from repro.campaign.checkpoint import ShardCheckpoint
from repro.campaign.scale import ScaleCampaign, ScaleReport
from repro.campaign.shardexec import LeaseExecutor, WorkerControl
from repro.campaign.shards import (
    ShardProbeRecord,
    ShardSpec,
    VpProbe,
    shard_plan,
)

__all__ = [
    "VantagePoint",
    "default_vantage_points",
    "TraceDataset",
    "PrefixPreservingAnonymizer",
    "AsCampaignResult",
    "AsFailure",
    "AsQuarantine",
    "CampaignReport",
    "CampaignRunner",
    "CampaignCheckpoint",
    "CheckpointEntry",
    "CheckpointMismatchError",
    "FailureStub",
    "QuarantineStub",
    "ExecutionResult",
    "GracefulShutdown",
    "Quarantine",
    "SupervisedExecutor",
    "TaskOutcome",
    "TaskStatus",
    "LeaseExecutor",
    "WorkerControl",
    "ScaleCampaign",
    "ScaleReport",
    "ShardCheckpoint",
    "ShardProbeRecord",
    "ShardSpec",
    "VpProbe",
    "shard_plan",
]
