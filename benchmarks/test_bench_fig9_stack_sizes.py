"""Fig. 9 -- LSE stack sizes: strong-SR contexts vs. MPLS/LSO contexts.

The paper: stacks of size >= 2 appear roughly 20% more often in SR
contexts, with ESnet/Execulink showing deep unshrinking stacks in both.
"""

from repro.analysis.stack_stats import (
    aggregate_share_at_least,
    stack_size_rows,
)
from repro.util.tables import format_table

from benchmarks.conftest import emit


def test_bench_fig9_stack_sizes(benchmark, portfolio_results):
    rows = benchmark(lambda: stack_size_rows(portfolio_results))

    table = []
    for row in rows:
        if row.total() == 0:
            continue
        table.append(
            (
                f"AS#{row.as_id}",
                row.name,
                row.context,
                row.total(),
                f"{row.share_at_least(2):.2f}",
            )
        )
    emit(
        format_table(
            ["AS", "Name", "Context", "Hops", "share >= 2"],
            table,
            title="Fig. 9 -- stack-size distribution per context",
        )
    )

    sr_share = aggregate_share_at_least(rows, "strong-sr", 2)
    other_share = aggregate_share_at_least(rows, "mpls-lso", 2)
    emit(
        f"aggregate share of stacks >= 2: strong-SR={sr_share:.3f} "
        f"vs MPLS/LSO={other_share:.3f}"
    )

    # Shape: "a notably higher tendency for stack sizes >= 2 in SR
    # contexts, with such stacks appearing approximately 20% more
    # frequently on average" (Sec. 6.2).
    assert sr_share > other_share
    assert sr_share / other_share >= 1.1
    esnet = next(
        r for r in rows if r.as_id == 46 and r.context == "strong-sr"
    )
    execulink = next(
        r for r in rows if r.as_id == 52 and r.context == "strong-sr"
    )
    # the two unshrinking-stack ASes stand out (Sec. 6.2)
    assert esnet.share_at_least(2) > sr_share
    assert execulink.share_at_least(2) > sr_share
