"""Tests for full measurement-network construction."""

import networkx as nx
import pytest

from repro.netsim.topology import RouterRole
from repro.topogen.internet import build_measurement_network
from repro.topogen.portfolio import default_portfolio


@pytest.fixture(scope="module")
def esnet_net():
    spec = default_portfolio().spec(46)
    return build_measurement_network(spec, ["VM1", "VM2", "VM3"], seed=4)


class TestConstruction:
    def test_connected(self, esnet_net):
        assert nx.is_connected(esnet_net.network.to_graph())

    def test_vantage_points_registered(self, esnet_net):
        assert set(esnet_net.vantage_points) == {"VM1", "VM2", "VM3"}
        for rid in esnet_net.vantage_points.values():
            assert (
                esnet_net.network.router(rid).role is RouterRole.VANTAGE
            )

    def test_target_as_routers_configured(self, esnet_net):
        routers = esnet_net.network.routers_in_as(esnet_net.target_asn)
        assert routers
        # ESnet scenario: all SR, none fingerprintable
        assert all(r.sr_enabled for r in routers)
        assert not any(r.snmp_responsive for r in routers)
        assert not any(r.responds_to_ping for r in routers)

    def test_prefixes_cover_pe_and_customers(self, esnet_net):
        spec = esnet_net.spec
        expected = spec.scenario.n_edge + spec.scenario.n_customers
        assert len(esnet_net.target_prefixes) == expected

    def test_customers_behind_target_as(self, esnet_net):
        # every customer prefix is reachable and transits the target AS
        vp = next(iter(esnet_net.vantage_points.values()))
        customer_prefix = esnet_net.target_prefixes[-1]
        truth = esnet_net.engine.truth_walk(
            vp, customer_prefix.address_at(3)
        )
        assert any(t.asn == esnet_net.target_asn for t in truth)

    def test_deterministic_build(self):
        spec = default_portfolio().spec(27)
        a = build_measurement_network(spec, ["VM1"], seed=9)
        b = build_measurement_network(spec, ["VM1"], seed=9)
        assert a.network.num_routers == b.network.num_routers
        assert a.network.num_links == b.network.num_links

    def test_requires_vps(self):
        spec = default_portfolio().spec(27)
        with pytest.raises(ValueError):
            build_measurement_network(spec, [], seed=1)

    def test_transit_chains_plain_ip(self, esnet_net):
        transit_routers = [
            r
            for r in esnet_net.network.routers()
            if r.name.startswith("tr")
        ]
        assert transit_routers
        assert not any(r.sr_enabled or r.ldp_enabled for r in transit_routers)
