"""AReST detection flags (Sec. 4 of the paper).

Each flag carries a *signal strength* in stars, reflecting its
false-positive likelihood:

======  =====================================  ========
flag    trigger                                strength
======  =====================================  ========
CVR     consecutive identical labels, vendor      5
        range confirmed by fingerprinting
CO      consecutive identical labels only          4
LSVR    stack depth >= 2, top label in the         4
        fingerprinted vendor's SR range
LVR     stack depth == 1, label in the             3
        fingerprinted vendor's SR range
LSO     stack depth >= 2 only                      1
======  =====================================  ========
"""

from __future__ import annotations

import enum
from typing import Mapping


class Flag(enum.Enum):
    """The five AReST detection flags, strongest first."""

    CVR = "Consecutive & Vendor Range"
    CO = "Consecutive Only"
    LSVR = "Label Stack & Vendor Range"
    LVR = "Label & Vendor Range"
    LSO = "Label Stack Only"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Signal strength in stars (Sec. 4).
SIGNAL_STRENGTH: Mapping[Flag, int] = {
    Flag.CVR: 5,
    Flag.CO: 4,
    Flag.LSVR: 4,
    Flag.LVR: 3,
    Flag.LSO: 1,
}

#: The flags the paper treats as reliable enough for the deployment
#: characterization (Sec. 7: "Strong SR flags (CVR, Co, LSVR, LVR) are
#: used to identify SR-MPLS areas"; LSO is excluded as too ambiguous).
STRONG_FLAGS: frozenset[Flag] = frozenset(
    {Flag.CVR, Flag.CO, Flag.LSVR, Flag.LVR}
)

#: Flags that require a quoted label *sequence* and therefore need an
#: explicit tunnel; opaque tunnels can only raise the stack-based flags
#: (Sec. 6.2 / Appendix C).
SEQUENCE_FLAGS: frozenset[Flag] = frozenset({Flag.CVR, Flag.CO})

#: Size of Cisco's dynamic label pool (Sec. 4.1's false-positive
#: argument references ~1,032,575 allocatable labels).
CISCO_DYNAMIC_POOL_SIZE = 1_032_575


def cvr_false_positive_probability(
    consecutive_hops: int, pool_size: int = CISCO_DYNAMIC_POOL_SIZE
) -> float:
    """Probability that ``consecutive_hops`` independent LSRs pick the
    same label by chance: ``1 / pool_size**(k-1)`` (Sec. 4.1).

    With classic MPLS each router draws its label independently from its
    dynamic pool; observing the same value on k consecutive hops without
    Segment Routing requires k-1 coincidences.
    """
    if consecutive_hops < 2:
        raise ValueError("a sequence needs at least two hops")
    if pool_size < 1:
        raise ValueError("pool size must be positive")
    return 1.0 / pool_size ** (consecutive_hops - 1)


def strongest(flags: "set[Flag] | frozenset[Flag]") -> Flag | None:
    """The highest-strength flag of a set, or None when empty."""
    if not flags:
        return None
    return max(flags, key=lambda f: (SIGNAL_STRENGTH[f], f.name))
