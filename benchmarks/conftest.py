"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
prints the same rows/series the paper reports and asserts the
qualitative *shape* (who wins, by roughly what factor, where crossovers
fall).  Absolute numbers differ -- the substrate is a simulator, not the
authors' 50-VM testbed.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner


@pytest.fixture(scope="session")
def campaign_runner() -> CampaignRunner:
    return CampaignRunner(seed=1)


@pytest.fixture(scope="session")
def portfolio_results(campaign_runner):
    """The full 41-AS campaign (the paper's analyzed set), run once."""
    return campaign_runner.run_portfolio()


@pytest.fixture(scope="session")
def esnet_campaign(portfolio_results):
    return portfolio_results[46]


def emit(text: str) -> None:
    """Print a regenerated table/figure (visible with ``-s``)."""
    print()
    print(text)
