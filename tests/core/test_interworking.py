"""Tests for interworking decomposition, modes, and area refinement."""

from repro.core.classification import HopArea
from repro.core.detector import ArestDetector
from repro.core.flags import Flag
from repro.core.interworking import (
    InterworkingMode,
    analyze_tunnel_composition,
    interworking_summary,
    refine_areas_for_interworking,
)
from repro.core.segments import DetectedSegment
from repro.netsim.addressing import IPv4Address

from tests.conftest import make_hop, make_trace

SR = HopArea.SR
M = HopArea.MPLS
IP = HopArea.IP


class TestComposition:
    def test_full_sr(self):
        tunnels = analyze_tunnel_composition([IP, SR, SR, IP])
        assert [t.mode for t in tunnels] == [InterworkingMode.FULL_SR]
        assert not tunnels[0].is_interworking

    def test_full_ldp(self):
        tunnels = analyze_tunnel_composition([M, M])
        assert [t.mode for t in tunnels] == [InterworkingMode.FULL_LDP]

    def test_sr_to_ldp(self):
        tunnels = analyze_tunnel_composition([SR, SR, M, M])
        assert tunnels[0].mode is InterworkingMode.SR_TO_LDP
        assert tunnels[0].is_interworking
        assert tunnels[0].sr_cloud_sizes() == [2]
        assert tunnels[0].ldp_cloud_sizes() == [2]

    def test_ldp_to_sr(self):
        tunnels = analyze_tunnel_composition([M, SR, SR])
        assert tunnels[0].mode is InterworkingMode.LDP_TO_SR

    def test_chains(self):
        assert analyze_tunnel_composition([M, SR, M])[0].mode is (
            InterworkingMode.LDP_SR_LDP
        )
        assert analyze_tunnel_composition([SR, M, SR])[0].mode is (
            InterworkingMode.SR_LDP_SR
        )

    def test_longer_alternations_are_other(self):
        tunnels = analyze_tunnel_composition([SR, M, SR, M])
        assert tunnels[0].mode is InterworkingMode.OTHER

    def test_ip_delimits_tunnels(self):
        tunnels = analyze_tunnel_composition([SR, IP, M])
        assert [t.mode for t in tunnels] == [
            InterworkingMode.FULL_SR,
            InterworkingMode.FULL_LDP,
        ]

    def test_empty(self):
        assert analyze_tunnel_composition([]) == []
        assert analyze_tunnel_composition([IP, IP]) == []

    def test_summary(self):
        tunnels = analyze_tunnel_composition([SR, IP, SR, M, IP, M])
        summary = interworking_summary(tunnels)
        assert summary[InterworkingMode.FULL_SR] == 1
        assert summary[InterworkingMode.SR_TO_LDP] == 1
        assert summary[InterworkingMode.FULL_LDP] == 1


class TestRefinement:
    def _trace_and_segments(self):
        """CO run (hops 0-1), unflagged labeled gap hop (2, same label),
        CO run continues (3-4)... plus a genuine LDP tail (5)."""
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_007,)),
                make_hop(2, "10.0.0.2", labels=(16_007,)),
                make_hop(3, "10.0.0.3"),  # implicit gap (no quote)
                make_hop(4, "10.0.0.4", labels=(16_007,)),
                make_hop(5, "10.0.0.5", labels=(16_007,)),
                make_hop(6, "10.0.0.6", labels=(771_234,)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        return trace, segments

    def test_same_label_adoption_and_sandwich(self):
        trace, segments = self._trace_and_segments()
        areas = [SR, SR, M, SR, SR, M]
        refined = refine_areas_for_interworking(trace, segments, areas)
        # the implicit gap hop joins the run...
        assert refined[2] is SR
        # ...but the different-label tail stays LDP
        assert refined[5] is M

    def test_lso_upgraded_with_strong_evidence(self):
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_007,)),
                make_hop(2, "10.0.0.2", labels=(16_007,)),
                make_hop(3, "10.0.0.3", labels=(880_001, 880_002)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        assert {s.flag for s in segments} == {Flag.CO, Flag.LSO}
        areas = [SR, SR, M]
        refined = refine_areas_for_interworking(trace, segments, areas)
        assert refined[2] is SR

    def test_lso_not_upgraded_alone(self):
        trace = make_trace(
            [make_hop(1, "10.0.0.1", labels=(880_001, 880_002))]
        )
        segments = ArestDetector().detect(trace, {})
        refined = refine_areas_for_interworking(trace, segments, [M])
        assert refined[0] is M

    def test_te_head_adopted_via_inner_label(self):
        # head hop carries [waypoint; adj; egress]; the following run's
        # label equals the head's inner bottom label
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_002, 15_001, 16_008)),
                make_hop(2, "10.0.0.2", labels=(16_008,)),
                make_hop(3, "10.0.0.3", labels=(16_008,)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        areas = [M, SR, SR]
        refined = refine_areas_for_interworking(trace, segments, areas)
        assert refined[0] is SR

    def test_service_tail_adopted_via_neighbor_inner(self):
        # run quotes [transport, service]; after PHP the tail quotes the
        # service label alone -- its value appeared as the inner label.
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_007, 15_201)),
                make_hop(2, "10.0.0.2", labels=(16_007, 15_201)),
                make_hop(3, "10.0.0.3", labels=(15_201,)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        areas = [SR, SR, M]
        refined = refine_areas_for_interworking(trace, segments, areas)
        assert refined[2] is SR

    def test_genuine_ldp_island_survives(self):
        # two-hop LDP island with unrelated labels after an SR run
        trace = make_trace(
            [
                make_hop(1, "10.0.0.1", labels=(16_007,)),
                make_hop(2, "10.0.0.2", labels=(16_007,)),
                make_hop(3, "10.0.0.3", labels=(771_234,)),
                make_hop(4, "10.0.0.4", labels=(662_111,)),
            ]
        )
        segments = ArestDetector().detect(trace, {})
        areas = [SR, SR, M, M]
        refined = refine_areas_for_interworking(trace, segments, areas)
        assert refined[2] is M and refined[3] is M
