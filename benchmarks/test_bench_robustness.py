"""Robustness -- the paper's conclusions must not hinge on simulator luck.

Two sweeps:

1. **Seed sweep**: the headline detection rates and the zero-FP
   guarantee hold across independent campaign seeds.
2. **Topology sweep**: swapping every AS's intra-domain generator from
   the flat ring style to the two-tier PoP style leaves the qualitative
   conclusions (CO dominance at the ground-truth AS, detection of the
   strongly-deployed ASes) intact.
3. **Fault sweep**: injecting probe loss degrades recall gracefully --
   the zero-FP guarantee on the strong flags survives every swept loss
   level.
"""

from dataclasses import replace

from repro.analysis.validation import headline_detection, validate_against_truth
from repro.campaign import CampaignRunner
from repro.core.flags import Flag, STRONG_FLAGS
from repro.topogen.portfolio import Portfolio, default_portfolio
from repro.util.tables import format_table

from benchmarks.conftest import emit

_SLICE = [7, 15, 27, 31, 46]  # one AS per deployment flavour


def _run_slice(seed: int, topology_style: str = "ring"):
    base = default_portfolio()
    specs = tuple(
        replace(
            spec,
            scenario=replace(spec.scenario, topology_style=topology_style),
        )
        for spec in base
    )
    runner = CampaignRunner(
        portfolio=Portfolio(specs),
        seed=seed,
        vps_per_as=3,
        targets_per_as=15,
    )
    return runner.run_portfolio(as_ids=_SLICE)


def test_bench_robustness(benchmark):
    seeds = (1, 7, 42)
    by_seed = {}
    by_seed[seeds[0]] = benchmark.pedantic(
        lambda: _run_slice(seeds[0]), rounds=1, iterations=1
    )
    for seed in seeds[1:]:
        by_seed[seed] = _run_slice(seed)
    pop_results = _run_slice(1, topology_style="pop")

    rows = []
    for seed, results in by_seed.items():
        headline = headline_detection(results)
        fps = sum(
            validate_against_truth(r).per_flag[f].false_positives
            for r in results.values()
            for f in STRONG_FLAGS
        )
        rows.append(
            (
                f"seed {seed} / ring",
                f"{headline.confirmed_detected}/{headline.confirmed_total}",
                fps,
            )
        )
    pop_headline = headline_detection(pop_results)
    pop_fps = sum(
        validate_against_truth(r).per_flag[f].false_positives
        for r in pop_results.values()
        for f in STRONG_FLAGS
    )
    rows.append(
        (
            "seed 1 / pop",
            f"{pop_headline.confirmed_detected}/"
            f"{pop_headline.confirmed_total}",
            pop_fps,
        )
    )
    emit(
        format_table(
            ["Configuration", "confirmed detected", "strong-flag FPs"],
            rows,
            title="Robustness -- seeds and topology styles",
        )
    )

    for seed, results in by_seed.items():
        headline = headline_detection(results)
        # the 4 strongly-visible confirmed ASes of the slice detect at
        # every seed; Proximus never does
        assert headline.confirmed_detected >= 3, seed
        assert not results[7].analysis.has_sr_evidence(strong_only=True)
        fps = sum(
            validate_against_truth(r).per_flag[f].false_positives
            for r in results.values()
            for f in STRONG_FLAGS
        )
        assert fps == 0, seed

    # topology style is irrelevant to the conclusions
    assert pop_headline.confirmed_detected >= 3
    assert pop_fps == 0
    esnet = pop_results[46].analysis.flag_counts()
    assert esnet[Flag.CO] > 0 and esnet[Flag.CVR] == 0


def test_bench_fault_sweep(benchmark):
    """Degradation under injected probe loss (Sec. 6 robustness check)."""
    from repro.analysis.robustness import (
        degradation_study,
        render_degradation_table,
    )

    study = benchmark.pedantic(
        lambda: degradation_study(
            loss_levels=(0.0, 0.02, 0.10),
            as_ids=tuple(_SLICE),
            seed=1,
            vps_per_as=3,
            targets_per_as=15,
        ),
        rounds=1,
        iterations=1,
    )
    emit(render_degradation_table(study))

    # the fault-free level IS the baseline: perfect recall everywhere
    for deg in study.level(0.0).per_flag.values():
        assert deg.recall == 1.0
    for level in study.levels:
        # no AS run sinks under loss, and CVR never hallucinates
        assert level.failed_ases == 0
        assert level.cvr_false_positives == 0
        assert level.strong_false_positives == 0
    # loss costs recall gradually, never catastrophically
    lossy = study.level(0.10)
    assert lossy.counters.probes_lost > 0
    assert lossy.per_flag[Flag.CO].recall > 0.5
    assert lossy.confirmed_detected >= 3


def test_bench_corruption_sweep(benchmark):
    """Degradation under adversarial trace corruption.

    The headline: with sanitization in front of detection, the CVR
    zero-FP guarantee survives a 10% corruption mix (label garbling,
    stack suppression/truncation, reply-TTL perturbation, spoofed
    replies, duplicated/reordered hops, mid-trace rerouting) -- recall
    degrades gracefully, precision does not.
    """
    from repro.analysis.robustness import (
        degradation_study,
        render_degradation_table,
    )

    study = benchmark.pedantic(
        lambda: degradation_study(
            corruption_levels=(0.0, 0.05, 0.10),
            as_ids=tuple(_SLICE),
            seed=1,
            vps_per_as=3,
            targets_per_as=15,
        ),
        rounds=1,
        iterations=1,
    )
    emit(render_degradation_table(study))

    # the corruption-free level IS the baseline: perfect recall
    for deg in study.level(0.0).per_flag.values():
        assert deg.recall == 1.0
    assert study.level(0.0).quarantined == 0
    for level in study.levels:
        # no AS run sinks under corruption, and the sanitized pipeline
        # keeps CVR (and CO) at zero false positives at every level
        assert level.failed_ases == 0
        assert level.cvr_false_positives == 0
        assert level.strong_false_positives == 0
        assert level.per_flag[Flag.CVR].precision == 1.0
    # corruption costs recall gradually, never catastrophically
    corrupted = study.level(0.10)
    assert corrupted.counters.corruption_faults() > 0
    assert corrupted.per_flag[Flag.CVR].recall > 0.5
    assert corrupted.per_flag[Flag.CO].recall > 0.5
    assert corrupted.confirmed_detected >= 3
