"""Tests for the controlled validation environment (Fig. 6 in code)."""

import pytest

from repro.core.flags import Flag
from repro.testbed import (
    SCENARIO_BUILDERS,
    co_scenario,
    cvr_scenario,
    lso_scenario,
    lsvr_scenario,
    lvr_scenario,
    run_all_scenarios,
    run_scenario,
)


@pytest.fixture(scope="module")
def outcomes():
    return run_all_scenarios()


class TestFig6InCode:
    def test_five_scenarios(self, outcomes):
        assert len(outcomes) == 5
        assert [o.scenario.expected_flag for o in outcomes] == [
            Flag.CVR,
            Flag.CO,
            Flag.LSVR,
            Flag.LVR,
            Flag.LSO,
        ]

    def test_each_scenario_isolates_its_flag(self, outcomes):
        for outcome in outcomes:
            assert outcome.as_expected, (
                outcome.scenario.name,
                outcome.flags_raised,
            )

    def test_traces_reach_their_targets(self, outcomes):
        for outcome in outcomes:
            assert outcome.trace.reached

    def test_deterministic(self):
        first = run_scenario(cvr_scenario())
        second = run_scenario(cvr_scenario())
        assert first.trace.hops == second.trace.hops
        assert [s.key() for s in first.segments] == [
            s.key() for s in second.segments
        ]


class TestScenarioDetails:
    def test_cvr_uses_default_cisco_srgb(self):
        outcome = run_scenario(cvr_scenario())
        label = outcome.segments[0].top_labels[0]
        assert 16_000 <= label <= 23_999

    def test_co_custom_srgb_outside_fingerprint_reach(self):
        outcome = run_scenario(co_scenario())
        label = outcome.segments[0].top_labels[0]
        assert 17_000 <= label <= 24_999
        assert not outcome.scenario.fingerprinted

    def test_lsvr_stack_shape(self):
        outcome = run_scenario(lsvr_scenario())
        segment = outcome.segments[0]
        assert segment.stack_depths == (2,)
        assert 16_000 <= segment.top_labels[0] <= 23_999

    def test_lvr_single_label(self):
        outcome = run_scenario(lvr_scenario())
        assert outcome.segments[0].stack_depths == (1,)

    def test_lso_labels_match_no_range(self):
        outcome = run_scenario(lso_scenario())
        segment = outcome.segments[0]
        assert segment.stack_depths[0] >= 2
        assert segment.top_labels[0] >= 400_000

    def test_builders_are_fresh(self):
        # each call builds an independent network
        a, b = cvr_scenario(), cvr_scenario()
        assert a.network is not b.network

    def test_builder_registry(self):
        assert len(SCENARIO_BUILDERS) == 5
