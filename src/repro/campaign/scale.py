"""Paper-scale campaign orchestration: sharded, leased, resumable.

The classic :class:`~repro.campaign.runner.CampaignRunner` holds one
AS's entire dataset in memory and banks it whole; fine for Table 5's 41
ASes, impossible for the paper's 7.7M-traceroute scale.
:class:`ScaleCampaign` runs the same measurement science through a
different execution plane, in two phases:

**Probe phase.**  The campaign is split into deterministic
``(as_id, vp_bucket)`` shards (:func:`~repro.campaign.shards.shard_plan`)
that a :class:`~repro.campaign.shardexec.LeaseExecutor` pool drains by
work stealing.  Each shard streams its traces to an atomic spill file
and reports partition-independent per-VP facts; the supervisor banks
the record in the :class:`~repro.campaign.checkpoint.ShardCheckpoint`
*after* the spill is in place, so ``kill -9`` anywhere loses nothing
and duplicates nothing.

**Analyze phase.**  Per AS, a worker rebuilds the topology
deterministically, merges that AS's spills in bucket order (bounded by
one AS, never the campaign), fingerprints and analyzes exactly as the
classic runner does, and returns a canonical JSON summary the
checkpoint banks.  The report is assembled from banked summaries in
``as_ids`` order.

Memory is governed end to end: traces never accumulate in RAM, and a
per-worker :class:`~repro.util.rss.RssWatchdog` checks the resident
set at shard boundaries -- shedding the per-AS topology cache at the
soft level and requesting a graceful worker recycle at the hard level.
Pressure throttles admission; it never interrupts a write.

Determinism contract: ``report.as_dict()`` JSON and the canonical
checkpoint bytes are identical for **any** ``--jobs``/``--shards``
value -- serial, parallel, or crashed-and-resumed -- because every
shard is a pure function of the campaign config (per-VP fault and
retry scoping; see :mod:`repro.campaign.shards`).  Churn plans are the
one exception -- their schedules are inherently sequential across an
AS -- so sharded campaigns refuse them at construction.
"""

from __future__ import annotations

import itertools
import logging
import os
import time
from pathlib import Path

from repro.campaign.checkpoint import ShardCheckpoint
from repro.campaign.executor import GracefulShutdown, TaskOutcome, TaskStatus
from repro.campaign.runner import (
    AsCampaignResult,
    CampaignRunner,
    result_counters,
)
from repro.campaign.shardexec import LeaseExecutor, WorkerControl
from repro.campaign.shards import (
    ShardProbeRecord,
    ShardSpec,
    build_shard_context,
    merged_dataset,
    probe_shard,
    shard_plan,
)
from repro.netsim.faults import FaultCounters, FaultInjector
from repro.obs.session import PORTFOLIO_SCOPE, TelemetrySession
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, merge_counters
from repro.obs.trace import TraceContext
from repro.topogen.internet import build_measurement_network
from repro.util.atomicio import DiskFullError
from repro.util.retry import RetryAccounting
from repro.util.rss import RssWatchdog, peak_rss_bytes

logger = logging.getLogger(__name__)

_token_counter = itertools.count()


def result_summary(result: AsCampaignResult) -> dict:
    """One AS's canonical JSON summary (the banked analysis record).

    Mirrors the per-AS entry of
    :meth:`~repro.campaign.runner.CampaignReport.as_dict` -- same keys,
    same ordering rules -- so scale reports and classic reports read
    the same way.
    """
    analysis = result.analysis
    return {
        "flags": {
            flag.name: count
            for flag, count in sorted(
                analysis.flag_counts().items(),
                key=lambda item: item[0].name,
            )
        },
        "traces_total": analysis.traces_total,
        "traces_quarantined": analysis.traces_quarantined,
        "sr_interfaces": len(analysis.sr_addresses),
        "mpls_interfaces": len(analysis.mpls_addresses),
        "ip_interfaces": len(analysis.ip_addresses),
        "distinct_segments": analysis.total_distinct_segments(),
        "fingerprints": len(result.fingerprints),
        "routers": result.router_count(),
        "anomaly_counts": dict(sorted(analysis.anomaly_counts().items())),
        "fault_counters": result.fault_counters.as_dict(),
        "retry_accounting": result.retry_accounting.as_dict(),
    }


class ScaleReport:
    """Outcome of one paper-scale campaign (summaries, not datasets)."""

    def __init__(self) -> None:
        #: as_id -> canonical analysis summary, in ``as_ids`` order
        self.completed: dict[int, dict] = {}
        #: as_id -> {"stage", "error"} for deterministic failures
        self.failures: dict[int, dict] = {}
        #: "as:bucket" -> quarantine detail for circuit-broken shards
        self.quarantined: dict[str, dict] = {}
        #: True when a shutdown request (or unfinished probing) cut
        #: the run short; resume completes it
        self.interrupted = False

    def aggregate_fault_counters(self) -> FaultCounters:
        total = FaultCounters()
        for summary in self.completed.values():
            total.merge(
                FaultCounters.from_dict(summary.get("fault_counters", {}))
            )
        return total

    def aggregate_retry_accounting(self) -> RetryAccounting:
        total = RetryAccounting()
        for summary in self.completed.values():
            total.merge(
                RetryAccounting.from_dict(
                    summary.get("retry_accounting", {})
                )
            )
        return total

    def traces_total(self) -> int:
        return sum(
            summary.get("traces_total", 0)
            for summary in self.completed.values()
        )

    def summary(self) -> str:
        """One-line human summary of the campaign outcome."""
        parts = [
            f"{len(self.completed)} AS(es) analyzed",
            f"{self.traces_total()} traces",
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} shard(s) quarantined")
        if self.interrupted:
            parts.append("INTERRUPTED")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        """Canonical JSON view; the jobs/shards determinism contract.

        Two runs of the same campaign -- any worker count, any shard
        layout, fresh or resumed -- must produce byte-identical
        ``json.dumps(report.as_dict())``.
        """
        anomaly_counts: dict[str, int] = {}
        for summary in self.completed.values():
            for kind, count in summary.get("anomaly_counts", {}).items():
                anomaly_counts[kind] = anomaly_counts.get(kind, 0) + count
        return {
            "completed": {
                str(as_id): summary
                for as_id, summary in self.completed.items()
            },
            "failures": {
                str(as_id): dict(stub)
                for as_id, stub in self.failures.items()
            },
            "quarantined": {
                key: dict(detail)
                for key, detail in sorted(self.quarantined.items())
            },
            "interrupted": self.interrupted,
            "traces_total": self.traces_total(),
            "fault_counters": self.aggregate_fault_counters().as_dict(),
            "retry_accounting": self.aggregate_retry_accounting().as_dict(),
            "anomaly_counts": dict(sorted(anomaly_counts.items())),
        }


# -- worker-side machinery (persistent-process caches) --------------------------

#: per-process runner cache: one campaign config per executor run,
#: keyed by the supervisor's run token so two campaigns sharing a
#: process (jobs=1 under pytest) can never cross wires
_RUNNER_CACHE: dict[str, CampaignRunner] = {}
#: per-process topology cache: as_id -> ShardContext (the expensive
#: part of a shard); shed by the RSS watchdog, bounded in size
_CONTEXT_CACHE: dict[int, object] = {}
_CONTEXT_CACHE_MAX = 4
#: per-process watchdog (created on first shard, one per budget)
_WATCHDOGS: dict[int | None, RssWatchdog] = {}


def _worker_runner(runner_cls, kwargs: dict, token: str) -> CampaignRunner:
    runner = _RUNNER_CACHE.get(token)
    if runner is None:
        # At most one live campaign per process.  Contexts are scoped
        # to the campaign config, so a new run token must also drop
        # them: a worker forked from (or reused by) a process that
        # served a different campaign would otherwise probe topologies
        # built from the *old* config for any colliding as_id.
        _RUNNER_CACHE.clear()
        _CONTEXT_CACHE.clear()
        runner = runner_cls(**kwargs)
        _RUNNER_CACHE[token] = runner
    return runner


def _worker_context(runner: CampaignRunner, as_id: int):
    context = _CONTEXT_CACHE.get(as_id)
    if context is None:
        while len(_CONTEXT_CACHE) >= _CONTEXT_CACHE_MAX:
            _CONTEXT_CACHE.pop(next(iter(_CONTEXT_CACHE)))
        context = build_shard_context(runner, as_id)
        _CONTEXT_CACHE[as_id] = context
    return context


def _worker_watchdog(max_rss_bytes: int | None) -> RssWatchdog:
    watchdog = _WATCHDOGS.get(max_rss_bytes)
    if watchdog is None:
        _WATCHDOGS.clear()
        watchdog = RssWatchdog(max_rss_bytes)
        watchdog.add_shedder(_CONTEXT_CACHE.clear)
        _WATCHDOGS[max_rss_bytes] = watchdog
    return watchdog


def _boundary_check(ctl: WorkerControl, max_rss_bytes: int | None) -> dict:
    """The shard-boundary watchdog check; may request a recycle."""
    verdict = _worker_watchdog(max_rss_bytes).check()
    if verdict.recycle:
        ctl.request_recycle()
    return {"rss_bytes": verdict.rss_bytes, "shed": verdict.shed}


def _probe_shard_worker(payload: tuple, ctl: WorkerControl) -> dict:
    """Executor task: probe one shard into its spill file.

    Never raises for environmental failure: running out of disk comes
    back as a structured ``disk-full`` record the supervisor turns into
    a clean per-shard quarantine (the previous spill, if any, is
    intact -- the atomic writer never renamed the torn temporary).

    When the task envelope carries a traceparent, the shard runs under
    a traced recorder whose export rides back on the ``ok`` message --
    spills and checkpoint records stay byte-identical either way.
    """
    runner_cls, kwargs, token, shard, spill_path, max_rss, traceparent = (
        payload
    )
    ctl.heartbeat(f"shard-{shard.as_id}-{shard.bucket}")
    runner = _worker_runner(runner_cls, kwargs, token)
    context = _worker_context(runner, shard.as_id)
    tel = (
        Telemetry(trace=TraceContext.parse(traceparent))
        if traceparent is not None
        else None
    )
    try:
        if tel is not None:
            with tel.span("shard", as_id=shard.as_id, bucket=shard.bucket):
                record = probe_shard(
                    runner,
                    context,
                    shard,
                    Path(spill_path),
                    heartbeat=ctl.heartbeat,
                    telemetry=tel,
                )
        else:
            record = probe_shard(
                runner,
                context,
                shard,
                Path(spill_path),
                heartbeat=ctl.heartbeat,
            )
    except DiskFullError as exc:
        return {"status": "disk-full", "error": str(exc)}
    message = {"status": "ok", "record": record}
    if tel is not None:
        tel.count("traces_collected", sum(vp.traces for vp in record.vps))
        message["telemetry"] = tel.export()
    message.update(_boundary_check(ctl, max_rss))
    return message


def _analyze_as_worker(payload: tuple, ctl: WorkerControl) -> dict:
    """Executor task: merge one AS's spills and analyze them.

    Rebuilds the topology deterministically (same as checkpoint
    rehydration in the classic runner), streams the spills into a
    single per-AS dataset, fingerprints with a fresh
    ``("fingerprint", as_id)``-scoped injector (partition-independent,
    unlike reusing a probe injector's sequential state), and returns
    the canonical summary plus the AS's merged probe tallies.
    """
    (
        runner_cls,
        kwargs,
        token,
        as_id,
        spill_paths,
        retry_dict,
        fault_dict,
        max_rss,
        traceparent,
    ) = payload
    ctl.heartbeat(f"analyze-{as_id}")
    runner = _worker_runner(runner_cls, kwargs, token)
    # The pipeline reads runner.telemetry: routing the traced recorder
    # through it gives the analysis its sanitize/detect spans and
    # per-trace latency histograms for free.  Untraced runs keep the
    # no-op recorder (every span below is then free).
    tel = (
        Telemetry(trace=TraceContext.parse(traceparent))
        if traceparent is not None
        else NULL_TELEMETRY
    )
    previous_telemetry = runner.telemetry
    runner.telemetry = tel
    try:
        with tel.span("as", as_id=as_id):
            spec = runner.portfolio.spec(as_id)
            vps = runner._select_vps(as_id)
            ctl.heartbeat("topology")
            with tel.span("topology"):
                net = build_measurement_network(
                    spec, [vp.vp_id for vp in vps], seed=runner.seed
                )
            ctl.heartbeat("merge")
            metadata = {
                "as_id": str(as_id),
                "seed": str(runner.seed),
                "vps": ",".join(vp.vp_id for vp in vps),
            }
            with tel.span("merge"):
                dataset = merged_dataset(
                    net.target_asn, metadata, [Path(p) for p in spill_paths]
                )
            injector = (
                FaultInjector(runner.fault_plan, "fingerprint", as_id)
                if runner.fault_plan.active
                else None
            )
            ctl.heartbeat("fingerprint")
            with tel.span("fingerprint"):
                fingerprints = runner._fingerprint(
                    net, dataset, faults=injector
                )
            ctl.heartbeat("analysis")
            with tel.span("analyze"):
                result = runner._analyze(spec, net, dataset, fingerprints)
    finally:
        runner.telemetry = previous_telemetry
    faults = FaultCounters.from_dict(fault_dict)
    if injector is not None:
        faults.merge(injector.counters)
    result.fault_counters = faults
    result.retry_accounting = RetryAccounting.from_dict(retry_dict)
    message = {"status": "ok", "summary": result_summary(result)}
    if tel.enabled:
        merge_counters(tel.counters, result_counters(result))
        message["telemetry"] = tel.export()
    message.update(_boundary_check(ctl, max_rss))
    return message


# -- supervisor ------------------------------------------------------------------


class ScaleCampaign(CampaignRunner):
    """The paper-scale campaign driver (sharded, leased, resumable).

    Construction is the classic runner's; measurement semantics are
    identical with faults off.  With a fault plan, injector scope is
    the vantage point (not the AS) -- the documented difference that
    buys partition invariance.  Churn plans are rejected outright.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if self.churn_plan.active:
            raise ValueError(
                "sharded campaigns cannot run under a churn plan: churn "
                "schedules mutate the network under all probes in "
                "sequence, which is incompatible with per-VP sharding; "
                "use CampaignRunner for churned campaigns"
            )
        #: observational execution tallies of the most recent run()
        self.stats: dict[str, int | float] = {}

    # -- configuration --------------------------------------------------------

    def _scale_config(self) -> dict:
        """Config signature binding a shard checkpoint to this campaign.

        Extends the classic signature with the portfolio descriptor
        when one exists (synthetic portfolios are config, not code).
        Shard layout and job count are deliberately absent: they must
        not change results, so they must not invalidate checkpoints.
        """
        config = self._config_signature()
        as_dict = getattr(self.portfolio, "as_dict", None)
        if callable(as_dict):
            config["portfolio"] = as_dict()
        return config

    # -- the run --------------------------------------------------------------

    def run(
        self,
        out_dir: str | Path,
        as_ids: list[int] | None = None,
        jobs: int = 1,
        vps_per_shard: int | None = None,
        resume: bool = False,
        lease_timeout: float | None = 60.0,
        max_rss_bytes: int | None = None,
        max_redispatch: int = 1,
        telemetry_dir: str | Path | None = None,
    ) -> ScaleReport:
        """Run (or resume) the campaign into ``out_dir``.

        ``out_dir`` holds everything durable: ``checkpoint.jsonl`` (the
        shard checkpoint) and ``spills/`` (per-shard trace files).
        ``vps_per_shard`` sets the shard granularity (default: one
        shard per AS); a resumed run adopts the banked layout, so
        re-sharding mid-campaign is safe.  ``jobs`` sizes the worker
        pool -- any value yields byte-identical results.

        ``telemetry_dir`` turns on distributed tracing: a
        :class:`~repro.obs.session.TelemetrySession` mints one
        campaign-wide trace context whose traceparent rides every task
        envelope, and each worker's traced export is banked as the
        shard (``shard:<as>:<bucket>``) or AS completes.  Purely
        observational: report JSON and checkpoint bytes are identical
        with it on or off.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        out_dir = Path(out_dir)
        spill_dir = out_dir / "spills"
        spill_dir.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        if as_ids is None:
            as_ids = [s.as_id for s in self.portfolio.analyzed()]
        session = (
            TelemetrySession(
                telemetry_dir,
                config=self._scale_config(),
                seed=self.seed,
                command="scale-campaign",
                jobs=jobs,
                as_ids=list(as_ids),
            )
            if telemetry_dir is not None
            else None
        )
        try:
            return self._run_supervised(
                out_dir, spill_dir, started, as_ids, jobs, vps_per_shard,
                resume, lease_timeout, max_rss_bytes, max_redispatch,
                session,
            )
        except BaseException:
            if session is not None:
                session.finalize("error")
            raise

    def _run_supervised(
        self,
        out_dir: Path,
        spill_dir: Path,
        started: float,
        as_ids: list[int],
        jobs: int,
        vps_per_shard: int | None,
        resume: bool,
        lease_timeout: float | None,
        max_rss_bytes: int | None,
        max_redispatch: int,
        session: TelemetrySession | None,
    ) -> ScaleReport:
        store = ShardCheckpoint(
            out_dir / "checkpoint.jsonl",
            self._scale_config(),
            vps_per_shard=vps_per_shard,
        )
        if resume:
            store.load()
        if store.complete:
            # "complete" is scoped to the as_ids the run compacted
            # with; asking for ASes it never saw reopens the campaign
            # (their shards probe fresh, banked ASes stay skipped, and
            # the final re-compaction folds both into canonical form).
            accounted = (
                set(store.analyses)
                | set(store.failures)
                | {key[0] for key in store.quarantines}
            )
            if any(as_id not in accounted for as_id in as_ids):
                store.complete = False
        if store.vps_per_shard is None:
            store.vps_per_shard = self.vps_per_as
        token = f"{os.getpid()}-{next(_token_counter)}"
        self.stats = {
            "jobs": jobs,
            "vps_per_shard": store.vps_per_shard,
            "ases_total": len(as_ids),
        }

        interrupted = False
        if not store.complete:
            plan = shard_plan(as_ids, self.vps_per_as, store.vps_per_shard)
            self.stats["shards_total"] = len(plan)
            interrupted = self._probe_phase(
                store, plan, spill_dir, token, jobs,
                lease_timeout, max_rss_bytes, max_redispatch, session,
            )
            if not interrupted:
                interrupted = self._analyze_phase(
                    store, plan, as_ids, spill_dir, token, jobs,
                    lease_timeout, max_rss_bytes, max_redispatch, session,
                )

        report = self._assemble(store, as_ids)
        if interrupted:
            report.interrupted = True
        if not report.interrupted and not store.complete:
            store.compact_canonical(as_ids)
        self.stats["ases_analyzed"] = len(report.completed)
        self.stats["traces_total"] = report.traces_total()
        self.stats["shards_quarantined"] = len(report.quarantined)
        self.stats["wall_seconds"] = round(time.monotonic() - started, 3)
        self.stats["rss_peak_bytes"] = peak_rss_bytes()
        if session is not None:
            session.record_scope(
                PORTFOLIO_SCOPE,
                gauges={
                    name: float(value)
                    for name, value in sorted(self.stats.items())
                },
            )
            session.finalize("interrupted" if report.interrupted else "ok")
        return report

    # -- probe phase ----------------------------------------------------------

    def _probe_phase(
        self,
        store: ShardCheckpoint,
        plan: list[ShardSpec],
        spill_dir: Path,
        token: str,
        jobs: int,
        lease_timeout: float | None,
        max_rss_bytes: int | None,
        max_redispatch: int,
        session: TelemetrySession | None = None,
    ) -> bool:
        """Drain the shard plan; returns True when interrupted."""
        probed = store.probed
        analyses = store.analyses
        failures = store.failures
        quarantines = store.quarantines
        to_probe: list[ShardSpec] = []
        for shard in plan:
            if shard.as_id in analyses or shard.as_id in failures:
                continue  # downstream already banked; spills done
            if shard.key in quarantines:
                continue  # circuit breaker stays open across resume
            record = probed.get(shard.key)
            if record is not None and (spill_dir / record.spill).exists():
                continue  # spill + record both in place: nothing to redo
            to_probe.append(shard)
        self.stats["shards_probed"] = len(to_probe)
        self.stats["shards_resumed"] = len(plan) - len(to_probe)
        if not to_probe:
            return False

        def bank(outcome: TaskOutcome) -> None:
            key = outcome.key
            try:
                if outcome.status is TaskStatus.OK:
                    message = outcome.value
                    if message["status"] == "ok":
                        # Spill was renamed into place before the worker
                        # answered; banking second closes the crash window
                        # on the safe side (re-run, never lose).
                        if session is not None:
                            tick = time.monotonic()
                            store.record_probe(message["record"])
                            session.observe("bank", time.monotonic() - tick)
                            export = message.get("telemetry")
                            if export:
                                session.record_export(
                                    f"shard:{key[0]}:{key[1]}", export
                                )
                        else:
                            store.record_probe(message["record"])
                    else:  # structured disk-full degradation
                        store.record_quarantine(
                            key,
                            {
                                "reason": "disk-full",
                                "attempts": outcome.attempts,
                                "detail": message["error"],
                            },
                        )
                elif outcome.status is TaskStatus.ERROR:
                    store.record_failure(
                        key[0],
                        {"stage": "probe", "error": outcome.error or ""},
                    )
                else:  # TIMEOUT / CRASH past the re-dispatch budget
                    store.record_quarantine(
                        key,
                        {
                            "reason": (
                                "crash"
                                if outcome.status is TaskStatus.CRASH
                                else "lease-expired"
                            ),
                            "attempts": outcome.attempts,
                            "detail": outcome.error or "",
                        },
                    )
            except DiskFullError as exc:
                # The checkpoint itself hit ENOSPC.  The file is intact
                # (torn tail at worst, salvaged on load); the shard is
                # simply not banked and will re-run on resume.
                logger.error(
                    "checkpoint write failed (disk full) banking shard "
                    "%r: %s -- shard will re-run on resume",
                    key,
                    exc,
                )

        executor = LeaseExecutor(
            _probe_shard_worker,
            jobs=jobs,
            lease_timeout=lease_timeout,
            max_redispatch=max_redispatch,
        )
        spawn = self._spawn_config()
        traceparent = session.traceparent() if session is not None else None
        tasks = [
            (
                shard.key,
                (
                    type(self),
                    spawn,
                    token,
                    shard,
                    str(spill_dir / shard.spill_name),
                    max_rss_bytes,
                    traceparent,
                ),
            )
            for shard in to_probe
        ]
        with GracefulShutdown() as shutdown:
            result = executor.run(tasks, on_complete=bank, stop=shutdown)
        self._merge_executor_stats(executor)
        return result.interrupted

    # -- analyze phase --------------------------------------------------------

    def _analyze_phase(
        self,
        store: ShardCheckpoint,
        plan: list[ShardSpec],
        as_ids: list[int],
        spill_dir: Path,
        token: str,
        jobs: int,
        lease_timeout: float | None,
        max_rss_bytes: int | None,
        max_redispatch: int,
        session: TelemetrySession | None = None,
    ) -> bool:
        """Analyze every fully-probed AS; returns True when interrupted."""
        probed = store.probed
        analyses = store.analyses
        failures = store.failures
        quarantines = store.quarantines
        buckets_by_as: dict[int, list[ShardSpec]] = {}
        for shard in plan:
            buckets_by_as.setdefault(shard.as_id, []).append(shard)
        tasks = []
        for as_id in as_ids:
            if as_id in analyses or as_id in failures:
                continue
            shards = sorted(
                buckets_by_as.get(as_id, ()), key=lambda s: s.bucket
            )
            if any(s.key in quarantines for s in shards):
                continue  # surfaced through the quarantine record
            records = [probed.get(s.key) for s in shards]
            if any(r is None for r in records):
                continue  # probing incomplete (interrupted mid-phase)
            retry = RetryAccounting()
            faults = FaultCounters()
            for record in records:
                for vp in record.vps:
                    retry.merge(vp.retry_accounting)
                    faults.merge(vp.fault_counters)
            tasks.append(
                (
                    as_id,
                    (
                        type(self),
                        self._spawn_config(),
                        token,
                        as_id,
                        [str(spill_dir / r.spill) for r in records],
                        retry.as_dict(),
                        faults.as_dict(),
                        max_rss_bytes,
                        session.traceparent() if session is not None else None,
                    ),
                )
            )
        if not tasks:
            return False

        def bank(outcome: TaskOutcome) -> None:
            as_id = outcome.key
            try:
                if outcome.status is TaskStatus.OK:
                    if session is not None:
                        tick = time.monotonic()
                        store.record_analysis(
                            as_id, outcome.value["summary"]
                        )
                        session.observe("bank", time.monotonic() - tick)
                        export = outcome.value.get("telemetry")
                        if export:
                            session.record_export(as_id, export)
                    else:
                        store.record_analysis(as_id, outcome.value["summary"])
                else:
                    # Deterministic analysis failures *and* workers that
                    # die past the budget are banked per AS: the data is
                    # on disk, only the derivation failed.
                    store.record_failure(
                        as_id,
                        {
                            "stage": "analysis",
                            "error": outcome.error or "",
                        },
                    )
            except DiskFullError as exc:
                logger.error(
                    "checkpoint write failed (disk full) banking "
                    "analysis of AS#%d: %s -- AS will re-analyze on "
                    "resume",
                    as_id,
                    exc,
                )

        executor = LeaseExecutor(
            _analyze_as_worker,
            jobs=jobs,
            lease_timeout=lease_timeout,
            max_redispatch=max_redispatch,
        )
        with GracefulShutdown() as shutdown:
            result = executor.run(tasks, on_complete=bank, stop=shutdown)
        self._merge_executor_stats(executor)
        return result.interrupted

    # -- assembly -------------------------------------------------------------

    def _assemble(
        self, store: ShardCheckpoint, as_ids: list[int]
    ) -> ScaleReport:
        """Build the report from banked records, strictly in as_ids order."""
        report = ScaleReport()
        analyses = store.analyses
        failures = store.failures
        for as_id in as_ids:
            if as_id in analyses:
                report.completed[as_id] = analyses[as_id]
            elif as_id in failures:
                report.failures[as_id] = failures[as_id]
        for (as_id, bucket), detail in sorted(store.quarantines.items()):
            if as_id in as_ids:
                report.quarantined[f"{as_id}:{bucket}"] = detail
        # ASes with neither analysis, failure nor quarantine were never
        # finished: the run is incomplete (interrupted or degraded).
        unfinished = [
            as_id
            for as_id in as_ids
            if as_id not in report.completed
            and as_id not in report.failures
            and not any(
                key.startswith(f"{as_id}:") for key in report.quarantined
            )
        ]
        if unfinished:
            report.interrupted = True
        return report

    def _merge_executor_stats(self, executor: LeaseExecutor) -> None:
        for name, value in executor.stats.items():
            self.stats[name] = int(self.stats.get(name, 0)) + value
