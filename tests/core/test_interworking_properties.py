"""Property-based tests for interworking decomposition and refinement."""

from hypothesis import given, settings, strategies as st

from repro.core.classification import HopArea
from repro.core.detector import ArestDetector
from repro.core.interworking import (
    InterworkingMode,
    analyze_tunnel_composition,
    refine_areas_for_interworking,
)

from tests.conftest import make_hop, make_trace, scaled_examples

areas = st.lists(
    st.sampled_from([HopArea.SR, HopArea.MPLS, HopArea.IP]),
    max_size=16,
)


@given(areas)
def test_composition_partitions_non_ip_hops(sequence):
    """Every non-IP hop lands in exactly one tunnel, order preserved."""
    tunnels = analyze_tunnel_composition(sequence)
    covered = [
        i for t in tunnels for c in t.clouds for i in c.hop_indices
    ]
    expected = [
        i for i, a in enumerate(sequence) if a is not HopArea.IP
    ]
    assert covered == expected


@given(areas)
def test_clouds_are_homogeneous_and_alternating(sequence):
    for tunnel in analyze_tunnel_composition(sequence):
        for cloud in tunnel.clouds:
            kinds = {sequence[i] for i in cloud.hop_indices}
            assert len(kinds) == 1
        planes = [c.plane for c in tunnel.clouds]
        assert all(a is not b for a, b in zip(planes, planes[1:]))


@given(areas)
def test_mode_matches_cloud_sequence(sequence):
    for tunnel in analyze_tunnel_composition(sequence):
        planes = tuple(c.plane for c in tunnel.clouds)
        if planes == (HopArea.SR,):
            assert tunnel.mode is InterworkingMode.FULL_SR
        elif planes == (HopArea.MPLS,):
            assert tunnel.mode is InterworkingMode.FULL_LDP
        elif len(planes) > 3:
            assert tunnel.mode is InterworkingMode.OTHER


label_pools = st.sampled_from([16_005, 16_007, 771_001, 662_002])


@settings(max_examples=scaled_examples(60), deadline=None)
@given(
    st.lists(
        st.tuples(label_pools, st.booleans()),
        min_size=1,
        max_size=10,
    )
)
def test_refinement_never_downgrades_sr(hop_specs):
    """Refinement may only promote MPLS hops to SR, never the reverse,
    and never touches IP hops."""
    hops = [
        make_hop(i + 1, f"10.0.0.{i + 1}", labels=(label,) if labeled else ())
        for i, (label, labeled) in enumerate(hop_specs)
    ]
    trace = make_trace(hops)
    segments = ArestDetector().detect(trace, {})
    from repro.core.classification import classify_hops

    before = classify_hops(trace, segments)
    after = refine_areas_for_interworking(trace, segments, before)
    for b, a in zip(before, after):
        if b is HopArea.SR:
            assert a is HopArea.SR
        if b is HopArea.IP:
            assert a is HopArea.IP


@settings(max_examples=scaled_examples(60), deadline=None)
@given(
    st.lists(
        st.tuples(label_pools, st.booleans()),
        min_size=1,
        max_size=10,
    )
)
def test_refinement_idempotent(hop_specs):
    hops = [
        make_hop(i + 1, f"10.0.0.{i + 1}", labels=(label,) if labeled else ())
        for i, (label, labeled) in enumerate(hop_specs)
    ]
    trace = make_trace(hops)
    segments = ArestDetector().detect(trace, {})
    from repro.core.classification import classify_hops

    areas = classify_hops(trace, segments)
    once = refine_areas_for_interworking(trace, segments, areas)
    twice = refine_areas_for_interworking(trace, segments, once)
    assert once == twice
