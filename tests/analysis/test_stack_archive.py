"""Tests for the Fig. 7 longitudinal stack-size archive."""

import pytest

from repro.analysis.stack_archive import (
    ArchiveSample,
    SOURCES,
    expected_ge2_share,
    generate_archive,
    iter_sample_dates,
    series_ge_depth,
)


@pytest.fixture(scope="module")
def archive():
    return generate_archive(traces_per_sample=1_500, seed=2)


class TestDriftModel:
    def test_caida_endpoints(self):
        assert expected_ge2_share("caida", 2015, 12) == pytest.approx(0.05)
        assert expected_ge2_share("caida", 2025, 3) == pytest.approx(0.20)

    def test_atlas_endpoints(self):
        assert expected_ge2_share("atlas", 2015, 12) == pytest.approx(0.02)
        assert expected_ge2_share("atlas", 2025, 3) == pytest.approx(0.10)

    def test_monotone_growth(self):
        values = [
            expected_ge2_share("caida", y, m) for y, m in iter_sample_dates()
        ]
        assert values == sorted(values)

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            expected_ge2_share("ripe-ris", 2020, 3)


class TestGeneratedArchive:
    def test_window(self, archive):
        dates = {(s.year, s.month) for s in archive}
        assert (2015, 12) in dates
        assert (2025, 3) in dates
        assert (2015, 3) not in dates
        assert (2025, 6) not in dates

    def test_both_sources(self, archive):
        assert {s.source for s in archive} == set(SOURCES)

    def test_sample_sizes(self, archive):
        assert all(s.num_traces == 1_500 for s in archive)

    def test_caida_final_share_near_20pc(self, archive):
        series = series_ge_depth(archive, "caida", 2)
        assert series[-1][1] == pytest.approx(0.20, abs=0.05)

    def test_atlas_final_share_near_10pc(self, archive):
        series = series_ge_depth(archive, "atlas", 2)
        assert series[-1][1] == pytest.approx(0.10, abs=0.05)

    def test_growth_direction(self, archive):
        for source in SOURCES:
            series = series_ge_depth(archive, source, 2)
            assert series[-1][1] > series[0][1]

    def test_caida_above_atlas_at_the_end(self, archive):
        caida = series_ge_depth(archive, "caida", 2)[-1][1]
        atlas = series_ge_depth(archive, "atlas", 2)[-1][1]
        assert caida > atlas

    def test_deeper_stacks_rarer(self, archive):
        sample = archive[-1]
        assert sample.share_with_depth_at_least(
            3
        ) < sample.share_with_depth_at_least(2)

    def test_series_chronological(self, archive):
        series = series_ge_depth(archive, "caida", 2)
        dates = [d for d, _v in series]
        assert dates == sorted(dates)

    def test_deterministic(self):
        a = generate_archive(traces_per_sample=100, seed=5)
        b = generate_archive(traces_per_sample=100, seed=5)
        assert a == b


class TestSampleMath:
    def test_share_with_empty_mpls(self):
        sample = ArchiveSample(
            source="caida", year=2020, month=3, depth_counts=(10, 0, 0)
        )
        assert sample.share_with_depth_at_least(2) == 0.0

    def test_share_computation(self):
        sample = ArchiveSample(
            source="caida", year=2020, month=3, depth_counts=(5, 6, 3, 1)
        )
        assert sample.share_with_depth_at_least(2) == pytest.approx(0.4)
