"""Bounded ingest queue with explicit backpressure and fairness.

The queue between the HTTP front-end and the detection workers is the
service's memory bound: its capacity is the **only** buffer the service
holds for unprocessed traces, so RSS stays flat no matter how fast
submitters push.  Overflow is never silent -- admission is decided up
front and a refused batch becomes an HTTP 429 with ``Retry-After``,
which is the contract that lets well-behaved clients self-pace.

Three admission rules, checked in order:

1. **drain gate** -- a draining service admits nothing (the two-strike
   shutdown story: first signal stops intake, workers flush the tail);
2. **watermark hysteresis** -- once depth reaches the *high* watermark
   the queue saturates and refuses admissions until depth falls back to
   the *low* watermark.  The gap prevents 202/429 flapping right at the
   boundary: a saturated queue stays saturated long enough for
   ``Retry-After`` to mean something;
3. **per-submitter fairness** -- no single submitter may occupy more
   than ``fair_share`` queued slots, so one firehose client cannot
   starve the others out of an otherwise healthy queue.

Batches admit atomically: either every trace in the request fits (under
both the global and the per-submitter bound) or none is enqueued --
partial acceptance would force clients to diff their batch against the
response to learn what to retry.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass
from typing import Any

#: rejection reason labels (stable: Prometheus label values)
REASON_QUEUE_FULL = "queue-full"
REASON_SUBMITTER_QUOTA = "submitter-quota"
REASON_DRAINING = "draining"
#: the journal volume is out of space: nothing was acknowledged, the
#: journal is intact (torn tail at worst), clients should retry later
REASON_DISK_FULL = "disk-full"


@dataclass(frozen=True, slots=True)
class Admission:
    """Outcome of one batch admission check."""

    accepted: bool
    reason: str | None = None
    retry_after: float | None = None


class IngestQueue:
    """Bounded FIFO between the HTTP front-end and the workers."""

    def __init__(
        self,
        capacity: int = 1024,
        *,
        low_watermark: int | None = None,
        fair_share: int | None = None,
        retry_after: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: saturation clears only once depth falls to this level
        self.low_watermark = (
            low_watermark if low_watermark is not None else capacity // 2
        )
        if not 0 <= self.low_watermark < capacity:
            raise ValueError("low_watermark must be in [0, capacity)")
        #: max queued items any one submitter may hold
        self.fair_share = (
            fair_share
            if fair_share is not None
            else max(1, capacity - capacity // 4)
        )
        if self.fair_share < 1:
            raise ValueError("fair_share must be >= 1")
        self.retry_after = retry_after
        self._items: asyncio.Queue[Any] = asyncio.Queue()
        self._pending_by_submitter: Counter = Counter()
        self._saturated = False
        self._draining = False
        #: admission statistics (feeds /metrics and /report)
        self.accepted_total = 0
        self.rejected: Counter = Counter()
        #: highest depth ever observed (the bound the tests assert)
        self.peak_depth = 0

    # -- observability -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Traces currently queued."""
        return self._items.qsize()

    @property
    def draining(self) -> bool:
        """True once :meth:`start_draining` was called."""
        return self._draining

    @property
    def saturated(self) -> bool:
        """True while the watermark hysteresis refuses admissions."""
        if self._saturated and self.depth <= self.low_watermark:
            self._saturated = False
        return self._saturated

    # -- admission -----------------------------------------------------------

    def admit(self, n: int, submitter: str) -> Admission:
        """Decide whether a batch of ``n`` traces may enter, atomically.

        Admission and :meth:`enqueue` are separate calls so the caller
        can durably journal the batch *between* them (journal is the
        source of truth of acceptance); with no ``await`` in between,
        the pair is atomic under the single-threaded event loop.
        """
        if self._draining:
            self.rejected[REASON_DRAINING] += n
            return Admission(False, REASON_DRAINING, self.retry_after)
        depth = self.depth
        if self.saturated or depth + n > self.capacity:
            if depth + n > self.capacity:
                self._saturated = True
            self.rejected[REASON_QUEUE_FULL] += n
            return Admission(False, REASON_QUEUE_FULL, self.retry_after)
        if self._pending_by_submitter[submitter] + n > self.fair_share:
            self.rejected[REASON_SUBMITTER_QUOTA] += n
            return Admission(False, REASON_SUBMITTER_QUOTA, self.retry_after)
        return Admission(True)

    def enqueue(self, batch: list, submitter: str) -> None:
        """Enqueue an admitted (and journaled) batch."""
        for item in batch:
            self._items.put_nowait((submitter, item))
        self._pending_by_submitter[submitter] += len(batch)
        self.accepted_total += len(batch)
        self.peak_depth = max(self.peak_depth, self.depth)

    def count_rejected(self, reason: str, n: int = 1) -> None:
        """Record refusals decided outside the queue (e.g. malformed)."""
        self.rejected[reason] += n

    # -- consumption ---------------------------------------------------------

    async def get(self) -> Any:
        """Dequeue one item (its submitter's slot frees immediately)."""
        submitter, item = await self._items.get()
        self._pending_by_submitter[submitter] -= 1
        if self._pending_by_submitter[submitter] <= 0:
            del self._pending_by_submitter[submitter]
        return item

    async def join(self) -> None:
        """Wait until every enqueued item has been processed."""
        await self._items.join()

    def task_done(self) -> None:
        """Mark one dequeued item fully processed (for :meth:`join`)."""
        self._items.task_done()

    # -- lifecycle -----------------------------------------------------------

    def start_draining(self) -> None:
        """Refuse all further admissions (first shutdown strike)."""
        self._draining = True

    def drain_now(self) -> int:
        """Discard everything still queued (second strike); returns count.

        The discarded traces are *not* lost: they were journaled at
        accept time, so the next start replays them from disk.
        """
        dropped = 0
        while not self._items.empty():
            self._items.get_nowait()
            self._items.task_done()
            dropped += 1
        self._pending_by_submitter.clear()
        return dropped
